//! Engine telemetry: per-worker utilization profiles and per-kind unit
//! latency histograms.
//!
//! The paper's FPGA exposes live status registers that make the jammer
//! *operable*; the parallel `CampaignEngine` needs the same treatment. At
//! the end of every campaign the engine assembles an [`EngineProfile`] —
//! where did each worker's wall-clock go (busy in unit closures, idle
//! waiting on the shard dispenser, merge-wait after its last shard), what
//! did the unit latency distribution look like, and which units were
//! stragglers (slower than [`STRAGGLER_FACTOR`]× the median, recorded with
//! their seed so they can be re-run in isolation) — and publishes it here.
//! `rjamctl report` renders the last profile; the per-kind histograms
//! accumulate across campaigns in one process.
//!
//! The profile *types* are always compiled (reports and tests need them in
//! `--no-default-features` builds); the process-wide *store* follows the
//! `obs` feature like the registry: publishing is a no-op and
//! [`last_profile`] is `None` when instrumentation is compiled out.

use crate::hist::HistSummary;

/// Units slower than this multiple of the campaign's median unit time are
/// flagged as stragglers (and dropped into the flight recorder).
pub const STRAGGLER_FACTOR: u64 = 4;

/// Stragglers kept per profile (the slowest ones, duration-descending).
pub const MAX_STRAGGLERS: usize = 32;

/// Where one worker's wall-clock went during a campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (0-based; the serial path is worker 0).
    pub worker: usize,
    /// Units this worker ran.
    pub units: u64,
    /// Time inside unit closures.
    pub busy_ns: u64,
    /// Time outside unit closures before the worker finished its last
    /// shard: dispenser claims, pool setup, scheduling gaps.
    pub idle_ns: u64,
    /// Time between this worker finishing and the merge joining it.
    pub merge_wait_ns: u64,
}

impl WorkerStats {
    /// Busy fraction of this worker's accounted time, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns + self.merge_wait_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

/// One straggler unit: reproducible via its per-unit seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Straggler {
    /// Unit index within the campaign.
    pub unit: usize,
    /// Worker that ran it.
    pub worker: usize,
    /// The unit's derived seed (`shard_seed(campaign_seed, unit)`).
    pub seed: u64,
    /// Observed unit duration.
    pub duration_ns: u64,
}

/// Post-run profile of one campaign through the engine.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineProfile {
    /// Unit kind label (`wifi_detection`, `false_alarm`, ...).
    pub kind: String,
    /// Units the campaign ran.
    pub units: u64,
    /// Dispatch ranges in the shard plan.
    pub shards: u64,
    /// Campaign wall-clock.
    pub wall_ns: u64,
    /// Per-worker accounting, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Unit latency distribution.
    pub unit_ns: HistSummary,
    /// Exact median unit duration (the straggler threshold baseline).
    pub median_unit_ns: u64,
    /// Slowest units above the straggler threshold, duration-descending.
    pub stragglers: Vec<Straggler>,
}

impl EngineProfile {
    /// Total busy time across workers.
    pub fn busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Total idle time across workers.
    pub fn idle_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.idle_ns).sum()
    }

    /// Total merge-wait time across workers.
    pub fn merge_wait_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.merge_wait_ns).sum()
    }

    /// Fraction of total worker wall-clock (`workers × wall_ns`) that the
    /// busy/idle/merge-wait buckets account for, in `[0, 1]`. The
    /// remainder is thread spawn/teardown — the report's honesty check
    /// (the CLI asserts ≥ 0.95 on real campaigns).
    pub fn attributed_fraction(&self) -> f64 {
        let denom = self.workers.len() as u64 * self.wall_ns;
        if denom == 0 {
            return 0.0;
        }
        let num = self.busy_ns() + self.idle_ns() + self.merge_wait_ns();
        (num as f64 / denom as f64).min(1.0)
    }

    /// Renders the operator-facing profile: per-worker utilization table,
    /// attribution coverage, unit latency percentiles, and the top
    /// `top` stragglers with their seeds.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("== engine profile: {} ==\n", self.kind));
        out.push_str(&format!(
            "units {}  shards {}  workers {}  wall {}\n",
            self.units,
            self.shards,
            self.workers.len(),
            fmt_ns(self.wall_ns),
        ));
        out.push_str("worker      units        busy        idle  merge-wait   util%\n");
        for w in &self.workers {
            out.push_str(&format!(
                "{:>6}  {:>9}  {:>10}  {:>10}  {:>10}  {:>6.1}\n",
                w.worker,
                w.units,
                fmt_ns(w.busy_ns),
                fmt_ns(w.idle_ns),
                fmt_ns(w.merge_wait_ns),
                100.0 * w.utilization(),
            ));
        }
        out.push_str(&format!(
            "attributed {:.1}% of {} x {} worker wall-clock to busy/idle/merge-wait\n",
            100.0 * self.attributed_fraction(),
            self.workers.len(),
            fmt_ns(self.wall_ns),
        ));
        let u = &self.unit_ns;
        out.push_str("== unit latency ==\n");
        out.push_str(&format!(
            "n={} mean={} p50={} p95={} p99={} max={}\n",
            u.count,
            fmt_ns(u.mean as u64),
            fmt_ns(u.p50),
            fmt_ns(u.p95),
            fmt_ns(u.p99),
            fmt_ns(u.max),
        ));
        out.push_str(&format!(
            "== stragglers (> {}x median {}) ==\n",
            STRAGGLER_FACTOR,
            fmt_ns(self.median_unit_ns),
        ));
        if self.stragglers.is_empty() {
            out.push_str("(none)\n");
        } else {
            for s in self.stragglers.iter().take(top.max(1)) {
                let ratio = if self.median_unit_ns > 0 {
                    s.duration_ns as f64 / self.median_unit_ns as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "unit {:>6}  worker {}  {} ({:.1}x median)  seed 0x{:016x}\n",
                    s.unit,
                    s.worker,
                    fmt_ns(s.duration_ns),
                    ratio,
                    s.seed,
                ));
            }
            if self.stragglers.len() > top {
                out.push_str(&format!("... and {} more\n", self.stragglers.len() - top));
            }
        }
        out
    }
}

/// Formats nanoseconds with a readable unit (ns / µs / ms / s).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(feature = "obs")]
mod store {
    use super::EngineProfile;
    use crate::hist::{HistSummary, LogHistogram};
    use std::collections::BTreeMap;
    use std::sync::{Mutex, OnceLock};

    struct Store {
        last: Mutex<Option<EngineProfile>>,
        by_kind: Mutex<BTreeMap<String, (EngineProfile, LogHistogram)>>,
    }

    fn global() -> &'static Store {
        static STORE: OnceLock<Store> = OnceLock::new();
        STORE.get_or_init(|| Store {
            last: Mutex::new(None),
            by_kind: Mutex::new(BTreeMap::new()),
        })
    }

    /// Publishes a finished campaign's profile and its unit-latency
    /// histogram. The profile becomes [`last_profile`] and the per-kind
    /// slot; the histogram accumulates into the kind's running latency
    /// distribution.
    pub fn publish(profile: EngineProfile, unit_hist: &LogHistogram) {
        let store = global();
        let mut by_kind = store.by_kind.lock().expect("telemetry store lock");
        match by_kind.get_mut(&profile.kind) {
            Some((slot_profile, slot_hist)) => {
                slot_hist.absorb(unit_hist);
                *slot_profile = profile.clone();
            }
            None => {
                by_kind.insert(profile.kind.clone(), (profile.clone(), unit_hist.clone()));
            }
        }
        drop(by_kind);
        *store.last.lock().expect("telemetry store lock") = Some(profile);
    }

    /// The most recently published profile, if any.
    pub fn last_profile() -> Option<EngineProfile> {
        global().last.lock().expect("telemetry store lock").clone()
    }

    /// The most recent profile published under `kind`. Immune to races
    /// with campaigns of other kinds (tests and `rjamctl report` key on
    /// this).
    pub fn profile_for(kind: &str) -> Option<EngineProfile> {
        global()
            .by_kind
            .lock()
            .expect("telemetry store lock")
            .get(kind)
            .map(|(p, _)| p.clone())
    }

    /// Running unit-latency summaries per kind, accumulated across every
    /// campaign this process has run.
    pub fn kind_summaries() -> Vec<(String, HistSummary)> {
        global()
            .by_kind
            .lock()
            .expect("telemetry store lock")
            .iter()
            .map(|(k, (_, h))| (k.clone(), h.summary()))
            .collect()
    }

    /// Clears the store (tests).
    pub fn clear() {
        let store = global();
        store.by_kind.lock().expect("telemetry store lock").clear();
        *store.last.lock().expect("telemetry store lock") = None;
    }
}

#[cfg(feature = "obs")]
pub use store::*;

#[cfg(not(feature = "obs"))]
mod store {
    use super::EngineProfile;
    use crate::hist::{HistSummary, LogHistogram};

    /// No-op publish (`obs` feature disabled).
    #[inline(always)]
    pub fn publish(_profile: EngineProfile, _unit_hist: &LogHistogram) {}

    /// Always `None` (`obs` feature disabled).
    #[inline(always)]
    pub fn last_profile() -> Option<EngineProfile> {
        None
    }

    /// Always `None` (`obs` feature disabled).
    #[inline(always)]
    pub fn profile_for(_kind: &str) -> Option<EngineProfile> {
        None
    }

    /// Always empty (`obs` feature disabled).
    #[inline(always)]
    pub fn kind_summaries() -> Vec<(String, HistSummary)> {
        Vec::new()
    }

    /// No-op (`obs` feature disabled).
    #[inline(always)]
    pub fn clear() {}
}

#[cfg(not(feature = "obs"))]
pub use store::*;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> EngineProfile {
        EngineProfile {
            kind: "test_kind".into(),
            units: 8,
            shards: 4,
            wall_ns: 1_000_000,
            workers: vec![
                WorkerStats {
                    worker: 0,
                    units: 4,
                    busy_ns: 900_000,
                    idle_ns: 50_000,
                    merge_wait_ns: 30_000,
                },
                WorkerStats {
                    worker: 1,
                    units: 4,
                    busy_ns: 700_000,
                    idle_ns: 80_000,
                    merge_wait_ns: 200_000,
                },
            ],
            unit_ns: HistSummary {
                count: 8,
                mean: 200_000.0,
                min: 100_000,
                max: 900_000,
                p50: 150_000,
                p95: 800_000,
                p99: 900_000,
            },
            median_unit_ns: 150_000,
            stragglers: vec![Straggler {
                unit: 5,
                worker: 1,
                seed: 0xABCD_EF01_2345_6789,
                duration_ns: 900_000,
            }],
        }
    }

    #[test]
    fn attribution_accounts_all_buckets() {
        let p = sample_profile();
        // (900+50+30 + 700+80+200) / (2 * 1000) = 1960/2000.
        let f = p.attributed_fraction();
        assert!((f - 0.98).abs() < 1e-9, "got {f}");
        assert_eq!(p.busy_ns(), 1_600_000);
        assert_eq!(p.idle_ns(), 130_000);
        assert_eq!(p.merge_wait_ns(), 230_000);
    }

    #[test]
    fn attribution_clamps_and_handles_empty() {
        let mut p = sample_profile();
        p.workers.clear();
        assert_eq!(p.attributed_fraction(), 0.0);
        let mut p = sample_profile();
        p.wall_ns = 1; // nonsense input: clamp, don't report > 100%
        assert_eq!(p.attributed_fraction(), 1.0);
    }

    #[test]
    fn utilization_is_busy_share() {
        let w = WorkerStats {
            worker: 0,
            units: 1,
            busy_ns: 75,
            idle_ns: 20,
            merge_wait_ns: 5,
        };
        assert!((w.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(WorkerStats::default().utilization(), 0.0);
    }

    #[test]
    fn render_includes_every_section_and_seed() {
        let text = sample_profile().render(5);
        assert!(text.contains("engine profile: test_kind"), "{text}");
        assert!(text.contains("attributed 98.0%"), "{text}");
        assert!(text.contains("unit latency"), "{text}");
        assert!(text.contains("stragglers (> 4x median"), "{text}");
        assert!(text.contains("seed 0xabcdef0123456789"), "{text}");
        // Worker rows: one per worker, between the table header and the
        // attribution line.
        let rows = text
            .lines()
            .skip_while(|l| !l.starts_with("worker"))
            .skip(1)
            .take_while(|l| !l.starts_with("attributed"))
            .count();
        assert_eq!(rows, 2, "{text}");
    }

    #[test]
    fn render_caps_stragglers_at_top() {
        let mut p = sample_profile();
        p.stragglers = (0..7)
            .map(|k| Straggler {
                unit: k,
                worker: 0,
                seed: k as u64,
                duration_ns: 1_000_000 - k as u64,
            })
            .collect();
        let text = p.render(3);
        assert_eq!(text.matches("x median)").count(), 3, "{text}");
        assert!(text.contains("... and 4 more"), "{text}");
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(48_211), "48.2 us");
        assert_eq!(fmt_ns(345_217_190), "345.2 ms");
        assert_eq!(fmt_ns(12_000_000_000), "12.00 s");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn store_round_trips_by_kind() {
        let mut p = sample_profile();
        p.kind = "test_store_round_trip".into();
        let mut h = crate::hist::LogHistogram::new();
        h.record(100_000);
        h.record(900_000);
        publish(p.clone(), &h);
        let back = profile_for("test_store_round_trip").expect("stored");
        assert_eq!(back, p);
        // Publishing again accumulates the kind histogram.
        publish(p.clone(), &h);
        let sums = kind_summaries();
        let (_, s) = sums
            .iter()
            .find(|(k, _)| k == "test_store_round_trip")
            .expect("kind summary");
        assert_eq!(s.count, 4);
        assert!(last_profile().is_some());
    }
}
