//! Fixed-capacity flight recorder with an anomaly-triggered dump.
//!
//! The hardware idiom: a ring of the most recent N structured events
//! (cycle- or sample-indexed), always recording, overwriting the oldest.
//! When an anomaly *trips* the recorder — a response-time budget violation,
//! a FIFO overflow — the ring is frozen into a dump so the events *leading
//! up to* the anomaly survive, exactly like a logic analyzer's pre-trigger
//! window (and like this repo's own `TriggerCapture` does for IQ samples).
//!
//! Components embed their own [`FlightRecorder`]; a process-wide recorder
//! ([`record_event`] / [`trip_global`]) exists for cross-component
//! milestones (autonomous-jammer state transitions, campaign phases) and is
//! what a [`crate::MetricsSnapshot`] captures.

/// One structured event: a static kind plus two free-form operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsEvent {
    /// Monotone sequence number (total events ever recorded, 1-based).
    pub seq: u64,
    /// Timestamp in the component's own unit (cycles, samples, µs).
    pub t: u64,
    /// Static event kind, e.g. `"xcorr_fire"`.
    pub kind: &'static str,
    /// First operand (meaning depends on `kind`).
    pub a: i64,
    /// Second operand.
    pub b: i64,
}

/// Why and when the recorder tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TripInfo {
    /// Timestamp of the anomaly.
    pub t: u64,
    /// Static reason, e.g. `"t_resp_over_budget"`.
    pub reason: &'static str,
    /// Sequence number at trip time.
    pub seq: u64,
}

#[cfg(feature = "obs")]
mod enabled {
    use super::{ObsEvent, TripInfo};
    use std::collections::VecDeque;
    use std::sync::{Mutex, OnceLock};

    /// Ring buffer of recent events, freezable on anomaly.
    #[derive(Clone, Debug)]
    pub struct FlightRecorder {
        cap: usize,
        seq: u64,
        ring: VecDeque<ObsEvent>,
        trip: Option<TripInfo>,
        frozen: Vec<ObsEvent>,
    }

    impl FlightRecorder {
        /// Creates a recorder keeping the `cap` most recent events.
        ///
        /// # Panics
        /// Panics if `cap == 0`.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "flight recorder capacity must be positive");
            FlightRecorder {
                cap,
                seq: 0,
                ring: VecDeque::with_capacity(cap),
                trip: None,
                frozen: Vec::new(),
            }
        }

        /// Records one event, evicting the oldest when full.
        #[inline]
        pub fn record(&mut self, t: u64, kind: &'static str, a: i64, b: i64) {
            self.seq += 1;
            if self.ring.len() == self.cap {
                self.ring.pop_front();
            }
            self.ring.push_back(ObsEvent {
                seq: self.seq,
                t,
                kind,
                a,
                b,
            });
        }

        /// Trips the recorder: the *first* trip freezes a copy of the ring
        /// (the pre-anomaly window); later trips are ignored so the original
        /// context is preserved.
        pub fn trip(&mut self, t: u64, reason: &'static str) {
            if self.trip.is_none() {
                self.trip = Some(TripInfo {
                    t,
                    reason,
                    seq: self.seq,
                });
                self.frozen = self.ring.iter().copied().collect();
                crate::registry::counter("obs.recorder_trips").inc();
            }
        }

        /// True once an anomaly has tripped the recorder.
        pub fn is_tripped(&self) -> bool {
            self.trip.is_some()
        }

        /// The first trip, if any.
        pub fn trip_info(&self) -> Option<TripInfo> {
            self.trip
        }

        /// Events recorded since construction (total, not ring occupancy).
        pub fn total(&self) -> u64 {
            self.seq
        }

        /// Events currently in the ring, oldest first.
        pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
            self.ring.iter()
        }

        /// The anomaly dump: the frozen pre-trip window if tripped,
        /// otherwise the live ring.
        pub fn dump(&self) -> Vec<ObsEvent> {
            if self.trip.is_some() {
                self.frozen.clone()
            } else {
                self.ring.iter().copied().collect()
            }
        }

        /// Clears events and trip state, keeping the capacity.
        pub fn clear(&mut self) {
            self.ring.clear();
            self.frozen.clear();
            self.trip = None;
            self.seq = 0;
        }
    }

    fn global() -> &'static Mutex<FlightRecorder> {
        static REC: OnceLock<Mutex<FlightRecorder>> = OnceLock::new();
        REC.get_or_init(|| Mutex::new(FlightRecorder::new(super::GLOBAL_CAPACITY)))
    }

    /// Records into the process-wide flight recorder.
    pub fn record_event(t: u64, kind: &'static str, a: i64, b: i64) {
        global()
            .lock()
            .expect("obs recorder lock")
            .record(t, kind, a, b);
    }

    /// Trips the process-wide flight recorder.
    pub fn trip_global(t: u64, reason: &'static str) {
        global().lock().expect("obs recorder lock").trip(t, reason);
    }

    /// Dump plus trip info of the process-wide recorder.
    pub fn global_dump() -> (Vec<ObsEvent>, Option<TripInfo>) {
        let rec = global().lock().expect("obs recorder lock");
        (rec.dump(), rec.trip_info())
    }

    /// Clears the process-wide recorder.
    pub fn global_reset() {
        global().lock().expect("obs recorder lock").clear();
    }
}

#[cfg(feature = "obs")]
pub use enabled::*;

#[cfg(not(feature = "obs"))]
mod disabled {
    use super::{ObsEvent, TripInfo};

    /// Zero-sized no-op recorder (`obs` feature disabled).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct FlightRecorder;

    impl FlightRecorder {
        /// A no-op recorder.
        pub fn new(_cap: usize) -> Self {
            FlightRecorder
        }
        /// No-op.
        #[inline(always)]
        pub fn record(&mut self, _t: u64, _kind: &'static str, _a: i64, _b: i64) {}
        /// No-op.
        #[inline(always)]
        pub fn trip(&mut self, _t: u64, _reason: &'static str) {}
        /// Always false.
        #[inline(always)]
        pub fn is_tripped(&self) -> bool {
            false
        }
        /// Always `None`.
        #[inline(always)]
        pub fn trip_info(&self) -> Option<TripInfo> {
            None
        }
        /// Always 0.
        #[inline(always)]
        pub fn total(&self) -> u64 {
            0
        }
        /// Always empty.
        pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
            [].iter()
        }
        /// Always empty.
        pub fn dump(&self) -> Vec<ObsEvent> {
            Vec::new()
        }
        /// No-op.
        #[inline(always)]
        pub fn clear(&mut self) {}
    }

    /// No-op (`obs` feature disabled).
    #[inline(always)]
    pub fn record_event(_t: u64, _kind: &'static str, _a: i64, _b: i64) {}

    /// No-op (`obs` feature disabled).
    #[inline(always)]
    pub fn trip_global(_t: u64, _reason: &'static str) {}

    /// Always empty (`obs` feature disabled).
    pub fn global_dump() -> (Vec<ObsEvent>, Option<TripInfo>) {
        (Vec::new(), None)
    }

    /// No-op (`obs` feature disabled).
    #[inline(always)]
    pub fn global_reset() {}
}

#[cfg(not(feature = "obs"))]
pub use disabled::*;

/// Capacity of the process-wide flight recorder.
pub const GLOBAL_CAPACITY: usize = 1024;

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = FlightRecorder::new(3);
        for t in 1..=5u64 {
            r.record(t, "tick", t as i64, 0);
        }
        let ts: Vec<u64> = r.events().map(|e| e.t).collect();
        assert_eq!(ts, vec![3, 4, 5]);
        assert_eq!(r.total(), 5);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5], "seq is monotone across eviction");
    }

    #[test]
    fn first_trip_freezes_dump() {
        let mut r = FlightRecorder::new(4);
        r.record(10, "a", 0, 0);
        r.record(20, "b", 0, 0);
        r.trip(25, "anomaly_one");
        // Post-trip events keep recording but do not disturb the dump.
        r.record(30, "c", 0, 0);
        r.trip(35, "anomaly_two");
        let info = r.trip_info().expect("tripped");
        assert_eq!(info.reason, "anomaly_one");
        assert_eq!(info.t, 25);
        let dump: Vec<&'static str> = r.dump().iter().map(|e| e.kind).collect();
        assert_eq!(dump, vec!["a", "b"], "dump is the pre-anomaly window");
        let live: Vec<&'static str> = r.events().map(|e| e.kind).collect();
        assert_eq!(live, vec!["a", "b", "c"], "ring keeps recording");
    }

    #[test]
    fn trips_surface_in_the_registry() {
        // Delta assertion: other tests (and trip_global floods) share the
        // counter. Only the *first* trip of a recorder counts.
        let before = crate::registry::counter_value("obs.recorder_trips");
        let mut r = FlightRecorder::new(2);
        r.record(1, "x", 0, 0);
        r.trip(2, "anomaly");
        r.trip(3, "ignored_retrip");
        let after = crate::registry::counter_value("obs.recorder_trips");
        // > not ==: parallel tests trip their own recorders concurrently.
        assert!(after > before, "first trip must count: {before} -> {after}");
    }

    #[test]
    fn untripped_dump_is_live_ring() {
        let mut r = FlightRecorder::new(2);
        r.record(1, "x", 0, 0);
        assert_eq!(r.dump().len(), 1);
        assert!(!r.is_tripped());
    }

    #[test]
    fn wrapped_ring_dumps_in_chronological_order() {
        // Wrap the ring almost three times: the dump must still read
        // oldest-first with contiguous sequence numbers, exactly like a
        // logic analyzer's pre-trigger window.
        let mut r = FlightRecorder::new(4);
        for t in 1..=11u64 {
            r.record(t * 10, "tick", t as i64, 0);
        }
        let dump = r.dump();
        assert_eq!(dump.len(), 4);
        let ts: Vec<u64> = dump.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![80, 90, 100, 110], "oldest-first after wrap");
        let seqs: Vec<u64> = dump.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![8, 9, 10, 11], "seq contiguous across eviction");
        assert_eq!(r.total(), 11);
    }

    #[test]
    fn trip_at_capacity_preserves_pre_anomaly_window() {
        let mut r = FlightRecorder::new(3);
        for t in 1..=3u64 {
            r.record(t, "fill", 0, 0);
        }
        // Ring exactly full: a trip at this boundary must freeze the whole
        // window, and later floods must not leak into the dump.
        r.trip(4, "at_capacity");
        for t in 5..=20u64 {
            r.record(t, "post", 0, 0);
        }
        let dump = r.dump();
        assert_eq!(dump.iter().map(|e| e.t).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(r.trip_info().expect("tripped").seq, 3);
    }

    #[test]
    fn trip_global_near_capacity_keeps_trip_and_window() {
        // The only test in this binary that touches the process-wide
        // recorder (registry tests don't), so no cross-test interference.
        global_reset();
        for t in 0..(GLOBAL_CAPACITY as u64 + 10) {
            record_event(t, "flood", t as i64, 0);
        }
        trip_global(99_999, "global_anomaly");
        // Keep flooding after the trip: the frozen dump must survive.
        for t in 0..50u64 {
            record_event(t + 1_000_000, "after", 0, 0);
        }
        let (dump, trip) = global_dump();
        let trip = trip.expect("trip survived the flood");
        assert_eq!(trip.reason, "global_anomaly");
        assert_eq!(trip.t, 99_999);
        assert_eq!(
            dump.len(),
            GLOBAL_CAPACITY,
            "full pre-anomaly window, nothing dropped"
        );
        assert!(dump.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        assert!(dump.iter().all(|e| e.kind == "flood"), "no post-trip leak");
        global_reset();
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = FlightRecorder::new(2);
        r.record(1, "x", 0, 0);
        r.trip(2, "y");
        r.clear();
        assert!(!r.is_tripped());
        assert_eq!(r.total(), 0);
        assert!(r.dump().is_empty());
    }
}
