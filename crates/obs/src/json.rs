//! Minimal JSON writer/parser — the same dependency-free dialect as
//! `rjam-bench::harness`.
//!
//! The writer side is a pair of escaping/formatting helpers used by
//! [`crate::snapshot::MetricsSnapshot::to_json`]; the reader side is a small
//! recursive-descent parser for loading snapshots back (`rjam stats <file>`).
//! Numbers parse as `f64` (counters stay exact through 2^53, far beyond any
//! realistic run).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is normalised (sorted).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Serialises a string with JSON escaping.
pub fn write_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialises an `f64` as a JSON number (no NaN/Inf — clamped to 0).
pub fn write_number(n: f64) -> String {
    if !n.is_finite() {
        return "0".into();
    }
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Serialises any [`Value`] compactly (no whitespace, object keys in the
/// map's sorted order). The inverse of [`parse`] up to number formatting;
/// used to embed whole documents (campaign specs, metrics snapshots) in
/// single NDJSON lines.
pub fn write_value(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Bool(true) => "true".into(),
        Value::Bool(false) => "false".into(),
        Value::Number(n) => write_number(*n),
        Value::String(s) => write_string(s),
        Value::Array(items) => {
            let body: Vec<String> = items.iter().map(write_value).collect();
            format!("[{}]", body.join(","))
        }
        Value::Object(map) => {
            let body: Vec<String> = map
                .iter()
                .map(|(k, v)| format!("{}:{}", write_string(k), write_value(v)))
                .collect();
            format!("{{{}}}", body.join(","))
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        s.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_escapes() {
        let s = "a\"b\\c\nd\te\u{1}";
        let ser = write_string(s);
        let Value::String(back) = parse(&ser).unwrap() else {
            panic!("not a string");
        };
        assert_eq!(back, s);
    }

    #[test]
    fn numbers_render_integers_cleanly() {
        assert_eq!(write_number(42.0), "42");
        assert_eq!(write_number(-3.0), "-3");
        assert_eq!(write_number(2.5), "2.5");
        assert_eq!(write_number(f64::NAN), "0");
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":true,"d":"x"}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj["c"], Value::Bool(true));
        let arr = obj["a"].as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].as_object().unwrap()["b"], Value::Null);
    }

    #[test]
    fn write_value_round_trips() {
        let doc = r#"{"a":[1,2.5,{"b":null}],"c":true,"d":"x\ny","e":false}"#;
        let v = parse(doc).unwrap();
        assert_eq!(write_value(&v), doc);
        assert_eq!(parse(&write_value(&v)).unwrap(), v);
        assert_eq!(write_value(&Value::Array(vec![])), "[]");
        assert_eq!(write_value(&Value::Object(BTreeMap::new())), "{}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
