//! `rjam-job-v1` — the typed wire protocol of the campaign service.
//!
//! Line-delimited JSON over stdin/stdout or a Unix socket, built on the
//! shared [`rjam_obs::proto`] envelope from day one: every line carries
//! `"v":"rjam-job-v1"`, requests name their verb in `req`, responses in
//! `ev`. Campaign descriptions ride inside as
//! [`rjam_core::spec::CampaignRequest`] objects, so the daemon boundary
//! reuses exactly the validation the core crate defines —
//! reject-before-enqueue with a typed [`JobError`].
//!
//! A `watch` stream interleaves two protocols on one connection: the
//! job's `rjam-progress-v1` lines (each tagged `"job":"<id>"` by the
//! daemon's progress scope) and `rjam-job-v1` terminal lines
//! (`job_metrics`, then `job_done` / `job_cancelled`). Clients route on
//! the `v` tag.

use rjam_core::spec::{CampaignRequest, SpecError};
use rjam_obs::json::{self, Value};
use rjam_obs::{Envelope, ParseError, Protocol};
use std::collections::BTreeMap;
use std::fmt;

/// The protocol this module speaks.
pub const PROTOCOL: Protocol = Protocol::JOB;
/// Schema tag carried by every line (`rjam-job-v1`).
pub const SCHEMA: &str = PROTOCOL.tag;

/// Why the daemon refused a request — the typed half of [`JobError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobErrorKind {
    /// The line was not a well-formed `rjam-job-v1` request.
    BadRequest,
    /// The campaign spec parsed but failed validation.
    BadSpec,
    /// The job queue is at capacity; retry after a job drains.
    QueueFull,
    /// No job with the given id.
    UnknownJob,
    /// The job exists but is not in a state the verb applies to.
    BadState,
    /// The daemon is shutting down and accepts no new work.
    Shutdown,
}

impl JobErrorKind {
    /// Stable wire code for this kind.
    pub fn code(self) -> &'static str {
        match self {
            JobErrorKind::BadRequest => "bad_request",
            JobErrorKind::BadSpec => "bad_spec",
            JobErrorKind::QueueFull => "queue_full",
            JobErrorKind::UnknownJob => "unknown_job",
            JobErrorKind::BadState => "bad_state",
            JobErrorKind::Shutdown => "shutdown",
        }
    }

    /// Inverse of [`JobErrorKind::code`].
    pub fn from_code(code: &str) -> Option<Self> {
        Some(match code {
            "bad_request" => JobErrorKind::BadRequest,
            "bad_spec" => JobErrorKind::BadSpec,
            "queue_full" => JobErrorKind::QueueFull,
            "unknown_job" => JobErrorKind::UnknownJob,
            "bad_state" => JobErrorKind::BadState,
            "shutdown" => JobErrorKind::Shutdown,
            _ => return None,
        })
    }
}

/// A refused request: typed kind plus a human-readable message.
#[derive(Clone, Debug, PartialEq)]
pub struct JobError {
    /// What class of refusal this is.
    pub kind: JobErrorKind,
    /// Details (validation failure text, offending job id, ...).
    pub message: String,
}

impl JobError {
    /// Builds an error of `kind` with a message.
    pub fn new(kind: JobErrorKind, message: impl Into<String>) -> Self {
        JobError {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.code(), self.message)
    }
}

impl std::error::Error for JobError {}

impl From<SpecError> for JobError {
    fn from(e: SpecError) -> Self {
        let kind = match e {
            SpecError::Parse(_) => JobErrorKind::BadRequest,
            SpecError::Field { .. } => JobErrorKind::BadSpec,
        };
        JobError::new(kind, e.to_string())
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the FIFO queue.
    Queued,
    /// Currently executing on the shared engine.
    Running,
    /// Completed; its export is available.
    Done,
    /// Cancelled (by request); its checkpoint is retained for resume.
    Cancelled,
}

impl JobState {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`JobState::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }

    /// Whether the job will never run again without a `resume`.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Cancelled)
    }
}

/// One row of a `status` response.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatus {
    /// Job id.
    pub job: String,
    /// Campaign kind tag (`wifi_detection`, ...).
    pub kind: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Checkpointed completed units (updated when a run ends or is
    /// interrupted, not live per-unit).
    pub units_done: u64,
    /// Total engine units the campaign spans.
    pub units_total: u64,
}

/// A client request line.
#[derive(Clone, Debug, PartialEq)]
pub enum JobRequest {
    /// Submit a new campaign job.
    Submit {
        /// The campaign to run (already shape-parsed, not yet validated).
        spec: CampaignRequest,
    },
    /// Report one job (or all jobs, when `job` is `None`).
    Status {
        /// Restrict to one job id.
        job: Option<String>,
    },
    /// Stream a job's progress lines until it reaches a terminal state.
    Watch {
        /// Job id to follow.
        job: String,
    },
    /// Cancel a queued or running job, retaining its checkpoint.
    Cancel {
        /// Job id to cancel.
        job: String,
    },
    /// Re-enqueue a cancelled job; it resumes from its checkpoint.
    Resume {
        /// Job id to resume.
        job: String,
    },
}

impl JobRequest {
    /// Serializes to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut o = BTreeMap::new();
        o.insert("v".into(), Value::String(SCHEMA.into()));
        let req = match self {
            JobRequest::Submit { spec } => {
                o.insert("spec".into(), spec.to_value());
                "submit"
            }
            JobRequest::Status { job } => {
                if let Some(job) = job {
                    o.insert("job".into(), Value::String(job.clone()));
                }
                "status"
            }
            JobRequest::Watch { job } => {
                o.insert("job".into(), Value::String(job.clone()));
                "watch"
            }
            JobRequest::Cancel { job } => {
                o.insert("job".into(), Value::String(job.clone()));
                "cancel"
            }
            JobRequest::Resume { job } => {
                o.insert("job".into(), Value::String(job.clone()));
                "resume"
            }
        };
        o.insert("req".into(), Value::String(req.into()));
        json::write_value(&Value::Object(o))
    }

    /// Parses one request line. Campaign specs are shape-checked here;
    /// [`CampaignRequest::validate`] runs at the enqueue boundary.
    pub fn from_line(line: &str) -> Result<Self, ParseError> {
        let env = Envelope::parse(&PROTOCOL, line)?;
        match env.event("req")? {
            "submit" => {
                let spec = env
                    .get("spec")
                    .ok_or(ParseError::Field {
                        field: "spec".to_string(),
                        expected: "campaign object",
                    })
                    .and_then(|v| {
                        CampaignRequest::from_value(v).map_err(|e| match e {
                            SpecError::Parse(p) => p,
                            other => ParseError::Invalid(other.to_string()),
                        })
                    })?;
                Ok(JobRequest::Submit { spec })
            }
            "status" => Ok(JobRequest::Status {
                job: env.get("job").and_then(Value::as_str).map(str::to_string),
            }),
            "watch" => Ok(JobRequest::Watch {
                job: env.string("job")?,
            }),
            "cancel" => Ok(JobRequest::Cancel {
                job: env.string("job")?,
            }),
            "resume" => Ok(JobRequest::Resume {
                job: env.string("job")?,
            }),
            other => Err(ParseError::UnknownEvent {
                found: other.to_string(),
            }),
        }
    }
}

/// A daemon response line (`ev`-tagged).
#[derive(Clone, Debug, PartialEq)]
pub enum JobResponse {
    /// A submit or resume was accepted.
    Accepted {
        /// Assigned (or resumed) job id.
        job: String,
        /// Jobs waiting in the queue after this acceptance, including
        /// this one — the backpressure signal.
        queue_depth: u64,
    },
    /// The request was refused.
    Error(JobError),
    /// A status report.
    Status {
        /// One row per job, submission order.
        jobs: Vec<JobStatus>,
    },
    /// Final registry metrics for a finished job (obs builds only).
    Metrics {
        /// Job id.
        job: String,
        /// The `rjam-metrics-v1` snapshot document, embedded compact.
        snapshot: Value,
    },
    /// A job completed; `export` holds its full export bytes.
    Done {
        /// Job id.
        job: String,
        /// Export text, byte-identical to a direct in-process run.
        export: String,
    },
    /// A job was cancelled; its checkpoint survives for `resume`.
    Cancelled {
        /// Job id.
        job: String,
        /// Units already checkpointed (resume skips these).
        units_done: u64,
    },
}

impl JobResponse {
    /// Serializes to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut o = BTreeMap::new();
        o.insert("v".into(), Value::String(SCHEMA.into()));
        let ev = match self {
            JobResponse::Accepted { job, queue_depth } => {
                o.insert("job".into(), Value::String(job.clone()));
                o.insert("queue_depth".into(), Value::Number(*queue_depth as f64));
                "accepted"
            }
            JobResponse::Error(e) => {
                o.insert("code".into(), Value::String(e.kind.code().into()));
                o.insert("message".into(), Value::String(e.message.clone()));
                "error"
            }
            JobResponse::Status { jobs } => {
                let rows = jobs
                    .iter()
                    .map(|s| {
                        let mut r = BTreeMap::new();
                        r.insert("job".into(), Value::String(s.job.clone()));
                        r.insert("kind".into(), Value::String(s.kind.clone()));
                        r.insert("state".into(), Value::String(s.state.name().into()));
                        r.insert("units_done".into(), Value::Number(s.units_done as f64));
                        r.insert("units_total".into(), Value::Number(s.units_total as f64));
                        Value::Object(r)
                    })
                    .collect();
                o.insert("jobs".into(), Value::Array(rows));
                "status"
            }
            JobResponse::Metrics { job, snapshot } => {
                o.insert("job".into(), Value::String(job.clone()));
                o.insert("snapshot".into(), snapshot.clone());
                "job_metrics"
            }
            JobResponse::Done { job, export } => {
                o.insert("job".into(), Value::String(job.clone()));
                o.insert("export".into(), Value::String(export.clone()));
                "job_done"
            }
            JobResponse::Cancelled { job, units_done } => {
                o.insert("job".into(), Value::String(job.clone()));
                o.insert("units_done".into(), Value::Number(*units_done as f64));
                "job_cancelled"
            }
        };
        o.insert("ev".into(), Value::String(ev.into()));
        json::write_value(&Value::Object(o))
    }

    /// Parses one response line.
    pub fn from_line(line: &str) -> Result<Self, ParseError> {
        let env = Envelope::parse(&PROTOCOL, line)?;
        match env.event("ev")? {
            "accepted" => Ok(JobResponse::Accepted {
                job: env.string("job")?,
                queue_depth: env.u64("queue_depth")?,
            }),
            "error" => {
                let code = env.string("code")?;
                let kind = JobErrorKind::from_code(&code).ok_or(ParseError::UnknownEvent {
                    found: code.clone(),
                })?;
                Ok(JobResponse::Error(JobError::new(
                    kind,
                    env.string("message")?,
                )))
            }
            "status" => {
                let rows = env.array("jobs")?;
                let mut jobs = Vec::with_capacity(rows.len());
                for (k, row) in rows.iter().enumerate() {
                    let bad = |what: &str| {
                        ParseError::Invalid(format!("status row {k}: missing/invalid '{what}'"))
                    };
                    let r = row.as_object().ok_or_else(|| bad("object"))?;
                    let s = |f: &str| -> Result<String, ParseError> {
                        r.get(f)
                            .and_then(Value::as_str)
                            .map(str::to_string)
                            .ok_or_else(|| bad(f))
                    };
                    let n = |f: &str| -> Result<u64, ParseError> {
                        r.get(f).and_then(Value::as_u64).ok_or_else(|| bad(f))
                    };
                    let state_name = s("state")?;
                    jobs.push(JobStatus {
                        job: s("job")?,
                        kind: s("kind")?,
                        state: JobState::from_name(&state_name).ok_or_else(|| bad("state"))?,
                        units_done: n("units_done")?,
                        units_total: n("units_total")?,
                    });
                }
                Ok(JobResponse::Status { jobs })
            }
            "job_metrics" => Ok(JobResponse::Metrics {
                job: env.string("job")?,
                snapshot: env.get("snapshot").cloned().ok_or(ParseError::Field {
                    field: "snapshot".to_string(),
                    expected: "object",
                })?,
            }),
            "job_done" => Ok(JobResponse::Done {
                job: env.string("job")?,
                export: env.string("export")?,
            }),
            "job_cancelled" => Ok(JobResponse::Cancelled {
                job: env.string("job")?,
                units_done: env.u64("units_done")?,
            }),
            other => Err(ParseError::UnknownEvent {
                found: other.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjam_core::presets::DetectionPreset;

    fn spec() -> CampaignRequest {
        CampaignRequest::FalseAlarm {
            preset: DetectionPreset::WifiShortPreamble { threshold: 0.3 },
            samples: 1 << 18,
            seed: 5,
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            JobRequest::Submit { spec: spec() },
            JobRequest::Status { job: None },
            JobRequest::Status {
                job: Some("job-3".into()),
            },
            JobRequest::Watch {
                job: "job-1".into(),
            },
            JobRequest::Cancel {
                job: "job-2".into(),
            },
            JobRequest::Resume {
                job: "job-2".into(),
            },
        ];
        for req in reqs {
            let line = req.to_line();
            assert!(line.contains("\"v\":\"rjam-job-v1\""), "{line}");
            assert_eq!(JobRequest::from_line(&line).expect("parses"), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            JobResponse::Accepted {
                job: "job-1".into(),
                queue_depth: 3,
            },
            JobResponse::Error(JobError::new(JobErrorKind::QueueFull, "queue is full")),
            JobResponse::Status {
                jobs: vec![JobStatus {
                    job: "job-1".into(),
                    kind: "wifi_detection".into(),
                    state: JobState::Running,
                    units_done: 4,
                    units_total: 12,
                }],
            },
            JobResponse::Done {
                job: "job-1".into(),
                export: "snr_db,p_detect\n1,0.5\n".into(),
            },
            JobResponse::Cancelled {
                job: "job-1".into(),
                units_done: 7,
            },
        ];
        for resp in resps {
            let line = resp.to_line();
            assert_eq!(JobResponse::from_line(&line).expect("parses"), resp);
        }
    }

    #[test]
    fn wrong_schema_is_refused() {
        let err = JobRequest::from_line(r#"{"v":"rjam-progress-v1","req":"status"}"#)
            .expect_err("wrong tag");
        assert!(err.to_string().contains("unsupported schema"), "{err}");
    }

    #[test]
    fn submit_spec_is_shape_checked_at_parse() {
        let line = r#"{"v":"rjam-job-v1","req":"submit","spec":{"campaign":"nope"}}"#;
        let err = JobRequest::from_line(line).expect_err("unknown campaign");
        assert!(err.to_string().contains("unknown campaign"), "{err}");
    }

    #[test]
    fn error_codes_round_trip() {
        for kind in [
            JobErrorKind::BadRequest,
            JobErrorKind::BadSpec,
            JobErrorKind::QueueFull,
            JobErrorKind::UnknownJob,
            JobErrorKind::BadState,
            JobErrorKind::Shutdown,
        ] {
            assert_eq!(JobErrorKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(JobErrorKind::from_code("nope"), None);
    }
}
