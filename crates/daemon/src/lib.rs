//! # rjam-daemon — the resident campaign service
//!
//! `rjamd` turns the one-shot campaign runners of [`rjam_core`] into a
//! **service**: a resident process that accepts typed campaign jobs over
//! the line-delimited `rjam-job-v1` protocol (stdin/stdout or a Unix
//! socket), multiplexes them FIFO-fair onto one shared
//! [`rjam_core::CampaignEngine`] worker pool, streams per-job
//! `rjam-progress-v1`/`rjam-metrics-v1` lines tagged with job ids, and
//! supports cancel + resume through checkpointed shard progress — a
//! resumed job's export is **byte-identical** to an uninterrupted run.
//!
//! * [`proto`] — the `rjam-job-v1` wire protocol: typed
//!   [`proto::JobRequest`]/[`proto::JobResponse`] messages on the shared
//!   [`rjam_obs::proto`] envelope, with typed [`proto::JobError`] refusals;
//! * [`service`] — the [`service::Daemon`]: bounded FIFO queue
//!   (`daemon.queue_depth` gauge), single runner thread, per-job replay
//!   buffers for late watchers, cooperative unit-granular cancellation.
//!
//! `rjamctl submit|status|watch|cancel|resume` are the matching clients.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
pub mod service;

pub use proto::{JobError, JobErrorKind, JobRequest, JobResponse, JobState, JobStatus};
pub use service::{Daemon, Serve, DEFAULT_QUEUE_CAP};
