//! The resident campaign service: FIFO job queue, one runner on a shared
//! engine, cancel + checkpoint + resume, and per-job line streams.
//!
//! ## Architecture
//!
//! One [`Daemon`] owns one [`CampaignEngine`] and one **runner thread**.
//! Jobs are validated at submit (reject-before-enqueue), assigned an id
//! and appended to a bounded FIFO; the runner pops them in order and runs
//! exactly one at a time, so every job gets the engine's full worker pool
//! and jobs are fair in arrival order — there is no interleaving to make
//! unfair. Queue depth is bounded (`queue_full` on overflow) and surfaced
//! as the `daemon.queue_depth` gauge.
//!
//! While a job runs, the daemon sets the process progress scope to its id
//! — the engine's `rjam-progress-v1` lines arrive tagged `"job":"<id>"` —
//! and routes the progress sink into the job's **replay buffer**. A
//! `watch` replays the buffer then follows live appends until the job is
//! terminal, so late watchers see the identical stream early watchers
//! did. Completion appends a `job_metrics` snapshot and the terminal
//! `job_done`/`job_cancelled` line to the same buffer.
//!
//! Cancellation is cooperative and unit-granular: `cancel` trips the
//! job's [`CancelToken`]; the engine stops claiming units, merges the
//! finished ones into the job's [`JobCheckpoint`] and the job parks in
//! `cancelled` with its checkpoint retained. `resume` re-enqueues it; the
//! engine re-derives every remaining unit's seed from its original index,
//! so the final export is **byte-identical** to an uninterrupted run.

use crate::proto::{JobError, JobErrorKind, JobRequest, JobResponse, JobState, JobStatus};
use rjam_core::spec::{CampaignRequest, JobCheckpoint};
use rjam_core::{CampaignEngine, CancelToken};
use rjam_obs::json;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Default bound on queued (not yet running) jobs.
pub const DEFAULT_QUEUE_CAP: usize = 16;

struct Job {
    request: CampaignRequest,
    state: JobState,
    ckpt: JobCheckpoint,
    cancel: CancelToken,
    /// Replay buffer: scoped progress lines, then `job_metrics` and the
    /// terminal line. Watchers follow this by cursor.
    lines: Vec<String>,
    export: Option<String>,
    units_total: usize,
}

#[derive(Default)]
struct State {
    jobs: BTreeMap<String, Job>,
    /// Submission order of `jobs` keys (BTreeMap orders lexically;
    /// status reports follow arrival).
    order: Vec<String>,
    fifo: VecDeque<String>,
    running: Option<String>,
    next_id: u64,
    shutdown: bool,
}

struct Inner {
    engine: CampaignEngine,
    queue_cap: usize,
    state: Mutex<State>,
    /// Wakes the runner (queue push, shutdown).
    work: Condvar,
    /// Wakes watchers and cancel waiters (any job update).
    update: Condvar,
}

impl Inner {
    fn set_depth_gauge(&self, st: &State) {
        rjam_obs::registry::gauge("daemon.queue_depth").set(st.fifo.len() as u64);
    }

    fn notify_update(&self) {
        self.update.notify_all();
    }
}

/// Routes the process progress sink into the running job's replay
/// buffer. Lines are already job-tagged by the stream scope.
struct Router {
    inner: Arc<Inner>,
    partial: Vec<u8>,
}

impl std::io::Write for Router {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.partial.extend_from_slice(buf);
        while let Some(nl) = self.partial.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.partial.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            let mut st = self.inner.state.lock().expect("daemon state lock");
            if let Some(id) = st.running.clone() {
                if let Some(job) = st.jobs.get_mut(&id) {
                    job.lines.push(line);
                }
            }
            drop(st);
            self.inner.notify_update();
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Handle to a running campaign service. Dropping it without
/// [`Daemon::shutdown`] detaches the runner thread.
pub struct Daemon {
    inner: Arc<Inner>,
    runner: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Starts a service over `engine` with a queue bound of `queue_cap`
    /// pending jobs. Installs the process progress sink (obs builds) so
    /// job progress is captured; a daemon owns its process's streams.
    pub fn start(engine: CampaignEngine, queue_cap: usize) -> Daemon {
        let inner = Arc::new(Inner {
            engine,
            queue_cap: queue_cap.max(1),
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            update: Condvar::new(),
        });
        if rjam_obs::enabled() {
            rjam_obs::stream::install(Box::new(Router {
                inner: Arc::clone(&inner),
                partial: Vec::new(),
            }));
        }
        let runner_inner = Arc::clone(&inner);
        let runner = std::thread::Builder::new()
            .name("rjamd-runner".into())
            .spawn(move || run_loop(&runner_inner))
            .expect("spawn daemon runner");
        Daemon {
            inner,
            runner: Some(runner),
        }
    }

    /// Validates and enqueues a campaign; returns the assigned job id and
    /// the queue depth after insertion (backpressure signal).
    pub fn submit(&self, spec: CampaignRequest) -> Result<(String, u64), JobError> {
        spec.validate()?;
        let mut st = self.inner.state.lock().expect("daemon state lock");
        if st.shutdown {
            return Err(JobError::new(
                JobErrorKind::Shutdown,
                "daemon is shutting down",
            ));
        }
        if st.fifo.len() >= self.inner.queue_cap {
            return Err(JobError::new(
                JobErrorKind::QueueFull,
                format!("queue holds {} jobs (capacity)", st.fifo.len()),
            ));
        }
        st.next_id += 1;
        let id = format!("job-{}", st.next_id);
        let units_total = spec.n_units();
        st.jobs.insert(
            id.clone(),
            Job {
                request: spec,
                state: JobState::Queued,
                ckpt: JobCheckpoint::new(),
                cancel: CancelToken::new(),
                lines: Vec::new(),
                export: None,
                units_total,
            },
        );
        st.order.push(id.clone());
        st.fifo.push_back(id.clone());
        let depth = st.fifo.len() as u64;
        self.inner.set_depth_gauge(&st);
        drop(st);
        self.inner.work.notify_one();
        self.inner.notify_update();
        Ok((id, depth))
    }

    /// Status rows, submission order — one job or all.
    pub fn status(&self, job: Option<&str>) -> Result<Vec<JobStatus>, JobError> {
        let st = self.inner.state.lock().expect("daemon state lock");
        let row = |id: &str, j: &Job| JobStatus {
            job: id.to_string(),
            kind: j.request.kind().to_string(),
            state: j.state,
            units_done: j.ckpt.units_done() as u64,
            units_total: j.units_total as u64,
        };
        match job {
            Some(id) => {
                let j = st.jobs.get(id).ok_or_else(|| unknown(id))?;
                Ok(vec![row(id, j)])
            }
            None => Ok(st
                .order
                .iter()
                .filter_map(|id| st.jobs.get(id).map(|j| row(id, j)))
                .collect()),
        }
    }

    /// Cancels a queued or running job and blocks until it has actually
    /// stopped (unit-granular, so the wait is one unit's latency at
    /// most). The job's checkpoint is retained; returns the units it
    /// holds.
    pub fn cancel(&self, id: &str) -> Result<u64, JobError> {
        let mut st = self.inner.state.lock().expect("daemon state lock");
        let job = st.jobs.get_mut(id).ok_or_else(|| unknown(id))?;
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                let done = job.ckpt.units_done() as u64;
                let line = JobResponse::Cancelled {
                    job: id.to_string(),
                    units_done: done,
                }
                .to_line();
                job.lines.push(line);
                st.fifo.retain(|q| q != id);
                self.inner.set_depth_gauge(&st);
                drop(st);
                self.inner.notify_update();
                Ok(done)
            }
            JobState::Running => {
                job.cancel.cancel();
                // Wait for the runner to park the job.
                loop {
                    let state = st.jobs.get(id).map(|j| j.state);
                    match state {
                        Some(JobState::Running) => {
                            st = self
                                .inner
                                .update
                                .wait_timeout(st, Duration::from_millis(50))
                                .expect("daemon state lock")
                                .0;
                        }
                        Some(_) => break,
                        None => return Err(unknown(id)),
                    }
                }
                Ok(st
                    .jobs
                    .get(id)
                    .map(|j| j.ckpt.units_done() as u64)
                    .unwrap_or(0))
            }
            JobState::Done | JobState::Cancelled => Err(JobError::new(
                JobErrorKind::BadState,
                format!("{id} is already {}", job.state.name()),
            )),
        }
    }

    /// Re-enqueues a cancelled job. It keeps its id and checkpoint; the
    /// engine runs only the missing units and the export is
    /// byte-identical to an uninterrupted run.
    pub fn resume(&self, id: &str) -> Result<(String, u64), JobError> {
        let mut st = self.inner.state.lock().expect("daemon state lock");
        if st.shutdown {
            return Err(JobError::new(
                JobErrorKind::Shutdown,
                "daemon is shutting down",
            ));
        }
        if st.fifo.len() >= self.inner.queue_cap {
            return Err(JobError::new(
                JobErrorKind::QueueFull,
                format!("queue holds {} jobs (capacity)", st.fifo.len()),
            ));
        }
        let job = st.jobs.get_mut(id).ok_or_else(|| unknown(id))?;
        if job.state != JobState::Cancelled {
            return Err(JobError::new(
                JobErrorKind::BadState,
                format!("{id} is {}, only cancelled jobs resume", job.state.name()),
            ));
        }
        job.state = JobState::Queued;
        job.cancel = CancelToken::new();
        // The cancelled attempt's replay buffer (including its
        // `job_cancelled` terminal line) is stale history: the resumed
        // run emits a fresh progress chain over the remaining units, and
        // a watcher attaching now must end on *this* attempt's terminal
        // line, not the old one.
        job.lines.clear();
        st.fifo.push_back(id.to_string());
        let depth = st.fifo.len() as u64;
        self.inner.set_depth_gauge(&st);
        drop(st);
        self.inner.work.notify_one();
        self.inner.notify_update();
        Ok((id.to_string(), depth))
    }

    /// Replays a job's buffered lines through `emit`, then follows live
    /// appends until the job is terminal and fully drained. `emit`
    /// returning `Err` detaches the watcher (client hung up).
    pub fn watch(
        &self,
        id: &str,
        emit: &mut dyn FnMut(&str) -> std::io::Result<()>,
    ) -> Result<(), JobError> {
        let mut cursor = 0usize;
        loop {
            let (batch, terminal) = {
                let mut st = self.inner.state.lock().expect("daemon state lock");
                loop {
                    let job = st.jobs.get(id).ok_or_else(|| unknown(id))?;
                    // A resume truncates the replay buffer; clamp rather
                    // than index past the end (the watcher rejoins the
                    // fresh attempt from its start).
                    cursor = cursor.min(job.lines.len());
                    if job.lines.len() > cursor || job.state.is_terminal() {
                        break (
                            job.lines[cursor..].to_vec(),
                            job.state.is_terminal() && job.lines.len() <= cursor,
                        );
                    }
                    st = self
                        .inner
                        .update
                        .wait_timeout(st, Duration::from_millis(100))
                        .expect("daemon state lock")
                        .0;
                }
            };
            cursor += batch.len();
            for line in &batch {
                if emit(line).is_err() {
                    return Ok(());
                }
            }
            if terminal {
                return Ok(());
            }
        }
    }

    /// Serves one non-watch request line, returning the response lines to
    /// write back. `watch` requests are returned as [`Serve::Watch`] so
    /// the connection handler can stream.
    pub fn serve_line(&self, line: &str) -> Serve {
        let req = match JobRequest::from_line(line) {
            Ok(req) => req,
            Err(e) => {
                return Serve::Lines(vec![JobResponse::Error(JobError::new(
                    JobErrorKind::BadRequest,
                    e.to_string(),
                ))
                .to_line()])
            }
        };
        match req {
            JobRequest::Submit { spec } => Serve::Lines(vec![match self.submit(spec) {
                Ok((job, queue_depth)) => JobResponse::Accepted { job, queue_depth },
                Err(e) => JobResponse::Error(e),
            }
            .to_line()]),
            JobRequest::Status { job } => Serve::Lines(vec![match self.status(job.as_deref()) {
                Ok(jobs) => JobResponse::Status { jobs },
                Err(e) => JobResponse::Error(e),
            }
            .to_line()]),
            JobRequest::Cancel { job } => Serve::Lines(vec![match self.cancel(&job) {
                Ok(units_done) => JobResponse::Cancelled { job, units_done },
                Err(e) => JobResponse::Error(e),
            }
            .to_line()]),
            JobRequest::Resume { job } => Serve::Lines(vec![match self.resume(&job) {
                Ok((job, queue_depth)) => JobResponse::Accepted { job, queue_depth },
                Err(e) => JobResponse::Error(e),
            }
            .to_line()]),
            JobRequest::Watch { job } => Serve::Watch(job),
        }
    }

    /// Stops accepting work, drains nothing (queued jobs stay queued),
    /// cancels the running job if any, and joins the runner.
    pub fn shutdown(mut self) {
        {
            let mut st = self.inner.state.lock().expect("daemon state lock");
            st.shutdown = true;
            if let Some(id) = st.running.clone() {
                if let Some(job) = st.jobs.get(&id) {
                    job.cancel.cancel();
                }
            }
        }
        self.inner.work.notify_all();
        if let Some(h) = self.runner.take() {
            h.join().expect("daemon runner panicked");
        }
        if rjam_obs::enabled() {
            rjam_obs::stream::uninstall();
        }
    }
}

/// What a request line asks the connection handler to do.
pub enum Serve {
    /// Write these lines and move on.
    Lines(Vec<String>),
    /// Stream this job via [`Daemon::watch`].
    Watch(String),
}

fn unknown(id: &str) -> JobError {
    JobError::new(JobErrorKind::UnknownJob, format!("no job '{id}'"))
}

fn run_loop(inner: &Inner) {
    loop {
        // Claim the next job (or exit on shutdown).
        let (id, request, mut ckpt, cancel) = {
            let mut st = inner.state.lock().expect("daemon state lock");
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(id) = st.fifo.pop_front() {
                    inner.set_depth_gauge(&st);
                    st.running = Some(id.clone());
                    // A job cancelled while queued was already retained
                    // out of the fifo; this pop only sees queued jobs.
                    let job = st.jobs.get_mut(&id).expect("queued job exists");
                    job.state = JobState::Running;
                    let claim = (
                        id,
                        job.request.clone(),
                        std::mem::take(&mut job.ckpt),
                        job.cancel.clone(),
                    );
                    break claim;
                }
                st = inner.work.wait(st).expect("daemon state lock");
            }
        };
        inner.notify_update();
        rjam_obs::stream::set_scope(Some(&id));
        let result = request.run_to_export(&inner.engine, &mut ckpt, Some(&cancel));
        rjam_obs::stream::set_scope(None);
        let mut st = inner.state.lock().expect("daemon state lock");
        st.running = None;
        if let Some(job) = st.jobs.get_mut(&id) {
            job.ckpt = ckpt;
            let terminal = match result {
                Some(export) => {
                    job.state = JobState::Done;
                    job.export = Some(export.clone());
                    JobResponse::Done {
                        job: id.clone(),
                        export,
                    }
                }
                None => {
                    job.state = JobState::Cancelled;
                    JobResponse::Cancelled {
                        job: id.clone(),
                        units_done: job.ckpt.units_done() as u64,
                    }
                }
            };
            if rjam_obs::enabled() {
                // Tag the job's final registry view onto its stream.
                let snap = rjam_obs::registry::snapshot().to_json();
                if let Ok(doc) = json::parse(&snap) {
                    job.lines.push(
                        JobResponse::Metrics {
                            job: id.clone(),
                            snapshot: doc,
                        }
                        .to_line(),
                    );
                }
            }
            job.lines.push(terminal.to_line());
        }
        drop(st);
        inner.notify_update();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjam_core::presets::DetectionPreset;
    use std::sync::{Mutex as StdMutex, OnceLock};

    /// The progress sink and scope are process-global; daemon tests
    /// serialize on this.
    fn test_lock() -> &'static StdMutex<()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
    }

    fn fa_spec(samples: usize, seed: u64) -> CampaignRequest {
        CampaignRequest::FalseAlarm {
            preset: DetectionPreset::WifiShortPreamble { threshold: 0.30 },
            samples,
            seed,
        }
    }

    fn wait_done(d: &Daemon, id: &str) -> JobStatus {
        for _ in 0..600 {
            let st = d.status(Some(id)).expect("status")[0].clone();
            if st.state.is_terminal() {
                return st;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("job {id} never finished");
    }

    #[test]
    fn jobs_run_fifo_and_export_matches_direct() {
        let _guard = test_lock().lock().unwrap();
        let d = Daemon::start(CampaignEngine::with_threads(2), 8);
        let specs = [
            fa_spec(1 << 18, 3),
            fa_spec(1 << 18, 4),
            fa_spec(1 << 17, 5),
        ];
        let ids: Vec<String> = specs
            .iter()
            .map(|s| d.submit(s.clone()).expect("accepted").0)
            .collect();
        for (id, spec) in ids.iter().zip(&specs) {
            let st = wait_done(&d, id);
            assert_eq!(st.state, JobState::Done, "{id}");
            let direct = spec
                .run_to_export(
                    &CampaignEngine::with_threads(2),
                    &mut JobCheckpoint::new(),
                    None,
                )
                .unwrap();
            let mut lines = Vec::new();
            d.watch(id, &mut |l: &str| {
                lines.push(l.to_string());
                Ok(())
            })
            .expect("watch");
            let last = JobResponse::from_line(lines.last().expect("terminal line")).unwrap();
            match last {
                JobResponse::Done { export, .. } => assert_eq!(export, direct, "{id}"),
                other => panic!("expected job_done, got {other:?}"),
            }
        }
        d.shutdown();
    }

    #[test]
    fn invalid_specs_are_rejected_before_enqueue() {
        let _guard = test_lock().lock().unwrap();
        let d = Daemon::start(CampaignEngine::with_threads(1), 2);
        let err = d.submit(fa_spec(0, 0)).expect_err("0 samples");
        assert_eq!(err.kind, JobErrorKind::BadSpec);
        assert!(d.status(None).unwrap().is_empty(), "nothing enqueued");
        let err = d.cancel("job-99").expect_err("unknown");
        assert_eq!(err.kind, JobErrorKind::UnknownJob);
        d.shutdown();
    }

    #[test]
    fn queue_bound_applies_backpressure() {
        let _guard = test_lock().lock().unwrap();
        // Capacity 2: big first job occupies the runner soon, leaving the
        // queue to fill behind it.
        let d = Daemon::start(CampaignEngine::with_threads(1), 2);
        let mut accepted = 0usize;
        let mut full = 0usize;
        for seed in 0..8u64 {
            match d.submit(fa_spec(1 << 18, seed)) {
                Ok(_) => accepted += 1,
                Err(e) => {
                    assert_eq!(e.kind, JobErrorKind::QueueFull);
                    full += 1;
                }
            }
        }
        assert!(full > 0, "queue never filled");
        assert!(accepted >= 2, "bound must admit up to capacity");
        d.shutdown();
    }

    #[test]
    fn cancel_then_resume_is_byte_identical() {
        let _guard = test_lock().lock().unwrap();
        let d = Daemon::start(CampaignEngine::with_threads(2), 8);
        // 8 units: enough to usually interrupt mid-run.
        let spec = fa_spec(8 << 18, 77);
        let direct = spec
            .run_to_export(
                &CampaignEngine::with_threads(7),
                &mut JobCheckpoint::new(),
                None,
            )
            .unwrap();
        let (id, _) = d.submit(spec).expect("accepted");
        let done = d.cancel(&id).expect("cancel");
        let st = d.status(Some(&id)).expect("status")[0].clone();
        assert_eq!(st.state, JobState::Cancelled);
        assert_eq!(st.units_done, done);
        // Cancel of a cancelled job is a typed error.
        assert_eq!(
            d.cancel(&id).expect_err("bad state").kind,
            JobErrorKind::BadState
        );
        d.resume(&id).expect("resume");
        let st = wait_done(&d, &id);
        assert_eq!(st.state, JobState::Done);
        let mut lines = Vec::new();
        d.watch(&id, &mut |l: &str| {
            lines.push(l.to_string());
            Ok(())
        })
        .expect("watch");
        // The resume truncated the cancelled attempt's replay buffer: the
        // stream a watcher sees holds the fresh attempt only, ending in
        // job_done — no stale job_cancelled terminal mid-stream.
        assert!(
            !lines
                .iter()
                .any(|l| matches!(JobResponse::from_line(l), Ok(JobResponse::Cancelled { .. }))),
            "resumed watch replayed the stale cancelled terminal"
        );
        match JobResponse::from_line(lines.last().expect("lines")).unwrap() {
            JobResponse::Done { export, .. } => assert_eq!(export, direct),
            other => panic!("expected job_done, got {other:?}"),
        }
        d.shutdown();
    }

    #[cfg(feature = "obs")]
    #[test]
    fn watch_streams_job_tagged_progress() {
        let _guard = test_lock().lock().unwrap();
        let d = Daemon::start(CampaignEngine::with_threads(2), 8);
        let (id, _) = d.submit(fa_spec(4 << 18, 9)).expect("accepted");
        wait_done(&d, &id);
        let mut lines = Vec::new();
        d.watch(&id, &mut |l: &str| {
            lines.push(l.to_string());
            Ok(())
        })
        .expect("watch");
        let tag = format!("\"job\":\"{id}\"");
        let progress: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("rjam-progress-v1"))
            .collect();
        assert!(!progress.is_empty(), "no progress lines captured");
        assert!(
            progress.iter().all(|l| l.contains(&tag)),
            "untagged progress line in {progress:?}"
        );
        // And the scoped lines still parse as progress events.
        for l in &progress {
            rjam_obs::stream::ProgressEvent::from_line(l).expect("scoped line parses");
        }
        d.shutdown();
    }
}
