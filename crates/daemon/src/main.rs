//! `rjamd` — the resident campaign service.
//!
//! ```text
//! rjamd --stdio                      # serve one client on stdin/stdout
//! rjamd --socket /run/rjamd.sock     # serve many clients on a Unix socket
//! ```
//!
//! Options: `--threads N` (engine workers), `--queue N` (pending-job
//! bound, default 16). Usage errors exit 2 with usage text; runtime
//! failures exit 1.

use rjam_daemon::{Daemon, Serve};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
Usage: rjamd (--stdio | --socket PATH) [--threads N] [--queue N]

The rjam campaign service: accepts rjam-job-v1 jobs (one JSON object per
line), runs them FIFO-fair on one shared campaign engine and streams
job-tagged progress. Use rjamctl submit/status/watch/cancel/resume to
talk to it.

  --stdio          serve a single client over stdin/stdout
  --socket PATH    listen on a Unix socket (one thread per connection)
  --threads N      campaign engine worker threads (default: all cores)
  --queue N        max queued jobs before submits see queue_full (default 16)
";

struct Opts {
    socket: Option<String>,
    stdio: bool,
    threads: Option<usize>,
    queue: usize,
}

fn parse_opts(argv: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        socket: None,
        stdio: false,
        threads: None,
        queue: rjam_daemon::DEFAULT_QUEUE_CAP,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stdio" => opts.stdio = true,
            "--socket" => {
                opts.socket = Some(
                    it.next()
                        .ok_or_else(|| "--socket needs a path".to_string())?
                        .clone(),
                )
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--threads needs a count".to_string())?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads: '{v}' is not a number"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                opts.threads = Some(n);
            }
            "--queue" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--queue needs a count".to_string())?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--queue: '{v}' is not a number"))?;
                if n == 0 {
                    return Err("--queue must be at least 1".into());
                }
                opts.queue = n;
            }
            "help" | "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if opts.stdio == opts.socket.is_some() {
        return Err("pick exactly one of --stdio or --socket PATH".into());
    }
    Ok(opts)
}

fn serve_connection(daemon: &Daemon, reader: impl BufRead, mut writer: impl Write) {
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        match daemon.serve_line(&line) {
            Serve::Lines(lines) => {
                for l in lines {
                    if writeln!(writer, "{l}")
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
            }
            Serve::Watch(job) => {
                let result = daemon.watch(&job, &mut |l| {
                    writeln!(writer, "{l}")?;
                    writer.flush()
                });
                if let Err(e) = result {
                    let line = rjam_daemon::JobResponse::Error(e).to_line();
                    if writeln!(writer, "{line}")
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
            }
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&argv) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(if msg.is_empty() { 0 } else { 2 });
        }
    };
    let engine = match opts.threads {
        Some(n) => rjam_core::CampaignEngine::with_threads(n),
        None => rjam_core::CampaignEngine::from_env(),
    };
    let daemon = Daemon::start(engine, opts.queue);

    if opts.stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        serve_connection(&daemon, stdin.lock(), stdout.lock());
        daemon.shutdown();
        return ExitCode::SUCCESS;
    }

    let path = opts.socket.expect("socket mode");
    // A stale socket file from a previous run refuses the bind.
    let _ = std::fs::remove_file(&path);
    let listener = match UnixListener::bind(&path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: --socket {path}: {e}");
            return ExitCode::from(1);
        }
    };
    eprintln!("rjamd: listening on {path}");
    let daemon = Arc::new(daemon);
    let mut handles = Vec::new();
    for conn in listener.incoming() {
        let stream: UnixStream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let daemon = Arc::clone(&daemon);
        handles.push(std::thread::spawn(move || {
            let reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            serve_connection(&daemon, reader, stream);
        }));
    }
    ExitCode::SUCCESS
}
