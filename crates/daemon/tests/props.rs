//! Property tests for the `rjam-job-v1` service, driven by
//! `rjam-testkit`: wire round-trips for generated job requests, FIFO
//! fairness of the daemon queue under interleaved submit/cancel, and the
//! resume contract — a cancelled-then-resumed job exports byte-identical
//! output to an uninterrupted run, at every worker-thread count.

use rjam_core::campaign::{ChannelModel, JammerUnderTest, WifiEmission};
use rjam_core::spec::JobCheckpoint;
use rjam_core::{CampaignEngine, CampaignRequest, CancelToken, DetectionPreset};
use rjam_daemon::{Daemon, JobError, JobErrorKind, JobRequest, JobResponse, JobState, JobStatus};
use rjam_testkit::{prop_assert, prop_assert_eq, props, TestRng};
use std::sync::Mutex;

/// The daemon installs a process-global progress sink; tests that start
/// one (or run campaigns whose telemetry a concurrently running daemon
/// would capture) serialize on this lock.
static DAEMON_LOCK: Mutex<()> = Mutex::new(());

// ---- generated, always-valid campaign requests ----

/// A fraction in the validator's (0, 1] threshold window.
fn frac(rng: &mut TestRng) -> f64 {
    (rng.below(99) + 1) as f64 / 100.0
}

/// An energy threshold in the validator's [3, 30] dB window.
fn db(rng: &mut TestRng) -> f64 {
    3.0 + rng.below(28) as f64
}

/// A small non-empty finite dB grid.
fn grid(rng: &mut TestRng) -> Vec<f64> {
    (0..rng.below(3) + 1)
        .map(|_| rng.below(41) as f64 - 10.0 + 0.25 * rng.below(4) as f64)
        .collect()
}

fn preset(rng: &mut TestRng) -> DetectionPreset {
    match rng.below(6) {
        0 => DetectionPreset::WifiShortPreamble {
            threshold: frac(rng),
        },
        1 => DetectionPreset::WifiLongPreamble {
            threshold: frac(rng),
        },
        2 => DetectionPreset::WimaxPreamble {
            id_cell: rng.below(32) as u8,
            segment: rng.below(3) as u8,
            threshold: frac(rng),
        },
        3 => DetectionPreset::EnergyRise {
            threshold_db: db(rng),
        },
        4 => DetectionPreset::EnergyFall {
            threshold_db: db(rng),
        },
        _ => DetectionPreset::WimaxFused {
            id_cell: rng.below(32) as u8,
            segment: rng.below(3) as u8,
            threshold: frac(rng),
            energy_db: db(rng),
        },
    }
}

fn request(rng: &mut TestRng) -> CampaignRequest {
    // JSON numbers are f64: the wire carries integers exactly only
    // through 2^53, so campaign seeds live in that domain.
    let seed = rng.below(1 << 53);
    match rng.below(4) {
        0 => CampaignRequest::WifiDetection {
            preset: preset(rng),
            emission: match rng.below(3) {
                0 => WifiEmission::FullFrames {
                    psdu_len: rng.below(4095) as usize + 1,
                },
                1 => WifiEmission::SingleShortPreamble,
                _ => WifiEmission::SingleLongPreamble,
            },
            channel: if rng.below(2) == 0 {
                ChannelModel::Awgn
            } else {
                ChannelModel::Rayleigh {
                    taps: rng.below(8) as usize + 1,
                    rms: rng.below(5) as f64 + 0.5,
                }
            },
            snrs_db: grid(rng),
            frames_per_point: rng.below(40) as usize + 1,
            seed,
        },
        1 => CampaignRequest::FalseAlarm {
            preset: preset(rng),
            samples: rng.below(1 << 20) as usize + 1,
            seed,
        },
        2 => CampaignRequest::Wimax {
            fused: rng.below(2) == 0,
            frames: rng.below(50) as usize + 1,
            snr_db: rng.below(30) as f64 - 6.0,
            threshold: frac(rng),
            seed,
        },
        _ => CampaignRequest::Jamming {
            jammer: match rng.below(4) {
                0 => JammerUnderTest::Off,
                1 => JammerUnderTest::Continuous,
                2 => JammerUnderTest::ReactiveLong,
                _ => JammerUnderTest::ReactiveShort,
            },
            sirs_db: grid(rng),
            duration_s: (rng.below(20) + 1) as f64 / 10.0,
            seed,
        },
    }
}

/// A tiny single-unit false-alarm job for queue tests.
fn fa_request(samples: usize, seed: u64) -> CampaignRequest {
    CampaignRequest::FalseAlarm {
        preset: DetectionPreset::WifiShortPreamble { threshold: 0.30 },
        samples,
        seed,
    }
}

/// Watch a job to its terminal line and return the `Done` export, if any.
fn watch_terminal(daemon: &Daemon, id: &str) -> Option<(JobState, Option<String>)> {
    let mut terminal = None;
    daemon
        .watch(id, &mut |line| {
            if let Ok(resp) = JobResponse::from_line(line) {
                match resp {
                    JobResponse::Done { export, .. } => {
                        terminal = Some((JobState::Done, Some(export)));
                    }
                    JobResponse::Cancelled { .. } => terminal = Some((JobState::Cancelled, None)),
                    _ => {}
                }
            }
            Ok(())
        })
        .expect("watch succeeds");
    terminal
}

props! {
    cases = 4;

    /// Every generated (valid) campaign request survives the
    /// submit-line round-trip bit-exactly, as do the other request verbs
    /// and every response shape — the wire adds nothing and loses
    /// nothing.
    fn job_lines_round_trip(seed in 0u64..1_000_000) cases = 64 {
        let mut rng = TestRng::seed_from(seed);
        let spec = request(&mut rng);
        prop_assert!(spec.validate().is_ok(), "generator must produce valid specs: {spec:?}");
        let id = format!("job-{}", rng.below(1000));

        let requests = [
            JobRequest::Submit { spec: spec.clone() },
            JobRequest::Status { job: None },
            JobRequest::Status { job: Some(id.clone()) },
            JobRequest::Watch { job: id.clone() },
            JobRequest::Cancel { job: id.clone() },
            JobRequest::Resume { job: id.clone() },
        ];
        for req in &requests {
            let line = req.to_line();
            let back = JobRequest::from_line(&line)
                .unwrap_or_else(|e| panic!("{line} must parse: {e}"));
            prop_assert_eq!(req, &back, "request line: {line}");
        }

        let responses = [
            JobResponse::Accepted { job: id.clone(), queue_depth: rng.below(64) },
            JobResponse::Error(JobError {
                kind: JobErrorKind::BadSpec,
                message: "invalid 'trials': 0 frames per point".into(),
            }),
            JobResponse::Status {
                jobs: vec![JobStatus {
                    job: id.clone(),
                    kind: spec.kind().into(),
                    state: JobState::Running,
                    units_done: rng.below(10),
                    units_total: spec.n_units() as u64,
                }],
            },
            JobResponse::Done { job: id.clone(), export: "snr_db,p_detect\n-3,0.5\n".into() },
            JobResponse::Cancelled { job: id.clone(), units_done: rng.below(10) },
        ];
        for resp in &responses {
            let line = resp.to_line();
            let back = JobResponse::from_line(&line)
                .unwrap_or_else(|e| panic!("{line} must parse: {e}"));
            prop_assert_eq!(resp, &back, "response line: {line}");
        }
    }

    /// FIFO fairness under interleaved submit/cancel: with a blocker
    /// running, queued jobs complete in submission order; a randomly
    /// chosen subset cancelled while queued never runs (zero units
    /// checkpointed) and the survivors' exports still match a direct
    /// single-process run.
    fn queue_is_fifo_under_interleaved_submit_and_cancel(seed in 0u64..1_000_000) cases = 3 {
        let _guard = DAEMON_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = TestRng::seed_from(seed ^ 0x51f0);
        let daemon = Daemon::start(CampaignEngine::with_threads(2), 16);

        // A blocker big enough to still be running while we queue and
        // cancel behind it.
        let blocker = fa_request((1 << 18) * 3, 1);
        let (blocker_id, _) = daemon.submit(blocker).expect("blocker accepted");

        let specs: Vec<CampaignRequest> = (0..4)
            .map(|i| fa_request(20_000 + 7 * i, 100 + i as u64))
            .collect();
        let mut ids: Vec<String> = Vec::new();
        let mut cancelled: Vec<String> = Vec::new();
        for spec in &specs {
            let (id, _) = daemon.submit(spec.clone()).expect("job accepted");
            // Interleave: maybe cancel an earlier still-queued job.
            if rng.below(2) == 0 {
                if let Some(victim) = ids.last().filter(|v| !cancelled.contains(*v)) {
                    let units = daemon.cancel(victim).expect("queued cancel succeeds");
                    prop_assert_eq!(units, 0, "a queued job has no checkpointed units");
                    cancelled.push(victim.clone());
                }
            }
            ids.push(id);
        }

        // Wait for the tail of the queue; FIFO means everything ahead of
        // it is then terminal too.
        let last_alive = ids
            .iter()
            .rev()
            .find(|id| !cancelled.contains(id))
            .cloned();
        if let Some(last) = &last_alive {
            let (state, _) = watch_terminal(&daemon, last).expect("terminal line");
            prop_assert_eq!(state, JobState::Done);
        }
        let _ = watch_terminal(&daemon, &blocker_id);

        let rows = daemon.status(None).expect("status");
        let engine = CampaignEngine::with_threads(2);
        for (id, spec) in ids.iter().zip(&specs) {
            let row = rows.iter().find(|r| &r.job == id).expect("status row");
            if cancelled.contains(id) {
                prop_assert_eq!(row.state, JobState::Cancelled, "{id}");
                prop_assert_eq!(row.units_done, 0, "cancelled while queued: {id}");
            } else {
                prop_assert_eq!(row.state, JobState::Done, "{id}");
                let (_, export) = watch_terminal(&daemon, id).expect("terminal line");
                let direct = spec
                    .run_to_export(&engine, &mut JobCheckpoint::new(), None)
                    .expect("direct run completes");
                prop_assert_eq!(export.as_deref(), Some(direct.as_str()), "{id}");
            }
        }
        daemon.shutdown();
    }

    /// Resume equals uninterrupted, at 1, 2 and 7 worker threads: cancel
    /// a checkpointable job at an arbitrary moment, resume from whatever
    /// the checkpoint captured, and the final export is byte-identical
    /// to a never-interrupted run.
    fn resume_equals_uninterrupted_at_1_2_7_threads(seed in 0u64..1_000_000) cases = 2 {
        let _guard = DAEMON_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = TestRng::seed_from(seed ^ 0xca7c);
        let spec = fa_request((1 << 18) * 3 + 54_321, seed);
        for threads in [1usize, 2, 7] {
            let engine = CampaignEngine::with_threads(threads);
            let direct = spec
                .run_to_export(&engine, &mut JobCheckpoint::new(), None)
                .expect("uninterrupted run completes");

            let token = CancelToken::new();
            let canceller = {
                let token = token.clone();
                let delay = rng.below(3_000);
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_micros(delay));
                    token.cancel();
                })
            };
            let mut ckpt = JobCheckpoint::new();
            let first = spec.run_to_export(&engine, &mut ckpt, Some(&token));
            canceller.join().expect("canceller joins");

            match first {
                // Finished before the cancel landed — must already match.
                Some(export) => prop_assert_eq!(
                    &export, &direct,
                    "uncancelled run diverged at {threads} threads"
                ),
                None => {
                    prop_assert!(
                        ckpt.units_done() < spec.n_units(),
                        "an interrupted run cannot have checkpointed every unit"
                    );
                    let resume = CancelToken::new();
                    let export = spec
                        .run_to_export(&engine, &mut ckpt, Some(&resume))
                        .expect("resume completes");
                    prop_assert_eq!(
                        &export, &direct,
                        "resume diverged at {threads} threads (seed {seed})"
                    );
                }
            }
        }
    }
}
