//! Multipath fading channels (toward the paper's over-the-air future work).
//!
//! The paper evaluates in a cabled network "to isolate environmental
//! effects"; taking the platform over the air adds frequency-selective
//! multipath. This module provides a tapped-delay-line model with Rayleigh
//! or Rician tap statistics (IEEE 802.11 TGn-style exponential power-delay
//! profiles), so detection and jamming campaigns can be re-run under
//! realistic indoor channels.

use rjam_sdr::complex::Cf64;
use rjam_sdr::rng::Rng;

/// A static (per-packet) tapped-delay-line channel realization.
///
/// ```
/// use rjam_channel::MultipathChannel;
/// use rjam_sdr::rng::Rng;
/// let mut rng = Rng::seed_from(7);
/// let ch = MultipathChannel::rayleigh(6, 1.5, &mut rng);
/// assert!((ch.energy() - 1.0).abs() < 1e-9); // normalized realization
/// let faded = ch.apply(&[rjam_sdr::complex::Cf64::ONE; 100]);
/// assert_eq!(faded.len(), 100 + ch.n_taps() - 1);
/// ```
#[derive(Clone, Debug)]
pub struct MultipathChannel {
    /// Complex tap gains; tap `k` applies at a delay of `k` samples.
    taps: Vec<Cf64>,
}

impl MultipathChannel {
    /// Builds a channel directly from tap gains.
    ///
    /// # Panics
    /// Panics on an empty tap vector.
    pub fn from_taps(taps: Vec<Cf64>) -> Self {
        assert!(!taps.is_empty(), "channel needs at least one tap");
        MultipathChannel { taps }
    }

    /// A flat (single-tap, unit-gain) channel.
    pub fn flat() -> Self {
        MultipathChannel {
            taps: vec![Cf64::ONE],
        }
    }

    /// Draws a Rayleigh-fading realization with an exponential power-delay
    /// profile: `n_taps` taps, RMS delay spread `rms_taps` (in samples),
    /// normalized to unit average energy.
    pub fn rayleigh(n_taps: usize, rms_taps: f64, rng: &mut Rng) -> Self {
        assert!(n_taps > 0 && rms_taps > 0.0);
        let mut taps = Vec::with_capacity(n_taps);
        let mut energy = 0.0;
        for k in 0..n_taps {
            let p = (-(k as f64) / rms_taps).exp();
            let sigma = (p / 2.0).sqrt();
            let tap = Cf64::new(rng.gaussian() * sigma, rng.gaussian() * sigma);
            energy += tap.norm_sq();
            taps.push(tap);
        }
        let k = 1.0 / energy.sqrt().max(1e-30);
        for t in taps.iter_mut() {
            *t = t.scale(k);
        }
        MultipathChannel { taps }
    }

    /// Draws a Rician realization: a deterministic line-of-sight component
    /// of power `k_factor/(k_factor+1)` on tap 0 plus Rayleigh scatter.
    pub fn rician(n_taps: usize, rms_taps: f64, k_factor: f64, rng: &mut Rng) -> Self {
        assert!(k_factor >= 0.0);
        let scatter = Self::rayleigh(n_taps, rms_taps, rng);
        let los_amp = (k_factor / (k_factor + 1.0)).sqrt();
        let scatter_amp = (1.0 / (k_factor + 1.0)).sqrt();
        let mut taps: Vec<Cf64> = scatter.taps.iter().map(|t| t.scale(scatter_amp)).collect();
        taps[0] += Cf64::from_angle(rng.uniform() * std::f64::consts::TAU).scale(los_amp);
        MultipathChannel { taps }
    }

    /// Number of taps (delay spread + 1 in samples).
    pub fn n_taps(&self) -> usize {
        self.taps.len()
    }

    /// Total channel energy (1.0 for normalized realizations).
    pub fn energy(&self) -> f64 {
        self.taps.iter().map(|t| t.norm_sq()).sum()
    }

    /// Applies the channel to a waveform (linear convolution, output length
    /// `input.len() + n_taps - 1`).
    pub fn apply(&self, input: &[Cf64]) -> Vec<Cf64> {
        let mut out = vec![Cf64::ZERO; input.len() + self.taps.len() - 1];
        for (i, &x) in input.iter().enumerate() {
            for (j, &h) in self.taps.iter().enumerate() {
                out[i + j] += x * h;
            }
        }
        out
    }

    /// Frequency response at normalized frequency `f` (cycles/sample).
    pub fn response(&self, f: f64) -> Cf64 {
        self.taps
            .iter()
            .enumerate()
            .map(|(k, &h)| h * Cf64::from_angle(-std::f64::consts::TAU * f * k as f64))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjam_sdr::power::mean_power;

    #[test]
    fn flat_channel_is_identity() {
        let ch = MultipathChannel::flat();
        let x = vec![Cf64::new(0.5, -0.25); 10];
        let y = ch.apply(&x);
        assert_eq!(y.len(), 10);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((*a - *b).abs() < 1e-15);
        }
    }

    #[test]
    fn rayleigh_normalized_energy() {
        let mut rng = Rng::seed_from(10);
        for _ in 0..20 {
            let ch = MultipathChannel::rayleigh(8, 2.0, &mut rng);
            assert!((ch.energy() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rician_k_factor_concentrates_tap0() {
        let mut rng = Rng::seed_from(11);
        let mut tap0_power = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let ch = MultipathChannel::rician(8, 2.0, 10.0, &mut rng);
            tap0_power += ch.taps[0].norm_sq() / ch.energy();
        }
        tap0_power /= trials as f64;
        assert!(tap0_power > 0.8, "K=10 LOS share {tap0_power}");
    }

    #[test]
    fn average_power_preserved_over_realizations() {
        let mut rng = Rng::seed_from(12);
        let x: Vec<Cf64> = (0..2000)
            .map(|t| Cf64::from_angle(0.1 * t as f64).scale(0.3))
            .collect();
        let p_in = mean_power(&x);
        let mut p_out = 0.0;
        let trials = 400;
        for _ in 0..trials {
            let ch = MultipathChannel::rayleigh(6, 1.5, &mut rng);
            p_out += mean_power(&ch.apply(&x)[..x.len()]);
        }
        p_out /= trials as f64;
        // A tone sees |H(f0)|^2, unit-mean but high-variance across
        // realizations; averaging over many draws recovers the mean.
        assert!((p_out / p_in - 1.0).abs() < 0.15, "ratio {}", p_out / p_in);
    }

    #[test]
    fn frequency_selectivity_appears_with_delay_spread() {
        let mut rng = Rng::seed_from(13);
        let ch = MultipathChannel::rayleigh(12, 3.0, &mut rng);
        // Response magnitude must vary across the band.
        let mags: Vec<f64> = (0..32)
            .map(|k| ch.response(k as f64 / 64.0 - 0.25).abs())
            .collect();
        let max = mags.iter().cloned().fold(0.0, f64::max);
        let min = mags.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min.max(1e-12) > 2.0, "selectivity {max}/{min}");
    }

    #[test]
    fn ofdm_survives_mild_multipath() {
        // Delay spread within the 16-sample cyclic prefix: the reference
        // receiver equalizes it and decodes.
        let mut rng = Rng::seed_from(14);
        let mut psdu = vec![0u8; 80];
        for (i, b) in psdu.iter_mut().enumerate() {
            *b = (i * 7) as u8;
        }
        let frame = rjam_phy80211::tx::Frame::new(rjam_phy80211::Rate::R12, psdu.clone());
        let wave = rjam_phy80211::tx::modulate_frame(&frame);
        for _ in 0..5 {
            let ch = MultipathChannel::rayleigh(6, 1.5, &mut rng);
            let faded = ch.apply(&wave);
            if let Ok(d) = rjam_phy80211::rx::decode_frame(&faded, 0) {
                if d.psdu == psdu {
                    return; // at least one realization decodes cleanly
                }
            }
        }
        panic!("no realization decoded; equalizer or channel model broken");
    }
}
