//! # rjam-channel — the wired RF plant of the evaluation testbed
//!
//! The paper evaluates its jammer in a *conducted* (cabled) environment: a
//! 5-port power-splitter interconnect with 20 dB pads on the AP and client
//! ports, a variable attenuator on the jammer transmit port, and an
//! oscilloscope on a monitor port (paper Fig. 9 and Table 1). Because the
//! plant is entirely linear and characterized by an insertion-loss matrix,
//! it can be modeled exactly:
//!
//! * [`noise`] — complex AWGN sources and noise-floor bookkeeping;
//! * [`atten`] — fixed and variable attenuators;
//! * [`fiveport`] — the 5-port network with the paper's Table 1 S-matrix and
//!   a VNA-style characterization routine that re-measures it;
//! * [`combine`] — time-aligned multi-emitter combining at a receive port,
//!   with SNR/SIR accounting;
//! * [`monitor`] — a scope-like tap that records waveforms and event markers
//!   and renders ASCII envelope traces (the software stand-in for the
//!   paper's Fig. 12 oscilloscope capture).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atten;
pub mod combine;
pub mod fading;
pub mod fiveport;
pub mod monitor;
pub mod noise;
pub mod trace;

pub use atten::{Attenuator, VariableAttenuator};
pub use combine::{Emission, PortReceiver};
pub use fading::MultipathChannel;
pub use fiveport::{FivePortNetwork, Port};
pub use monitor::ScopeTrace;
pub use noise::NoiseSource;
