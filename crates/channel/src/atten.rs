//! Fixed and variable attenuators.
//!
//! The testbed (paper Fig. 9) places 20 dB pads on the AP and client ports to
//! emulate over-the-air path loss and prevent receiver saturation, and a
//! variable attenuator on the jammer TX port to sweep SIR. Attenuation acts
//! on amplitude: a loss of `L` dB scales the waveform by `10^(-L/20)`.

use rjam_sdr::complex::Cf64;
use rjam_sdr::power::db_to_amplitude;

/// A fixed attenuator of `loss_db` decibels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Attenuator {
    loss_db: f64,
}

impl Attenuator {
    /// Creates an attenuator; `loss_db` must be non-negative (a pad cannot
    /// amplify).
    ///
    /// # Panics
    /// Panics on a negative loss.
    pub fn new(loss_db: f64) -> Self {
        assert!(
            loss_db >= 0.0,
            "attenuation must be non-negative, got {loss_db}"
        );
        Attenuator { loss_db }
    }

    /// Configured loss in dB.
    pub fn loss_db(&self) -> f64 {
        self.loss_db
    }

    /// Amplitude gain factor (< 1) applied to the waveform.
    pub fn gain(&self) -> f64 {
        db_to_amplitude(-self.loss_db)
    }

    /// Applies the attenuation to one sample.
    #[inline]
    pub fn apply_sample(&self, s: Cf64) -> Cf64 {
        s.scale(self.gain())
    }

    /// Applies the attenuation to a waveform in place.
    pub fn apply(&self, buf: &mut [Cf64]) {
        let g = self.gain();
        for s in buf.iter_mut() {
            *s = s.scale(g);
        }
    }
}

/// A step-settable variable attenuator (the SIR sweep control of Figs 10-11).
#[derive(Clone, Debug)]
pub struct VariableAttenuator {
    loss_db: f64,
    min_db: f64,
    max_db: f64,
    step_db: f64,
}

impl VariableAttenuator {
    /// Creates a variable attenuator covering `[min_db, max_db]` in steps of
    /// `step_db`, initially set to `min_db`.
    ///
    /// # Panics
    /// Panics if the range is inverted or the step is non-positive.
    pub fn new(min_db: f64, max_db: f64, step_db: f64) -> Self {
        assert!(
            min_db >= 0.0 && max_db >= min_db,
            "invalid attenuation range"
        );
        assert!(step_db > 0.0, "step must be positive");
        VariableAttenuator {
            loss_db: min_db,
            min_db,
            max_db,
            step_db,
        }
    }

    /// Current setting in dB.
    pub fn loss_db(&self) -> f64 {
        self.loss_db
    }

    /// Sets the attenuation, snapping to the step grid and clamping to range.
    pub fn set(&mut self, loss_db: f64) -> f64 {
        let snapped = ((loss_db - self.min_db) / self.step_db).round() * self.step_db + self.min_db;
        self.loss_db = snapped.clamp(self.min_db, self.max_db);
        self.loss_db
    }

    /// Current amplitude gain factor.
    pub fn gain(&self) -> f64 {
        db_to_amplitude(-self.loss_db)
    }

    /// Applies the current setting to a waveform in place.
    pub fn apply(&self, buf: &mut [Cf64]) {
        let g = self.gain();
        for s in buf.iter_mut() {
            *s = s.scale(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjam_sdr::power::mean_power;

    #[test]
    fn twenty_db_pad_drops_power_100x() {
        let pad = Attenuator::new(20.0);
        let mut buf = vec![Cf64::new(1.0, 0.0); 100];
        pad.apply(&mut buf);
        assert!((mean_power(&buf) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn zero_db_is_identity() {
        let pad = Attenuator::new(0.0);
        let s = Cf64::new(0.3, -0.4);
        assert_eq!(pad.apply_sample(s), s);
    }

    #[test]
    fn attenuators_compose() {
        let a = Attenuator::new(10.0);
        let b = Attenuator::new(10.0);
        let c = Attenuator::new(20.0);
        let s = Cf64::new(1.0, 0.0);
        let two_step = b.apply_sample(a.apply_sample(s));
        let one_step = c.apply_sample(s);
        assert!((two_step - one_step).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_gain() {
        let _ = Attenuator::new(-3.0);
    }

    #[test]
    fn variable_snaps_and_clamps() {
        let mut v = VariableAttenuator::new(0.0, 60.0, 1.0);
        assert_eq!(v.set(10.4), 10.0);
        assert_eq!(v.set(10.6), 11.0);
        assert_eq!(v.set(99.0), 60.0);
        assert_eq!(v.set(-5.0), 0.0);
    }

    #[test]
    fn variable_gain_tracks_setting() {
        let mut v = VariableAttenuator::new(0.0, 40.0, 0.5);
        v.set(6.0);
        let mut buf = vec![Cf64::new(1.0, 0.0); 10];
        v.apply(&mut buf);
        let p = mean_power(&buf);
        assert!((p - rjam_sdr::power::db_to_lin(-6.0)).abs() < 1e-12);
    }
}
