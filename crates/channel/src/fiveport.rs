//! The 5-port splitter interconnect network (paper Fig. 9 / Table 1).
//!
//! Port assignments in the paper's experiments:
//!
//! | Port | Connected device |
//! |------|------------------|
//! | 1    | Linksys WRT54GL access point (behind a 20 dB pad) |
//! | 2    | wireless client (behind a 20 dB pad) |
//! | 3    | oscilloscope monitor |
//! | 4    | jammer transmitter (behind a variable attenuator) |
//! | 5    | jammer receiver |
//!
//! The network is linear and memoryless at baseband: propagating a waveform
//! from port `a` to port `b` scales its amplitude by the measured insertion
//! loss `S(a,b)`. Ports 4 and 5 are mutually isolated in the measurement
//! (the paper's table leaves those entries blank), which we model as an
//! effectively infinite loss.

use rjam_sdr::complex::Cf64;
use rjam_sdr::power::db_to_amplitude;

/// One of the five physical ports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Port {
    /// Access point port (1).
    Ap,
    /// Wireless client port (2).
    Client,
    /// Oscilloscope/monitor port (3).
    Monitor,
    /// Jammer transmit port (4).
    JammerTx,
    /// Jammer receive port (5).
    JammerRx,
}

impl Port {
    /// All ports in numeric order.
    pub const ALL: [Port; 5] = [
        Port::Ap,
        Port::Client,
        Port::Monitor,
        Port::JammerTx,
        Port::JammerRx,
    ];

    /// Paper port number (1-5).
    pub fn number(self) -> usize {
        self.index() + 1
    }

    fn index(self) -> usize {
        match self {
            Port::Ap => 0,
            Port::Client => 1,
            Port::Monitor => 2,
            Port::JammerTx => 3,
            Port::JammerRx => 4,
        }
    }
}

/// Insertion loss used for isolated port pairs (Table 1's "-").
pub const ISOLATION_DB: f64 = 120.0;

/// The 5-port interconnect with its insertion-loss matrix.
#[derive(Clone, Debug)]
pub struct FivePortNetwork {
    /// `loss[a][b]` = insertion loss in dB from port a to port b; `None` on
    /// the diagonal and for isolated pairs.
    loss: [[Option<f64>; 5]; 5],
}

impl FivePortNetwork {
    /// The network as characterized by the paper's vector network analyzer
    /// (Table 1, values in dB; sign stored positive as a loss).
    pub fn paper_table1() -> Self {
        let x = None;
        #[rustfmt::skip]
        let loss = [
            // to:   1(Ap)       2(Client)   3(Monitor)  4(JamTx)    5(JamRx)
            /*1*/ [x,           Some(51.0), Some(25.2), Some(38.4), Some(39.3)],
            /*2*/ [Some(51.0),  x,          Some(31.7), Some(32.0), Some(32.8)],
            /*3*/ [Some(25.2),  Some(31.7), x,          Some(19.1), Some(19.9)],
            /*4*/ [Some(38.4),  Some(32.0), Some(19.1), x,          x         ],
            /*5*/ [Some(39.2),  Some(32.8), Some(19.8), x,          x         ],
        ];
        FivePortNetwork { loss }
    }

    /// Builds a network from a custom loss matrix (dB, `None` = isolated).
    pub fn from_matrix(loss: [[Option<f64>; 5]; 5]) -> Self {
        FivePortNetwork { loss }
    }

    /// Insertion loss from `from` to `to` in dB. Isolated or reflexive paths
    /// report [`ISOLATION_DB`].
    pub fn insertion_loss_db(&self, from: Port, to: Port) -> f64 {
        self.loss[from.index()][to.index()].unwrap_or(ISOLATION_DB)
    }

    /// True when Table 1 has no measurable path between the ports.
    pub fn is_isolated(&self, from: Port, to: Port) -> bool {
        self.loss[from.index()][to.index()].is_none()
    }

    /// Amplitude gain from `from` to `to` (`10^(-loss/20)`).
    pub fn path_gain(&self, from: Port, to: Port) -> f64 {
        db_to_amplitude(-self.insertion_loss_db(from, to))
    }

    /// Propagates a waveform from one port to another (new buffer).
    pub fn propagate(&self, from: Port, to: Port, waveform: &[Cf64]) -> Vec<Cf64> {
        let g = self.path_gain(from, to);
        waveform.iter().map(|s| s.scale(g)).collect()
    }

    /// VNA-style characterization: injects a unit tone at every port and
    /// measures the power arriving at every other port, returning the matrix
    /// in dB. This is what `table1_insertion_loss` prints and what the tests
    /// compare against the stored matrix.
    pub fn characterize(&self) -> [[Option<f64>; 5]; 5] {
        let tone: Vec<Cf64> = (0..256).map(|t| Cf64::from_angle(0.1 * t as f64)).collect();
        let tone_p = rjam_sdr::power::mean_power(&tone);
        let mut out = [[None; 5]; 5];
        for &a in &Port::ALL {
            for &b in &Port::ALL {
                if a == b {
                    continue;
                }
                let rx = self.propagate(a, b, &tone);
                let p = rjam_sdr::power::mean_power(&rx);
                let loss = -rjam_sdr::power::lin_to_db(p / tone_p);
                if loss < ISOLATION_DB - 1.0 {
                    out[a.index()][b.index()] = Some(loss);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let net = FivePortNetwork::paper_table1();
        assert_eq!(net.insertion_loss_db(Port::Ap, Port::Client), 51.0);
        assert_eq!(net.insertion_loss_db(Port::Ap, Port::Monitor), 25.2);
        assert_eq!(net.insertion_loss_db(Port::JammerTx, Port::Ap), 38.4);
        assert_eq!(net.insertion_loss_db(Port::JammerRx, Port::Ap), 39.2);
        // Slight VNA asymmetry preserved from the paper.
        assert_eq!(net.insertion_loss_db(Port::Ap, Port::JammerRx), 39.3);
        assert_eq!(net.insertion_loss_db(Port::Monitor, Port::JammerRx), 19.9);
        assert_eq!(net.insertion_loss_db(Port::JammerRx, Port::Monitor), 19.8);
    }

    #[test]
    fn jammer_tx_rx_isolated() {
        let net = FivePortNetwork::paper_table1();
        assert!(net.is_isolated(Port::JammerTx, Port::JammerRx));
        assert!(net.is_isolated(Port::JammerRx, Port::JammerTx));
        assert_eq!(
            net.insertion_loss_db(Port::JammerTx, Port::JammerRx),
            ISOLATION_DB
        );
        assert!(net.path_gain(Port::JammerTx, Port::JammerRx) < 1e-5);
    }

    #[test]
    fn propagate_scales_power_by_loss() {
        let net = FivePortNetwork::paper_table1();
        let tone = vec![Cf64::new(1.0, 0.0); 1000];
        let rx = net.propagate(Port::Client, Port::Ap, &tone);
        let p = rjam_sdr::power::mean_power(&rx);
        let expect = rjam_sdr::power::db_to_lin(-51.0);
        assert!((p / expect - 1.0).abs() < 1e-9);
    }

    #[test]
    fn characterization_recovers_matrix() {
        let net = FivePortNetwork::paper_table1();
        let meas = net.characterize();
        for &a in &Port::ALL {
            for &b in &Port::ALL {
                if a == b {
                    continue;
                }
                let stored = if net.is_isolated(a, b) {
                    None
                } else {
                    Some(net.insertion_loss_db(a, b))
                };
                match (stored, meas[a.number() - 1][b.number() - 1]) {
                    (None, None) => {}
                    (Some(s), Some(m)) => {
                        assert!((s - m).abs() < 0.01, "{a:?}->{b:?}: {s} vs {m}")
                    }
                    other => panic!("{a:?}->{b:?}: mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn port_numbering() {
        assert_eq!(Port::Ap.number(), 1);
        assert_eq!(Port::JammerRx.number(), 5);
        assert_eq!(Port::ALL.len(), 5);
    }
}
