//! Channel-stage trace attribution: one `channel.propagate` span per
//! frame traversal of the five-port network.
//!
//! The paper's testbed is a cabled RF network whose Table 1 insertion
//! losses decide who hears whom; for a causal timeline the interesting
//! facts are *when* a frame's waveform occupied a path and *how much* of
//! it survived. The span's operands carry both: `a` is the path insertion
//! loss in milli-dB, `b` encodes the port pair as `from·10 + to` (paper
//! port numbers), so a trace viewer can label the traversal without any
//! side table.

use crate::fiveport::{FivePortNetwork, Port};
use rjam_obs::trace::{stage, FrameId, TraceSink};

impl Port {
    /// Stable lower-case label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            Port::Ap => "ap",
            Port::Client => "client",
            Port::Monitor => "monitor",
            Port::JammerTx => "jammer_tx",
            Port::JammerRx => "jammer_rx",
        }
    }
}

/// Encodes a port pair into the span's `b` operand (`from·10 + to`,
/// paper port numbers 1-5).
pub fn path_code(from: Port, to: Port) -> i64 {
    (from.number() * 10 + to.number()) as i64
}

/// Decodes a [`path_code`] back into the port pair, if valid.
pub fn decode_path(code: i64) -> Option<(Port, Port)> {
    let of = |n: i64| Port::ALL.iter().copied().find(|p| p.number() as i64 == n);
    Some((of(code / 10)?, of(code % 10)?))
}

/// Records the propagation of `frame`'s waveform across `from → to` as a
/// closed `channel.propagate` span covering `[t0_ns, t0_ns + dur_ns)`.
///
/// `a` = insertion loss in milli-dB (isolated pairs report
/// [`crate::fiveport::ISOLATION_DB`]), `b` = [`path_code`].
pub fn trace_propagation(
    sink: &mut TraceSink,
    frame: FrameId,
    t0_ns: u64,
    dur_ns: u64,
    net: &FivePortNetwork,
    from: Port,
    to: Port,
) {
    let loss_mdb = (net.insertion_loss_db(from, to) * 1000.0).round() as i64;
    sink.span_begin(frame, t0_ns, stage::CHANNEL, "propagate");
    sink.instant(
        frame,
        t0_ns,
        stage::CHANNEL,
        "path",
        loss_mdb,
        path_code(from, to),
    );
    sink.span_end(frame, t0_ns + dur_ns, stage::CHANNEL, "propagate");
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    #[test]
    fn path_codes_round_trip() {
        for &from in &Port::ALL {
            for &to in &Port::ALL {
                let code = path_code(from, to);
                assert_eq!(decode_path(code), Some((from, to)), "{from:?}->{to:?}");
            }
        }
        assert_eq!(decode_path(99), None);
        assert_eq!(decode_path(0), None);
    }

    #[test]
    fn propagation_span_carries_loss_and_path() {
        let net = FivePortNetwork::paper_table1();
        let mut sink = TraceSink::with_capacity(16);
        let f = FrameId(2);
        trace_propagation(
            &mut sink,
            f,
            1_000,
            152_000,
            &net,
            Port::Client,
            Port::JammerRx,
        );
        let doc = sink.to_doc();
        doc.validate().unwrap();
        let frames = doc.frames();
        let ft = &frames[0];
        let (t0, t1) = ft.span(stage::CHANNEL, "propagate").unwrap();
        assert_eq!((t0, t1), (1_000, 153_000));
        let loss_mdb = ft.instant_a(stage::CHANNEL, "path").unwrap();
        let expect = (net.insertion_loss_db(Port::Client, Port::JammerRx) * 1000.0).round() as i64;
        assert_eq!(loss_mdb, expect);
        assert!(loss_mdb > 0, "a real path attenuates");
    }

    #[test]
    fn port_labels_are_stable() {
        let labels: Vec<&str> = Port::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            vec!["ap", "client", "monitor", "jammer_tx", "jammer_rx"]
        );
    }
}
