//! Time-aligned combining of multiple emitters at a receive port.
//!
//! During a jamming experiment three devices may drive the network at once
//! (AP, client, jammer). A [`PortReceiver`] gathers each [`Emission`]
//! (who transmitted what, starting when, through which extra attenuation),
//! then renders the superposition seen at any port, plus the noise floor.
//! It also reports per-emitter received power so experiments can quote SNR
//! and SIR exactly as the paper does ("measured received SIR at access
//! point").

use crate::fiveport::{FivePortNetwork, Port};
use crate::noise::NoiseSource;
use rjam_sdr::complex::Cf64;
use rjam_sdr::power::{lin_to_db, mean_power};

/// One transmission injected into the network.
#[derive(Clone, Debug)]
pub struct Emission {
    /// Port driving the network.
    pub from: Port,
    /// Start time in samples (at the common rendering rate).
    pub start: usize,
    /// Baseband waveform at the transmit connector.
    pub waveform: Vec<Cf64>,
    /// Extra attenuation in dB between the device and its port (pads /
    /// variable attenuator), applied on top of the network's insertion loss.
    pub extra_loss_db: f64,
}

impl Emission {
    /// Creates an emission with no extra attenuation.
    pub fn new(from: Port, start: usize, waveform: Vec<Cf64>) -> Self {
        Emission {
            from,
            start,
            waveform,
            extra_loss_db: 0.0,
        }
    }

    /// Adds device-side attenuation in dB.
    pub fn with_loss(mut self, db: f64) -> Self {
        self.extra_loss_db = db;
        self
    }

    /// End time in samples (exclusive).
    pub fn end(&self) -> usize {
        self.start + self.waveform.len()
    }
}

/// Renders the superposition of emissions at a port.
#[derive(Debug)]
pub struct PortReceiver<'a> {
    net: &'a FivePortNetwork,
    emissions: Vec<Emission>,
}

impl<'a> PortReceiver<'a> {
    /// Creates a receiver over the given network.
    pub fn new(net: &'a FivePortNetwork) -> Self {
        PortReceiver {
            net,
            emissions: Vec::new(),
        }
    }

    /// Adds an emission to the scene.
    pub fn add(&mut self, e: Emission) -> &mut Self {
        self.emissions.push(e);
        self
    }

    /// Number of sample periods covered by the scene (max emission end).
    pub fn duration(&self) -> usize {
        self.emissions.iter().map(Emission::end).max().unwrap_or(0)
    }

    /// Amplitude gain for an emission arriving at `at` (network + extra pad).
    fn arrival_gain(&self, e: &Emission, at: Port) -> f64 {
        self.net.path_gain(e.from, at) * rjam_sdr::power::db_to_amplitude(-e.extra_loss_db)
    }

    /// Renders the noiseless superposition at a port over `[0, duration)`.
    pub fn render_clean(&self, at: Port) -> Vec<Cf64> {
        let mut out = vec![Cf64::ZERO; self.duration()];
        for e in &self.emissions {
            if e.from == at {
                continue; // a port does not hear itself through the splitter
            }
            let g = self.arrival_gain(e, at);
            for (k, &s) in e.waveform.iter().enumerate() {
                out[e.start + k] += s.scale(g);
            }
        }
        out
    }

    /// Renders the superposition plus AWGN from `noise`.
    pub fn render(&self, at: Port, noise: &mut NoiseSource) -> Vec<Cf64> {
        let mut out = self.render_clean(at);
        noise.corrupt(&mut out);
        out
    }

    /// Mean received power at `at` contributed by emission `idx` alone,
    /// averaged over that emission's own active interval.
    pub fn received_power(&self, at: Port, idx: usize) -> f64 {
        let e = &self.emissions[idx];
        let g = self.arrival_gain(e, at);
        mean_power(&e.waveform) * g * g
    }

    /// Signal-to-interference ratio in dB at `at` between two emissions
    /// (signal `sig_idx` vs interferer `int_idx`), using each emission's
    /// active-interval mean power — the paper's "SIR during those brief
    /// moments when the jammer was actively transmitting".
    pub fn sir_db(&self, at: Port, sig_idx: usize, int_idx: usize) -> f64 {
        lin_to_db(self.received_power(at, sig_idx) / self.received_power(at, int_idx))
    }

    /// Signal-to-noise ratio in dB at `at` for one emission given a noise
    /// power.
    pub fn snr_db(&self, at: Port, idx: usize, noise_power: f64) -> f64 {
        lin_to_db(self.received_power(at, idx) / noise_power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjam_sdr::rng::Rng;

    fn unit_tone(n: usize) -> Vec<Cf64> {
        (0..n).map(|t| Cf64::from_angle(0.05 * t as f64)).collect()
    }

    #[test]
    fn single_emission_power_matches_loss() {
        let net = FivePortNetwork::paper_table1();
        let mut rx = PortReceiver::new(&net);
        rx.add(Emission::new(Port::Client, 0, unit_tone(1000)));
        let at_ap = rx.render_clean(Port::Ap);
        let p = mean_power(&at_ap);
        let expect = rjam_sdr::power::db_to_lin(-51.0);
        assert!((p / expect - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extra_loss_stacks_with_network() {
        let net = FivePortNetwork::paper_table1();
        let mut rx = PortReceiver::new(&net);
        rx.add(Emission::new(Port::JammerTx, 0, unit_tone(500)).with_loss(20.0));
        let p = mean_power(&rx.render_clean(Port::Ap));
        let expect = rjam_sdr::power::db_to_lin(-(38.4 + 20.0));
        assert!((p / expect - 1.0).abs() < 1e-9);
    }

    #[test]
    fn emissions_superpose_at_offsets() {
        let net = FivePortNetwork::paper_table1();
        let mut rx = PortReceiver::new(&net);
        rx.add(Emission::new(Port::Client, 0, vec![Cf64::ONE; 10]));
        rx.add(Emission::new(Port::JammerTx, 5, vec![Cf64::ONE; 10]));
        let out = rx.render_clean(Port::Ap);
        assert_eq!(out.len(), 15);
        let g1 = net.path_gain(Port::Client, Port::Ap);
        let g2 = net.path_gain(Port::JammerTx, Port::Ap);
        assert!((out[0].re - g1).abs() < 1e-12);
        assert!((out[7].re - (g1 + g2)).abs() < 1e-12);
        assert!((out[12].re - g2).abs() < 1e-12);
    }

    #[test]
    fn port_does_not_hear_itself() {
        let net = FivePortNetwork::paper_table1();
        let mut rx = PortReceiver::new(&net);
        rx.add(Emission::new(Port::Ap, 0, unit_tone(100)));
        let out = rx.render_clean(Port::Ap);
        assert!(out.iter().all(|s| *s == Cf64::ZERO));
    }

    #[test]
    fn sir_between_client_and_jammer_at_ap() {
        let net = FivePortNetwork::paper_table1();
        let mut rx = PortReceiver::new(&net);
        rx.add(Emission::new(Port::Client, 0, unit_tone(100)).with_loss(20.0)); // signal
        rx.add(Emission::new(Port::JammerTx, 0, unit_tone(100)).with_loss(10.0)); // interferer
                                                                                  // Signal path: 51 + 20 = 71 dB; jammer: 38.4 + 10 = 48.4 dB.
        let sir = rx.sir_db(Port::Ap, 0, 1);
        assert!((sir - (48.4 - 71.0)).abs() < 1e-9, "sir={sir}");
    }

    #[test]
    fn snr_accounting() {
        let net = FivePortNetwork::paper_table1();
        let mut rx = PortReceiver::new(&net);
        rx.add(Emission::new(Port::Client, 0, unit_tone(100)));
        let noise_p = rjam_sdr::power::db_to_lin(-90.0);
        let snr = rx.snr_db(Port::Ap, 0, noise_p);
        assert!((snr - (90.0 - 51.0)).abs() < 1e-9);
    }

    #[test]
    fn render_with_noise_changes_waveform() {
        let net = FivePortNetwork::paper_table1();
        let mut rx = PortReceiver::new(&net);
        rx.add(Emission::new(Port::Client, 0, unit_tone(256)));
        let clean = rx.render_clean(Port::Ap);
        let mut noise = NoiseSource::new(1e-6, Rng::seed_from(8));
        let noisy = rx.render(Port::Ap, &mut noise);
        assert_eq!(clean.len(), noisy.len());
        assert!(clean.iter().zip(&noisy).any(|(a, b)| *a != *b));
    }

    #[test]
    fn empty_scene_is_silent() {
        let net = FivePortNetwork::paper_table1();
        let rx = PortReceiver::new(&net);
        assert_eq!(rx.duration(), 0);
        assert!(rx.render_clean(Port::Ap).is_empty());
    }
}
