//! Oscilloscope-style monitor tap.
//!
//! Port 3 of the paper's network feeds an oscilloscope used for the WiMAX
//! validation (Fig. 12): the authors show the downlink frames and the jammer
//! bursts in one-to-one correspondence in the time domain. [`ScopeTrace`]
//! plays the same role in software — it records an envelope, accepts event
//! markers (packet starts, trigger instants, jam bursts), can assert on
//! their correspondence and renders an ASCII trace for examples and docs.

use rjam_sdr::complex::Cf64;

/// A named event marker on the trace timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Marker {
    /// Sample index the event occurred at.
    pub at: usize,
    /// Event label, e.g. `"frame"`, `"trigger"`, `"jam"`.
    pub label: String,
}

/// A recorded time-domain trace with event markers.
#[derive(Clone, Debug, Default)]
pub struct ScopeTrace {
    envelope: Vec<f64>,
    markers: Vec<Marker>,
    sample_rate: f64,
}

impl ScopeTrace {
    /// Creates an empty trace at the given sample rate (Hz).
    pub fn new(sample_rate: f64) -> Self {
        ScopeTrace {
            envelope: Vec::new(),
            markers: Vec::new(),
            sample_rate,
        }
    }

    /// Records a waveform's magnitude envelope.
    pub fn capture(&mut self, waveform: &[Cf64]) {
        self.envelope.extend(waveform.iter().map(|s| s.abs()));
    }

    /// Appends a marker at an absolute sample index.
    pub fn mark(&mut self, at: usize, label: &str) {
        self.markers.push(Marker {
            at,
            label: label.to_string(),
        });
    }

    /// Recorded length in samples.
    pub fn len(&self) -> usize {
        self.envelope.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.envelope.is_empty()
    }

    /// Sample rate of the capture.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// All markers with a given label, in time order.
    pub fn markers_labeled(&self, label: &str) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .markers
            .iter()
            .filter(|m| m.label == label)
            .map(|m| m.at)
            .collect();
        v.sort_unstable();
        v
    }

    /// Checks one-to-one correspondence between two marker families: every
    /// `a` marker must be followed by exactly one `b` marker within
    /// `window` samples, and no `b` marker may be unmatched. Returns the
    /// matched pairs or a description of the first violation.
    ///
    /// This is the software form of the paper's Fig. 12 claim: "our jamming
    /// signal in real time with a one-to-one correspondence to the WiMAX
    /// downlink frames".
    pub fn correspondence(
        &self,
        a_label: &str,
        b_label: &str,
        window: usize,
    ) -> Result<Vec<(usize, usize)>, String> {
        let a = self.markers_labeled(a_label);
        let b = self.markers_labeled(b_label);
        let mut pairs = Vec::new();
        let mut bi = 0usize;
        for &ai in &a {
            // One-to-one correspondence (paper Fig. 12) tolerates no
            // spurious bursts: a `b` marker that precedes the next `a` has
            // no frame to answer, so it is a violation, not something to
            // skip past.
            if bi < b.len() && b[bi] < ai {
                return Err(format!(
                    "unmatched '{b_label}' at sample {} before '{a_label}' at {}",
                    b[bi], ai
                ));
            }
            if bi >= b.len() || b[bi] > ai + window {
                return Err(format!(
                    "'{a_label}' at sample {ai} has no '{b_label}' within {window} samples"
                ));
            }
            pairs.push((ai, b[bi]));
            bi += 1;
        }
        if bi != b.len() {
            return Err(format!(
                "{} extra '{b_label}' markers after the last '{a_label}'",
                b.len() - bi
            ));
        }
        Ok(pairs)
    }

    /// Renders an ASCII scope view: `width` columns, each showing the peak
    /// envelope of its time bucket on a `height`-row vertical scale, with
    /// marker lanes underneath.
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        if self.envelope.is_empty() || width == 0 || height == 0 {
            return String::from("(empty trace)\n");
        }
        let bucket = self.envelope.len().div_ceil(width);
        let cols: Vec<f64> = (0..width)
            .map(|c| {
                let lo = c * bucket;
                let hi = ((c + 1) * bucket).min(self.envelope.len());
                if lo >= hi {
                    0.0
                } else {
                    self.envelope[lo..hi].iter().cloned().fold(0.0, f64::max)
                }
            })
            .collect();
        let peak = cols.iter().cloned().fold(0.0, f64::max).max(1e-30);
        let mut out = String::new();
        for row in (1..=height).rev() {
            let thresh = row as f64 / height as f64;
            for &c in &cols {
                out.push(if c / peak >= thresh { '#' } else { ' ' });
            }
            out.push('\n');
        }
        // Marker lanes: one row per distinct label.
        let mut labels: Vec<String> = self.markers.iter().map(|m| m.label.clone()).collect();
        labels.sort();
        labels.dedup();
        for label in labels {
            let mut lane = vec![' '; width];
            for &at in &self.markers_labeled(&label) {
                let col = (at / bucket).min(width - 1);
                lane[col] = '^';
            }
            out.extend(lane);
            out.push(' ');
            out.push_str(&label);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst(len: usize, amp: f64) -> Vec<Cf64> {
        vec![Cf64::new(amp, 0.0); len]
    }

    #[test]
    fn capture_accumulates() {
        let mut t = ScopeTrace::new(25e6);
        t.capture(&burst(10, 0.5));
        t.capture(&burst(5, 1.0));
        assert_eq!(t.len(), 15);
    }

    #[test]
    fn markers_sorted_and_filtered() {
        let mut t = ScopeTrace::new(25e6);
        t.mark(50, "jam");
        t.mark(10, "frame");
        t.mark(20, "jam");
        assert_eq!(t.markers_labeled("jam"), vec![20, 50]);
        assert_eq!(t.markers_labeled("frame"), vec![10]);
        assert!(t.markers_labeled("nothing").is_empty());
    }

    #[test]
    fn correspondence_one_to_one_ok() {
        let mut t = ScopeTrace::new(25e6);
        for k in 0..5 {
            t.mark(k * 1000, "frame");
            t.mark(k * 1000 + 70, "jam");
        }
        let pairs = t.correspondence("frame", "jam", 100).unwrap();
        assert_eq!(pairs.len(), 5);
        assert!(pairs.iter().all(|(f, j)| j - f == 70));
    }

    #[test]
    fn correspondence_detects_missing_jam() {
        let mut t = ScopeTrace::new(25e6);
        t.mark(0, "frame");
        t.mark(70, "jam");
        t.mark(1000, "frame"); // no jam follows
        let err = t.correspondence("frame", "jam", 100).unwrap_err();
        assert!(err.contains("no 'jam'"), "{err}");
    }

    #[test]
    fn correspondence_detects_spurious_early_jam() {
        // Regression: a jam burst arriving *before* the frame it would
        // answer must be reported as unmatched — the old `while` form
        // returned on its first iteration and could never "skip" anything,
        // so this path is pinned down explicitly.
        let mut t = ScopeTrace::new(25e6);
        t.mark(40, "jam"); // spurious: precedes every frame
        t.mark(100, "frame");
        t.mark(170, "jam");
        let err = t.correspondence("frame", "jam", 100).unwrap_err();
        assert!(
            err.contains("unmatched 'jam' at sample 40 before 'frame' at 100"),
            "{err}"
        );
    }

    #[test]
    fn correspondence_detects_spurious_mid_stream_jam() {
        // Same violation in the middle of an otherwise-healthy run.
        let mut t = ScopeTrace::new(25e6);
        t.mark(0, "frame");
        t.mark(70, "jam");
        t.mark(500, "jam"); // no frame in front of it
        t.mark(1000, "frame");
        t.mark(1070, "jam");
        let err = t.correspondence("frame", "jam", 100).unwrap_err();
        assert!(err.contains("unmatched 'jam' at sample 500"), "{err}");
    }

    #[test]
    fn correspondence_detects_spurious_jam() {
        let mut t = ScopeTrace::new(25e6);
        t.mark(0, "frame");
        t.mark(70, "jam");
        t.mark(500, "jam"); // extra burst, no frame
        let err = t.correspondence("frame", "jam", 100).unwrap_err();
        assert!(err.contains("extra"), "{err}");
    }

    #[test]
    fn ascii_render_shape() {
        let mut t = ScopeTrace::new(25e6);
        t.capture(&burst(50, 0.1));
        t.capture(&burst(50, 1.0));
        t.mark(75, "jam");
        let art = t.render_ascii(20, 4);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5); // 4 signal rows + 1 marker lane
                                    // The second half of the top row should contain '#', the first not.
        let top = lines[0];
        assert!(!top[..10].contains('#'));
        assert!(top[10..].contains('#'));
        assert!(lines[4].contains('^'));
        assert!(lines[4].ends_with("jam"));
    }

    #[test]
    fn empty_render() {
        let t = ScopeTrace::new(25e6);
        assert_eq!(t.render_ascii(10, 3), "(empty trace)\n");
    }
}
