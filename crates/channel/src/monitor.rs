//! Oscilloscope-style monitor tap.
//!
//! Port 3 of the paper's network feeds an oscilloscope used for the WiMAX
//! validation (Fig. 12): the authors show the downlink frames and the jammer
//! bursts in one-to-one correspondence in the time domain. [`ScopeTrace`]
//! plays the same role in software — it records an envelope, accepts event
//! markers (packet starts, trigger instants, jam bursts), can assert on
//! their correspondence and renders an ASCII trace for examples and docs.

use rjam_sdr::complex::Cf64;

/// A named event marker on the trace timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Marker {
    /// Sample index the event occurred at.
    pub at: usize,
    /// Event label, e.g. `"frame"`, `"trigger"`, `"jam"`.
    pub label: String,
}

/// A recorded time-domain trace with event markers.
#[derive(Clone, Debug, Default)]
pub struct ScopeTrace {
    envelope: Vec<f64>,
    markers: Vec<Marker>,
    sample_rate: f64,
}

impl ScopeTrace {
    /// Creates an empty trace at the given sample rate (Hz).
    pub fn new(sample_rate: f64) -> Self {
        ScopeTrace {
            envelope: Vec::new(),
            markers: Vec::new(),
            sample_rate,
        }
    }

    /// Records a waveform's magnitude envelope.
    pub fn capture(&mut self, waveform: &[Cf64]) {
        self.envelope.extend(waveform.iter().map(|s| s.abs()));
        if rjam_obs::enabled() {
            rjam_obs::registry::counter("channel.scope_captured_samples")
                .add(waveform.len() as u64);
        }
    }

    /// Appends a marker at an absolute sample index.
    pub fn mark(&mut self, at: usize, label: &str) {
        self.markers.push(Marker {
            at,
            label: label.to_string(),
        });
        if rjam_obs::enabled() {
            rjam_obs::registry::counter("channel.scope_markers").inc();
        }
    }

    /// Appends another trace at an absolute sample offset: `other`'s
    /// envelope lands at `self.envelope[offset..]` (zero-padding any gap)
    /// and every marker is shifted by `offset`. This is how the sharded
    /// campaign engine merges per-shard scope captures back into one global
    /// timeline — concatenating shard `k` at the cumulative length of
    /// shards `0..k` reproduces the serial capture exactly.
    pub fn append_shifted(&mut self, other: &ScopeTrace, offset: usize) {
        debug_assert!(
            offset >= self.envelope.len(),
            "append_shifted must not overwrite captured samples \
             (offset {} < len {})",
            offset,
            self.envelope.len()
        );
        if self.envelope.len() < offset {
            self.envelope.resize(offset, 0.0);
        }
        self.envelope.extend_from_slice(&other.envelope);
        for m in &other.markers {
            self.markers.push(Marker {
                at: m.at + offset,
                label: m.label.clone(),
            });
        }
        if rjam_obs::enabled() {
            rjam_obs::registry::counter("channel.scope_captured_samples")
                .add(other.envelope.len() as u64);
            rjam_obs::registry::counter("channel.scope_markers").add(other.markers.len() as u64);
        }
    }

    /// The captured magnitude envelope, one value per sample.
    pub fn envelope(&self) -> &[f64] {
        &self.envelope
    }

    /// Recorded length in samples.
    pub fn len(&self) -> usize {
        self.envelope.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.envelope.is_empty()
    }

    /// Sample rate of the capture.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// All markers with a given label, in time order.
    pub fn markers_labeled(&self, label: &str) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .markers
            .iter()
            .filter(|m| m.label == label)
            .map(|m| m.at)
            .collect();
        v.sort_unstable();
        v
    }

    /// Checks one-to-one correspondence between two marker families: every
    /// `a` marker must be followed by exactly one `b` marker within
    /// `window` samples, and no `b` marker may be unmatched. Returns the
    /// matched pairs or a description of the first violation.
    ///
    /// This is the software form of the paper's Fig. 12 claim: "our jamming
    /// signal in real time with a one-to-one correspondence to the WiMAX
    /// downlink frames".
    pub fn correspondence(
        &self,
        a_label: &str,
        b_label: &str,
        window: usize,
    ) -> Result<Vec<(usize, usize)>, String> {
        let a = self.markers_labeled(a_label);
        let b = self.markers_labeled(b_label);
        let mut pairs = Vec::new();
        let mut bi = 0usize;
        for &ai in &a {
            // One-to-one correspondence (paper Fig. 12) tolerates no
            // spurious bursts: a `b` marker that precedes the next `a` has
            // no frame to answer, so it is a violation, not something to
            // skip past.
            if bi < b.len() && b[bi] < ai {
                return Err(format!(
                    "unmatched '{b_label}' at sample {} before '{a_label}' at {}",
                    b[bi], ai
                ));
            }
            if bi >= b.len() || b[bi] > ai + window {
                return Err(format!(
                    "'{a_label}' at sample {ai} has no '{b_label}' within {window} samples"
                ));
            }
            pairs.push((ai, b[bi]));
            bi += 1;
        }
        if bi != b.len() {
            return Err(format!(
                "{} extra '{b_label}' markers after the last '{a_label}'",
                b.len() - bi
            ));
        }
        Ok(pairs)
    }

    /// Serialises the marker timeline as JSON (the `rjam-obs` dialect):
    /// `{"schema":"rjam-scope-markers-v1","sample_rate":…,"len":…,
    /// "markers":[{"at":…,"label":…},…]}`. Markers are emitted in time
    /// order (ties broken by label) so the output is deterministic
    /// regardless of insertion order.
    pub fn to_markers_json(&self) -> String {
        use rjam_obs::json::{write_number, write_string};
        let mut sorted: Vec<&Marker> = self.markers.iter().collect();
        sorted.sort_by(|a, b| a.at.cmp(&b.at).then_with(|| a.label.cmp(&b.label)));
        let mut out = String::from("{\"schema\":\"rjam-scope-markers-v1\"");
        out.push_str(",\"sample_rate\":");
        out.push_str(&write_number(self.sample_rate));
        out.push_str(",\"len\":");
        out.push_str(&write_number(self.envelope.len() as f64));
        out.push_str(",\"markers\":[");
        for (k, m) in sorted.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str("{\"at\":");
            out.push_str(&write_number(m.at as f64));
            out.push_str(",\"label\":");
            out.push_str(&write_string(&m.label));
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders an ASCII scope view: `width` columns, each showing the peak
    /// envelope of its time bucket on a `height`-row vertical scale, with
    /// marker lanes underneath.
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        if self.envelope.is_empty() || width == 0 || height == 0 {
            return String::from("(empty trace)\n");
        }
        let bucket = self.envelope.len().div_ceil(width);
        let cols: Vec<f64> = (0..width)
            .map(|c| {
                let lo = c * bucket;
                let hi = ((c + 1) * bucket).min(self.envelope.len());
                if lo >= hi {
                    0.0
                } else {
                    self.envelope[lo..hi].iter().cloned().fold(0.0, f64::max)
                }
            })
            .collect();
        let peak = cols.iter().cloned().fold(0.0, f64::max).max(1e-30);
        let mut out = String::new();
        for row in (1..=height).rev() {
            let thresh = row as f64 / height as f64;
            for &c in &cols {
                out.push(if c / peak >= thresh { '#' } else { ' ' });
            }
            out.push('\n');
        }
        // Marker lanes: one row per distinct label.
        let mut labels: Vec<String> = self.markers.iter().map(|m| m.label.clone()).collect();
        labels.sort();
        labels.dedup();
        for label in labels {
            let mut lane = vec![' '; width];
            for &at in &self.markers_labeled(&label) {
                let col = (at / bucket).min(width - 1);
                lane[col] = '^';
            }
            out.extend(lane);
            out.push(' ');
            out.push_str(&label);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst(len: usize, amp: f64) -> Vec<Cf64> {
        vec![Cf64::new(amp, 0.0); len]
    }

    #[test]
    fn capture_accumulates() {
        let mut t = ScopeTrace::new(25e6);
        t.capture(&burst(10, 0.5));
        t.capture(&burst(5, 1.0));
        assert_eq!(t.len(), 15);
    }

    #[test]
    fn markers_sorted_and_filtered() {
        let mut t = ScopeTrace::new(25e6);
        t.mark(50, "jam");
        t.mark(10, "frame");
        t.mark(20, "jam");
        assert_eq!(t.markers_labeled("jam"), vec![20, 50]);
        assert_eq!(t.markers_labeled("frame"), vec![10]);
        assert!(t.markers_labeled("nothing").is_empty());
    }

    #[test]
    fn append_shifted_reproduces_serial_capture() {
        // A serial capture of two bursts …
        let mut serial = ScopeTrace::new(25e6);
        serial.capture(&burst(10, 0.5));
        serial.mark(3, "frame");
        serial.capture(&burst(5, 1.0));
        serial.mark(12, "jam");
        // … equals two shard-local traces merged at cumulative offsets.
        let mut shard0 = ScopeTrace::new(25e6);
        shard0.capture(&burst(10, 0.5));
        shard0.mark(3, "frame");
        let mut shard1 = ScopeTrace::new(25e6);
        shard1.capture(&burst(5, 1.0));
        shard1.mark(2, "jam");
        let mut merged = ScopeTrace::new(25e6);
        merged.append_shifted(&shard0, 0);
        merged.append_shifted(&shard1, shard0.len());
        assert_eq!(merged.len(), serial.len());
        assert_eq!(merged.to_markers_json(), serial.to_markers_json());
        assert_eq!(merged.markers_labeled("jam"), vec![12]);
    }

    #[test]
    fn append_shifted_zero_pads_gaps() {
        let mut t = ScopeTrace::new(25e6);
        let mut shard = ScopeTrace::new(25e6);
        shard.capture(&burst(4, 1.0));
        shard.mark(1, "jam");
        t.append_shifted(&shard, 6);
        assert_eq!(t.len(), 10);
        assert_eq!(t.markers_labeled("jam"), vec![7]);
        // The gap rendered as silence, the burst as signal.
        let art = t.render_ascii(10, 1);
        assert!(art.starts_with("      ####"), "{art}");
    }

    #[test]
    fn correspondence_one_to_one_ok() {
        let mut t = ScopeTrace::new(25e6);
        for k in 0..5 {
            t.mark(k * 1000, "frame");
            t.mark(k * 1000 + 70, "jam");
        }
        let pairs = t.correspondence("frame", "jam", 100).unwrap();
        assert_eq!(pairs.len(), 5);
        assert!(pairs.iter().all(|(f, j)| j - f == 70));
    }

    #[test]
    fn correspondence_detects_missing_jam() {
        let mut t = ScopeTrace::new(25e6);
        t.mark(0, "frame");
        t.mark(70, "jam");
        t.mark(1000, "frame"); // no jam follows
        let err = t.correspondence("frame", "jam", 100).unwrap_err();
        assert!(err.contains("no 'jam'"), "{err}");
    }

    #[test]
    fn correspondence_detects_spurious_early_jam() {
        // Regression: a jam burst arriving *before* the frame it would
        // answer must be reported as unmatched — the old `while` form
        // returned on its first iteration and could never "skip" anything,
        // so this path is pinned down explicitly.
        let mut t = ScopeTrace::new(25e6);
        t.mark(40, "jam"); // spurious: precedes every frame
        t.mark(100, "frame");
        t.mark(170, "jam");
        let err = t.correspondence("frame", "jam", 100).unwrap_err();
        assert!(
            err.contains("unmatched 'jam' at sample 40 before 'frame' at 100"),
            "{err}"
        );
    }

    #[test]
    fn correspondence_detects_spurious_mid_stream_jam() {
        // Same violation in the middle of an otherwise-healthy run.
        let mut t = ScopeTrace::new(25e6);
        t.mark(0, "frame");
        t.mark(70, "jam");
        t.mark(500, "jam"); // no frame in front of it
        t.mark(1000, "frame");
        t.mark(1070, "jam");
        let err = t.correspondence("frame", "jam", 100).unwrap_err();
        assert!(err.contains("unmatched 'jam' at sample 500"), "{err}");
    }

    #[test]
    fn correspondence_detects_spurious_jam() {
        let mut t = ScopeTrace::new(25e6);
        t.mark(0, "frame");
        t.mark(70, "jam");
        t.mark(500, "jam"); // extra burst, no frame
        let err = t.correspondence("frame", "jam", 100).unwrap_err();
        assert!(err.contains("extra"), "{err}");
    }

    #[test]
    fn ascii_render_shape() {
        let mut t = ScopeTrace::new(25e6);
        t.capture(&burst(50, 0.1));
        t.capture(&burst(50, 1.0));
        t.mark(75, "jam");
        let art = t.render_ascii(20, 4);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5); // 4 signal rows + 1 marker lane
                                    // The second half of the top row should contain '#', the first not.
        let top = lines[0];
        assert!(!top[..10].contains('#'));
        assert!(top[10..].contains('#'));
        assert!(lines[4].contains('^'));
        assert!(lines[4].ends_with("jam"));
    }

    #[test]
    fn empty_render() {
        let t = ScopeTrace::new(25e6);
        assert_eq!(t.render_ascii(10, 3), "(empty trace)\n");
    }

    #[test]
    fn render_markers_colliding_at_same_sample() {
        // Regression: two markers with *different* labels at the same
        // sample index must each keep their own lane — neither may clobber
        // the other — and duplicate markers on one label must collapse to a
        // single '^' in that label's lane, not corrupt the layout.
        let mut t = ScopeTrace::new(25e6);
        t.capture(&burst(100, 1.0));
        t.mark(50, "frame");
        t.mark(50, "jam"); // same index, different label
        t.mark(50, "jam"); // exact duplicate
        let art = t.render_ascii(20, 2);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4, "2 signal rows + 2 marker lanes:\n{art}");
        // Lanes are alphabetical: "frame" then "jam".
        assert!(lines[2].ends_with("frame"), "{art}");
        assert!(lines[3].ends_with("jam"), "{art}");
        // Both lanes carry a caret in the SAME column (sample 50, bucket 10).
        let frame_col = lines[2].find('^').expect("frame lane has a caret");
        let jam_col = lines[3].find('^').expect("jam lane has a caret");
        assert_eq!(frame_col, jam_col, "colliding markers share a column");
        assert_eq!(frame_col, 10);
        // The duplicate jam marker collapses: exactly one caret in the lane.
        assert_eq!(lines[3].matches('^').count(), 1, "{art}");
    }

    #[test]
    fn render_marker_beyond_envelope_clamps_to_last_column() {
        // Regression: a marker past the end of the capture (e.g. a jam
        // burst scheduled after the scope stopped) must clamp to the final
        // column instead of indexing out of bounds.
        let mut t = ScopeTrace::new(25e6);
        t.capture(&burst(100, 1.0));
        t.mark(10_000, "late");
        let art = t.render_ascii(10, 2);
        let lane = art.lines().nth(2).unwrap();
        assert_eq!(lane.find('^'), Some(9), "{art}");
    }

    #[test]
    fn markers_json_is_sorted_and_escaped() {
        let mut t = ScopeTrace::new(25e6);
        t.capture(&burst(4, 1.0));
        t.mark(70, "jam");
        t.mark(0, "frame \"A\"");
        let json = t.to_markers_json();
        let v = rjam_obs::json::parse(&json).expect("scope markers JSON parses");
        let obj = v.as_object().unwrap();
        assert_eq!(
            obj["schema"].as_str(),
            Some("rjam-scope-markers-v1"),
            "{json}"
        );
        assert_eq!(obj["sample_rate"].as_f64(), Some(25e6));
        assert_eq!(obj["len"].as_u64(), Some(4));
        let markers = obj["markers"].as_array().unwrap();
        assert_eq!(markers.len(), 2);
        // Time order, not insertion order.
        let first = markers[0].as_object().unwrap();
        assert_eq!(first["at"].as_u64(), Some(0));
        assert_eq!(first["label"].as_str(), Some("frame \"A\""));
        let second = markers[1].as_object().unwrap();
        assert_eq!(second["at"].as_u64(), Some(70));
        assert_eq!(second["label"].as_str(), Some("jam"));
    }

    #[test]
    fn markers_json_empty_trace() {
        let t = ScopeTrace::new(25e6);
        let v = rjam_obs::json::parse(&t.to_markers_json()).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj["len"].as_u64(), Some(0));
        assert!(obj["markers"].as_array().unwrap().is_empty());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn scope_activity_feeds_registry() {
        use rjam_obs::registry::counter_value;
        let s0 = counter_value("channel.scope_captured_samples");
        let m0 = counter_value("channel.scope_markers");
        let mut t = ScopeTrace::new(25e6);
        t.capture(&burst(128, 0.7));
        t.mark(64, "jam");
        assert!(counter_value("channel.scope_captured_samples") >= s0 + 128);
        assert!(counter_value("channel.scope_markers") > m0);
    }
}
