//! Additive white Gaussian noise sources.
//!
//! The conducted testbed's only stochastic impairment is thermal noise at
//! each receiver. Noise power is expressed relative to digital full scale
//! (dBFS), matching how the paper reports SNR "at RX" after the fixed-gain
//! front end.

use rjam_sdr::complex::Cf64;
use rjam_sdr::power::db_to_lin;
use rjam_sdr::rng::Rng;

/// A complex AWGN generator with configurable mean power.
#[derive(Clone, Debug)]
pub struct NoiseSource {
    rng: Rng,
    /// Per-component standard deviation such that E[|n|^2] = power.
    sigma: f64,
    power: f64,
}

impl NoiseSource {
    /// Creates a source with the given total complex noise power (linear,
    /// relative to full scale 1.0).
    ///
    /// # Panics
    /// Panics if `power` is negative.
    pub fn new(power: f64, rng: Rng) -> Self {
        assert!(power >= 0.0, "noise power cannot be negative");
        NoiseSource {
            rng,
            sigma: (power / 2.0).sqrt(),
            power,
        }
    }

    /// Creates a source from a noise floor in dBFS.
    pub fn from_dbfs(dbfs: f64, rng: Rng) -> Self {
        NoiseSource::new(db_to_lin(dbfs), rng)
    }

    /// Configured mean noise power.
    pub fn power(&self) -> f64 {
        self.power
    }

    /// Draws one noise sample.
    ///
    /// Named `next_sample` (not `next`) deliberately: `NoiseSource` is an
    /// infinite generator, so an `Iterator::next` returning `Option` would
    /// never be `None` and the inherent-method name would shadow the trait
    /// (`clippy::should_implement_trait`).
    #[inline]
    pub fn next_sample(&mut self) -> Cf64 {
        Cf64::new(
            self.rng.gaussian() * self.sigma,
            self.rng.gaussian() * self.sigma,
        )
    }

    /// Generates a block of noise.
    pub fn block(&mut self, n: usize) -> Vec<Cf64> {
        (0..n).map(|_| self.next_sample()).collect()
    }

    /// Adds noise to a waveform in place.
    pub fn corrupt(&mut self, buf: &mut [Cf64]) {
        for s in buf.iter_mut() {
            *s += self.next_sample();
        }
    }
}

/// Returns a copy of `signal` with AWGN at the SNR (dB) implied by the
/// signal's own mean power. Convenience for detector characterization runs.
pub fn add_awgn_at_snr(signal: &[Cf64], snr_db: f64, rng: Rng) -> Vec<Cf64> {
    let sig_p = rjam_sdr::power::mean_power(signal);
    let noise_p = sig_p / db_to_lin(snr_db);
    let mut src = NoiseSource::new(noise_p, rng);
    signal.iter().map(|&s| s + src.next_sample()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjam_sdr::power::{lin_to_db, mean_power};

    #[test]
    fn noise_power_matches_request() {
        let mut src = NoiseSource::new(0.01, Rng::seed_from(1));
        let blk = src.block(200_000);
        let p = mean_power(&blk);
        assert!((p / 0.01 - 1.0).abs() < 0.02, "p={p}");
    }

    #[test]
    fn from_dbfs() {
        let src = NoiseSource::from_dbfs(-40.0, Rng::seed_from(2));
        assert!((lin_to_db(src.power()) + 40.0).abs() < 1e-9);
    }

    #[test]
    fn zero_power_source_is_silent() {
        let mut src = NoiseSource::new(0.0, Rng::seed_from(3));
        for _ in 0..100 {
            assert_eq!(src.next_sample(), Cf64::ZERO);
        }
    }

    #[test]
    fn components_are_uncorrelated_and_zero_mean() {
        let mut src = NoiseSource::new(1.0, Rng::seed_from(4));
        let blk = src.block(100_000);
        let n = blk.len() as f64;
        let mean_re: f64 = blk.iter().map(|s| s.re).sum::<f64>() / n;
        let mean_im: f64 = blk.iter().map(|s| s.im).sum::<f64>() / n;
        let cross: f64 = blk.iter().map(|s| s.re * s.im).sum::<f64>() / n;
        assert!(mean_re.abs() < 0.01);
        assert!(mean_im.abs() < 0.01);
        assert!(cross.abs() < 0.01);
    }

    #[test]
    fn corrupt_adds_expected_power() {
        let sig = vec![Cf64::new(0.1, 0.0); 100_000];
        let mut noisy = sig.clone();
        NoiseSource::new(0.04, Rng::seed_from(5)).corrupt(&mut noisy);
        let p = mean_power(&noisy);
        // Signal power 0.01 + noise 0.04.
        assert!((p - 0.05).abs() < 0.002, "p={p}");
    }

    #[test]
    fn awgn_at_snr_yields_requested_snr() {
        let sig: Vec<Cf64> = (0..100_000)
            .map(|t| Cf64::from_angle(0.01 * t as f64).scale(0.2))
            .collect();
        let noisy = add_awgn_at_snr(&sig, 10.0, Rng::seed_from(6));
        let sig_p = mean_power(&sig);
        let tot_p = mean_power(&noisy);
        let noise_p = tot_p - sig_p;
        let snr = lin_to_db(sig_p / noise_p);
        assert!((snr - 10.0).abs() < 0.3, "snr={snr}");
    }
}
