//! Integration across the RF plant: the 5-port network feeding fading,
//! monitoring and SIR bookkeeping in one scene.

use rjam_channel::{
    Emission, FivePortNetwork, MultipathChannel, NoiseSource, Port, PortReceiver, ScopeTrace,
};
use rjam_sdr::complex::Cf64;
use rjam_sdr::power::{db_to_lin, lin_to_db, mean_power};
use rjam_sdr::rng::Rng;

fn burst(amp: f64, len: usize) -> Vec<Cf64> {
    (0..len)
        .map(|t| Cf64::from_angle(0.21 * t as f64).scale(amp))
        .collect()
}

/// A full conducted scene: client bursts, jammer bursts, monitor sees both,
/// the AP's SIR matches the closed-form network arithmetic.
#[test]
fn full_scene_at_every_port() {
    let net = FivePortNetwork::paper_table1();
    let mut scene = PortReceiver::new(&net);
    scene.add(Emission::new(Port::Client, 0, burst(1.0, 2000)).with_loss(20.0));
    scene.add(Emission::new(Port::JammerTx, 2500, burst(1.0, 500)).with_loss(10.0));

    // Closed-form SIR at the AP (time-disjoint bursts; per-burst powers).
    let sir = scene.sir_db(Port::Ap, 0, 1);
    let expect = (51.0 + 20.0 + 20.0) - (38.4 + 10.0 + 20.0);
    // Both emissions pass the AP pad implicitly through the network matrix;
    // with_loss models only device-side pads, so recompute directly:
    let sig = -(51.0 + 20.0);
    let jam = -(38.4 + 10.0);
    assert!(
        (sir - (sig - jam)).abs() < 1e-9,
        "sir={sir}, expect~{}",
        sig - jam
    );
    let _ = expect;

    // The monitor port sees two disjoint bursts with the right powers.
    let mut noise = NoiseSource::new(db_to_lin(-90.0), Rng::seed_from(1));
    let at_monitor = scene.render(Port::Monitor, &mut noise);
    let p_first = mean_power(&at_monitor[0..2000]);
    let p_gap = mean_power(&at_monitor[2100..2450]);
    let p_second = mean_power(&at_monitor[2500..3000]);
    assert!(lin_to_db(p_first) > lin_to_db(p_gap) + 20.0);
    assert!(lin_to_db(p_second) > lin_to_db(p_gap) + 20.0);

    // Scope correspondence over the same scene.
    let mut scope = ScopeTrace::new(25e6);
    scope.capture(&at_monitor);
    scope.mark(0, "client");
    scope.mark(2500, "jam");
    assert_eq!(scope.markers_labeled("client"), vec![0]);
    assert!(!scope.render_ascii(40, 4).contains("(empty"));
}

/// Fading composes with the network: a faded client emission still obeys
/// the insertion-loss budget on ensemble average.
#[test]
fn fading_composes_with_network() {
    let net = FivePortNetwork::paper_table1();
    let mut rng = Rng::seed_from(2);
    let clean = burst(1.0, 4000);
    let trials = 120;
    let mut p_acc = 0.0;
    for _ in 0..trials {
        let ch = MultipathChannel::rayleigh(6, 1.5, &mut rng);
        let faded = ch.apply(&clean);
        let at_ap = net.propagate(Port::Client, Port::Ap, &faded[..clean.len()]);
        p_acc += mean_power(&at_ap);
    }
    let mean_db = lin_to_db(p_acc / trials as f64);
    let expect_db = lin_to_db(mean_power(&clean)) - 51.0;
    assert!(
        (mean_db - expect_db).abs() < 1.0,
        "{mean_db} vs {expect_db}"
    );
}

/// Isolation holds end to end: a jammer emission leaks nothing to its own
/// receive port through the modeled splitter.
#[test]
fn jammer_self_isolation() {
    let net = FivePortNetwork::paper_table1();
    let mut scene = PortReceiver::new(&net);
    scene.add(Emission::new(Port::JammerTx, 0, burst(1.0, 1000)));
    let at_rx = scene.render_clean(Port::JammerRx);
    assert!(mean_power(&at_rx) < db_to_lin(-110.0), "leakage detected");
}
