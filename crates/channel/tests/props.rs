//! Property tests for the wired-channel models, driven by `rjam-testkit`.

use rjam_channel::{Attenuator, NoiseSource, ScopeTrace};
use rjam_sdr::complex::Cf64;
use rjam_sdr::power::{db_to_lin, mean_power};
use rjam_sdr::rng::Rng;
use rjam_testkit::{self as tk, prop_assert, prop_assert_eq, props};

props! {
    cases = 16;

    /// An attenuator reduces mean power by exactly its loss in dB.
    fn attenuator_power_linearity(loss_db in 0.0f64..80.0, seed in tk::any::<u64>()) {
        let mut wave = NoiseSource::new(0.1, Rng::seed_from(seed | 1)).block(256);
        let before = mean_power(&wave);
        Attenuator::new(loss_db).apply(&mut wave);
        let after = mean_power(&wave);
        let expect = before * db_to_lin(-loss_db);
        prop_assert!(
            (after / expect - 1.0).abs() < 1e-9,
            "loss {loss_db} dB: {before} -> {after}, expected {expect}"
        );
    }

    /// Noise blocks have the requested length and converge on the
    /// configured power (law of large numbers, loose tolerance).
    fn noise_block_length_and_power(
        n in 512usize..4096,
        seed in tk::any::<u64>(),
    ) {
        let power = 0.05;
        let block = NoiseSource::new(power, Rng::seed_from(seed)).block(n);
        prop_assert_eq!(block.len(), n);
        let got = mean_power(&block);
        prop_assert!(
            (got / power - 1.0).abs() < 0.25,
            "n {n}: measured {got} vs configured {power}"
        );
    }

    /// Any frame/jam timeline built with a per-pair reaction delay inside
    /// the window passes the Fig. 12 one-to-one correspondence check, and
    /// the recovered delays match what was constructed.
    fn correspondence_accepts_valid_timelines(
        delays in tk::vec(1usize..99, 1..12),
    ) {
        let mut t = ScopeTrace::new(25e6);
        t.capture(&vec![Cf64::new(0.5, 0.0); 16]);
        for (k, &d) in delays.iter().enumerate() {
            t.mark(k * 1_000, "frame");
            t.mark(k * 1_000 + d, "jam");
        }
        let pairs = t.correspondence("frame", "jam", 100).expect("valid timeline");
        prop_assert_eq!(pairs.len(), delays.len());
        for ((f, j), &d) in pairs.iter().zip(&delays) {
            prop_assert_eq!(j - f, d);
        }
    }
}
