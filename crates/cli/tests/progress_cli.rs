//! End-to-end checks of `--progress[=FILE]` streaming and `rjamctl report`
//! through the public [`rjam_cli::run`] entry point.
//!
//! These live in their own integration-test binary because the progress
//! sink and the campaign-stream guard are process-wide; campaigns launched
//! by parallel tests of another binary would race for stream ownership.
//! Both scenarios share one `#[test]` for the same reason.

#![cfg(feature = "obs")]

use rjam_obs::stream::{self, ProgressEvent};

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

/// Pulls the percentage out of the profile's
/// `attributed NN.N% of W x T worker wall-clock ...` line.
fn attributed_pct(out: &str) -> f64 {
    let line = out
        .lines()
        .find(|l| l.trim_start().starts_with("attributed "))
        .unwrap_or_else(|| panic!("no attribution line in:\n{out}"));
    line.trim_start()
        .strip_prefix("attributed ")
        .unwrap()
        .split('%')
        .next()
        .unwrap()
        .parse()
        .expect("attribution percentage parses")
}

#[test]
fn progress_flag_and_report_attribute_real_campaigns() {
    // --- Scenario 1: `--progress=FILE` around a real detection campaign
    // yields one complete, schema-valid rjam-progress-v1 chain.
    let mut path = std::env::temp_dir();
    path.push(format!("rjamctl_progress_{}.ndjson", std::process::id()));
    let path_s = path.to_string_lossy().to_string();
    let out = rjam_cli::run(&argv(&format!(
        "--progress={path_s} --threads 2 detect --preset wifi-short --snr 0 --frames 24"
    )))
    .expect("detect with --progress succeeds");
    assert!(out.contains("P(det)"), "{out}");
    let text = std::fs::read_to_string(&path).expect("progress file written");
    std::fs::remove_file(&path).ok();
    let events =
        stream::parse_stream(&text).unwrap_or_else(|e| panic!("stream parses: {e}\n{text}"));
    stream::validate_chain(&events).expect("full start -> done chain");
    let ProgressEvent::Started { kind, workers, .. } = &events[0] else {
        panic!("first event is campaign_started");
    };
    assert_eq!(kind, "wifi_detection");
    assert_eq!(*workers, 2, "--threads reaches the streamed header");

    // --- Scenario 2: a failed run still leaves a readable (partial or
    // empty) file rather than a poisoned sink for the next run.
    let err = rjam_cli::run(&argv(&format!(
        "--progress={path_s} classify /nonexistent/x.cf32"
    )))
    .unwrap_err();
    assert!(err.message().contains("cannot read"), "{err}");
    std::fs::remove_file(&path).ok();

    // --- Scenario 3: `rjamctl report` attributes >= 95 % of worker
    // wall-clock on a real campaign (the ISSUE acceptance bound). Serial
    // first — its attribution is structural — then a 2-worker run, whose
    // only uncovered time is thread spawn latency, negligible against a
    // multi-hundred-millisecond sweep.
    for (flags, floor) in [("--threads 1", 95.0), ("--threads 2", 90.0)] {
        let out = rjam_cli::run(&argv(&format!("{flags} report --frames 24 --top 3")))
            .expect("report succeeds");
        assert!(
            out.contains("== engine profile: wifi_detection =="),
            "{out}"
        );
        assert!(out.contains("== unit latency =="), "{out}");
        let pct = attributed_pct(&out);
        assert!(
            pct >= floor,
            "report ({flags}) attributed only {pct}% (floor {floor}%):\n{out}"
        );
    }
}
