//! End-to-end exit-code contract of the `rjamctl` binary: every failure
//! flows through one exit path, with distinct codes for usage (2) and
//! runtime (1) errors, and usage text shown only for the former.

use std::process::Command;

fn rjamctl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rjamctl"))
        .args(args)
        .output()
        .expect("spawn rjamctl")
}

#[test]
fn unknown_command_exits_2_with_usage() {
    let out = rjamctl(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
    assert!(err.contains("unknown command"), "{err}");
    assert!(err.contains("USAGE:"), "usage must accompany exit 2: {err}");
}

#[test]
fn bad_flag_value_exits_2() {
    let out = rjamctl(&["iperf", "--jammer", "off", "--sir", "banana"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--sir"));
}

#[test]
fn garbage_rjam_threads_env_exits_2_with_usage() {
    // The engine alone degrades a bad override to serial, but the console
    // must reject it loudly through the usage-error path — same contract
    // as a malformed --threads flag.
    for bad in ["four", "-2", "0"] {
        let out = Command::new(env!("CARGO_BIN_EXE_rjamctl"))
            .args(["resources"])
            .env("RJAM_THREADS", bad)
            .output()
            .expect("spawn rjamctl");
        assert_eq!(out.status.code(), Some(2), "RJAM_THREADS={bad}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("RJAM_THREADS"), "RJAM_THREADS={bad}: {err}");
        assert!(err.contains("USAGE:"), "RJAM_THREADS={bad}: {err}");
    }
    // An explicit --threads flag wins over a bad environment value.
    let out = Command::new(env!("CARGO_BIN_EXE_rjamctl"))
        .args(["resources", "--threads", "2"])
        .env("RJAM_THREADS", "garbage")
        .output()
        .expect("spawn rjamctl");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn runtime_failure_exits_1_without_usage() {
    let out = rjamctl(&["classify", "/nonexistent/rjam_capture.cf32"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
    assert!(err.contains("cannot read"), "{err}");
    assert!(
        !err.contains("USAGE:"),
        "runtime failures must not spam usage: {err}"
    );
}

#[test]
fn success_exits_0() {
    let out = rjamctl(&["resources"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("TOTAL"));
}

#[test]
fn stats_prints_counters_and_latency_histogram() {
    let out = rjamctl(&["stats"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("== counters =="), "{text}");
    #[cfg(feature = "obs")]
    {
        assert!(text.contains("fpga.samples_in"), "{text}");
        assert!(text.contains("fpga.trigger_to_tx_ns"), "{text}");
        assert!(
            text.contains("within the paper's 2640 ns xcorr response budget"),
            "{text}"
        );
    }
}

#[cfg(feature = "obs")]
#[test]
fn monitor_healthy_exits_0() {
    let out = rjamctl(&["monitor", "--jammer", "off", "--seconds", "0.5"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("link health: HEALTHY"), "{text}");
    assert!(text.contains("prr_collapse"), "{text}");
}

#[cfg(feature = "obs")]
#[test]
fn monitor_alarmed_exits_1_with_report_on_stdout() {
    let mut path = std::env::temp_dir();
    path.push(format!("rjamctl_e2e_health_{}.ndjson", std::process::id()));
    let path_s = path.to_string_lossy().to_string();
    let out = rjamctl(&[
        "monitor",
        "--jammer",
        "reactive-long",
        "--sir",
        "1",
        "--seconds",
        "1",
        "--out",
        &path_s,
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // The alarmed verdict is a report, not an error: stdout, no "error:".
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("link health: ALARMED"), "{text}");
    assert!(text.contains("prr_collapse"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("error:"), "{err}");
    assert!(!err.contains("USAGE:"), "{err}");
    // The --out stream is a valid rjam-health-v1 chain ending in an
    // unhealthy run_summary.
    let stream = std::fs::read_to_string(&path).expect("health stream written");
    std::fs::remove_file(&path).ok();
    let events = rjam_obs::health::parse_stream(&stream).expect("stream parses");
    rjam_obs::health::validate_chain(&events).expect("chain validates");
    assert!(stream.contains("\"ev\":\"alarm_raised\""), "{stream}");
}

#[test]
fn monitor_bad_cadence_exits_2() {
    let out = rjamctl(&["monitor", "--jammer", "off", "--cadence", "0"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--cadence"), "{err}");
    assert!(err.contains("USAGE:"), "{err}");
}

#[test]
fn metrics_out_writes_parseable_snapshot() {
    let mut path = std::env::temp_dir();
    path.push(format!("rjamctl_e2e_metrics_{}.json", std::process::id()));
    let path_s = path.to_string_lossy().to_string();
    let out = rjamctl(&["timeline", "--trials", "1", "--metrics-out", &path_s]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = std::fs::read_to_string(&path).expect("snapshot written");
    std::fs::remove_file(&path).ok();
    let snap = rjam_obs::MetricsSnapshot::from_json(&text).expect("snapshot parses");
    #[cfg(feature = "obs")]
    assert!(
        snap.counter("fpga.samples_in").unwrap_or(0) > 0,
        "timeline run must have streamed samples: {text}"
    );
    #[cfg(not(feature = "obs"))]
    assert!(snap.is_empty());
}

#[test]
fn metrics_out_missing_value_exits_2() {
    let out = rjamctl(&["resources", "--metrics-out"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--metrics-out"));
}

// ---- rjam-job-v1 subcommands (submit / status / watch / cancel / resume) ----

const FA_SPEC: &str = r#"{"campaign":"false_alarm","preset":{"kind":"wifi_short","threshold":0.3},"samples":20000,"seed":9}"#;

#[test]
fn submit_without_target_exits_2_with_usage() {
    let out = rjamctl(&["submit", "--spec", FA_SPEC]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--socket"), "{err}");
    assert!(err.contains("USAGE:"), "{err}");
}

#[test]
fn submit_with_malformed_spec_exits_2() {
    let out = rjamctl(&["submit", "--local", "--spec", "{not json"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--spec"), "{err}");
    assert!(err.contains("USAGE:"), "{err}");
}

#[test]
fn submit_with_invalid_field_exits_2_naming_the_field() {
    let bad = r#"{"campaign":"false_alarm","preset":{"kind":"wifi_short","threshold":2.0},"samples":20000,"seed":9}"#;
    let out = rjamctl(&["submit", "--local", "--spec", bad]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("threshold"), "{err}");
}

#[test]
fn submit_unreachable_socket_exits_1_without_usage() {
    let out = rjamctl(&[
        "submit",
        "--socket",
        "/nonexistent/rjamd.sock",
        "--spec",
        FA_SPEC,
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
    assert!(
        !err.contains("USAGE:"),
        "runtime failures must not spam usage: {err}"
    );
}

#[test]
fn submit_local_runs_in_process_and_exits_0() {
    let out = rjamctl(&["submit", "--local", "--spec", FA_SPEC]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fa_per_s"), "{text}");
}

#[test]
fn submit_local_export_is_deterministic() {
    let dir = std::env::temp_dir();
    let a = dir.join(format!("rjamctl_e2e_job_a_{}.json", std::process::id()));
    let b = dir.join(format!("rjamctl_e2e_job_b_{}.json", std::process::id()));
    for (path, threads) in [(&a, "1"), (&b, "3")] {
        let path_s = path.to_string_lossy().to_string();
        let out = rjamctl(&[
            "submit",
            "--local",
            "--spec",
            FA_SPEC,
            "--export",
            &path_s,
            "--threads",
            threads,
        ]);
        assert_eq!(out.status.code(), Some(0), "{out:?}");
    }
    let ea = std::fs::read(&a).expect("export a");
    let eb = std::fs::read(&b).expect("export b");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
    assert_eq!(ea, eb, "export must not depend on thread count");
}

#[test]
fn status_without_socket_exits_2() {
    let out = rjamctl(&["status"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--socket"), "{err}");
    assert!(err.contains("USAGE:"), "{err}");
}

#[test]
fn watch_without_job_id_exits_2() {
    let out = rjamctl(&["watch", "--socket", "/tmp/rjamd.sock"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("job id"), "{err}");
    assert!(err.contains("USAGE:"), "{err}");
}

#[test]
fn cancel_and_resume_unreachable_socket_exit_1() {
    for verb in ["cancel", "resume"] {
        let out = rjamctl(&[verb, "--socket", "/nonexistent/rjamd.sock", "job-1"]);
        assert_eq!(out.status.code(), Some(1), "{verb}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "{verb}: {err}");
        assert!(!err.contains("USAGE:"), "{verb}: {err}");
    }
}
