//! End-to-end exit-code contract of the `rjamctl` binary: every failure
//! flows through one exit path, with distinct codes for usage (2) and
//! runtime (1) errors, and usage text shown only for the former.

use std::process::Command;

fn rjamctl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rjamctl"))
        .args(args)
        .output()
        .expect("spawn rjamctl")
}

#[test]
fn unknown_command_exits_2_with_usage() {
    let out = rjamctl(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
    assert!(err.contains("unknown command"), "{err}");
    assert!(err.contains("USAGE:"), "usage must accompany exit 2: {err}");
}

#[test]
fn bad_flag_value_exits_2() {
    let out = rjamctl(&["iperf", "--jammer", "off", "--sir", "banana"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--sir"));
}

#[test]
fn garbage_rjam_threads_env_exits_2_with_usage() {
    // The engine alone degrades a bad override to serial, but the console
    // must reject it loudly through the usage-error path — same contract
    // as a malformed --threads flag.
    for bad in ["four", "-2", "0"] {
        let out = Command::new(env!("CARGO_BIN_EXE_rjamctl"))
            .args(["resources"])
            .env("RJAM_THREADS", bad)
            .output()
            .expect("spawn rjamctl");
        assert_eq!(out.status.code(), Some(2), "RJAM_THREADS={bad}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("RJAM_THREADS"), "RJAM_THREADS={bad}: {err}");
        assert!(err.contains("USAGE:"), "RJAM_THREADS={bad}: {err}");
    }
    // An explicit --threads flag wins over a bad environment value.
    let out = Command::new(env!("CARGO_BIN_EXE_rjamctl"))
        .args(["resources", "--threads", "2"])
        .env("RJAM_THREADS", "garbage")
        .output()
        .expect("spawn rjamctl");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn runtime_failure_exits_1_without_usage() {
    let out = rjamctl(&["classify", "/nonexistent/rjam_capture.cf32"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
    assert!(err.contains("cannot read"), "{err}");
    assert!(
        !err.contains("USAGE:"),
        "runtime failures must not spam usage: {err}"
    );
}

#[test]
fn success_exits_0() {
    let out = rjamctl(&["resources"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("TOTAL"));
}

#[test]
fn stats_prints_counters_and_latency_histogram() {
    let out = rjamctl(&["stats"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("== counters =="), "{text}");
    #[cfg(feature = "obs")]
    {
        assert!(text.contains("fpga.samples_in"), "{text}");
        assert!(text.contains("fpga.trigger_to_tx_ns"), "{text}");
        assert!(
            text.contains("within the paper's 2640 ns xcorr response budget"),
            "{text}"
        );
    }
}

#[cfg(feature = "obs")]
#[test]
fn monitor_healthy_exits_0() {
    let out = rjamctl(&["monitor", "--jammer", "off", "--seconds", "0.5"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("link health: HEALTHY"), "{text}");
    assert!(text.contains("prr_collapse"), "{text}");
}

#[cfg(feature = "obs")]
#[test]
fn monitor_alarmed_exits_1_with_report_on_stdout() {
    let mut path = std::env::temp_dir();
    path.push(format!("rjamctl_e2e_health_{}.ndjson", std::process::id()));
    let path_s = path.to_string_lossy().to_string();
    let out = rjamctl(&[
        "monitor",
        "--jammer",
        "reactive-long",
        "--sir",
        "1",
        "--seconds",
        "1",
        "--out",
        &path_s,
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // The alarmed verdict is a report, not an error: stdout, no "error:".
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("link health: ALARMED"), "{text}");
    assert!(text.contains("prr_collapse"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("error:"), "{err}");
    assert!(!err.contains("USAGE:"), "{err}");
    // The --out stream is a valid rjam-health-v1 chain ending in an
    // unhealthy run_summary.
    let stream = std::fs::read_to_string(&path).expect("health stream written");
    std::fs::remove_file(&path).ok();
    let events = rjam_obs::health::parse_stream(&stream).expect("stream parses");
    rjam_obs::health::validate_chain(&events).expect("chain validates");
    assert!(stream.contains("\"ev\":\"alarm_raised\""), "{stream}");
}

#[test]
fn monitor_bad_cadence_exits_2() {
    let out = rjamctl(&["monitor", "--jammer", "off", "--cadence", "0"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--cadence"), "{err}");
    assert!(err.contains("USAGE:"), "{err}");
}

#[test]
fn metrics_out_writes_parseable_snapshot() {
    let mut path = std::env::temp_dir();
    path.push(format!("rjamctl_e2e_metrics_{}.json", std::process::id()));
    let path_s = path.to_string_lossy().to_string();
    let out = rjamctl(&["timeline", "--trials", "1", "--metrics-out", &path_s]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = std::fs::read_to_string(&path).expect("snapshot written");
    std::fs::remove_file(&path).ok();
    let snap = rjam_obs::MetricsSnapshot::from_json(&text).expect("snapshot parses");
    #[cfg(feature = "obs")]
    assert!(
        snap.counter("fpga.samples_in").unwrap_or(0) > 0,
        "timeline run must have streamed samples: {text}"
    );
    #[cfg(not(feature = "obs"))]
    assert!(snap.is_empty());
}

#[test]
fn metrics_out_missing_value_exits_2() {
    let out = rjamctl(&["resources", "--metrics-out"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--metrics-out"));
}
