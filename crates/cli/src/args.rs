//! Command-line argument model (std-only; no parser dependency).

use std::collections::HashMap;
use std::fmt;

/// A parse or execution failure surfaced to the operator.
#[derive(Clone, Debug, PartialEq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The detection preset names the console accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PresetName {
    /// WiFi short-training-sequence template.
    WifiShort,
    /// WiFi long-training-symbol template.
    WifiLong,
    /// WiMAX preamble template (IDcell/segment via --cell/--segment).
    Wimax,
    /// Energy-rise detector.
    Energy,
}

impl PresetName {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "wifi-short" => Ok(PresetName::WifiShort),
            "wifi-long" => Ok(PresetName::WifiLong),
            "wimax" => Ok(PresetName::Wimax),
            "energy" => Ok(PresetName::Energy),
            other => Err(CliError(format!(
                "unknown preset '{other}' (expected wifi-short|wifi-long|wimax|energy)"
            ))),
        }
    }
}

/// Jammer variant names for the iperf command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JammerName {
    /// No jammer.
    Off,
    /// Continuous WGN.
    Continuous,
    /// Reactive, 0.1 ms uptime.
    ReactiveLong,
    /// Reactive, 0.01 ms uptime.
    ReactiveShort,
}

impl JammerName {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "off" => Ok(JammerName::Off),
            "continuous" => Ok(JammerName::Continuous),
            "reactive-long" => Ok(JammerName::ReactiveLong),
            "reactive-short" => Ok(JammerName::ReactiveShort),
            other => Err(CliError(format!(
                "unknown jammer '{other}' (expected off|continuous|reactive-long|reactive-short)"
            ))),
        }
    }
}

/// A fully parsed console command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Fig. 5 latency check.
    Timeline {
        /// Frame episodes per detection path.
        trials: usize,
    },
    /// Detection-probability measurement at one SNR.
    Detect {
        /// Detector to arm.
        preset: PresetName,
        /// Probe SNR in dB.
        snr_db: f64,
        /// Frames per measurement.
        frames: usize,
        /// Correlation threshold fraction (correlator presets).
        threshold: f64,
        /// Energy threshold dB (energy preset).
        energy_db: f64,
        /// WiMAX IDcell.
        cell: u8,
        /// WiMAX segment.
        segment: u8,
    },
    /// False-alarm measurement on noise-only input.
    Fa {
        /// Detector to arm.
        preset: PresetName,
        /// Correlation threshold fraction.
        threshold: f64,
        /// Energy threshold dB.
        energy_db: f64,
        /// Noise samples to process.
        samples: usize,
        /// WiMAX IDcell.
        cell: u8,
        /// WiMAX segment.
        segment: u8,
    },
    /// iperf-style jamming run at one SIR.
    Iperf {
        /// Jammer variant.
        jammer: JammerName,
        /// SIR at the AP, dB.
        sir_db: f64,
        /// Test duration, seconds.
        seconds: f64,
    },
    /// Classify an IQ capture file (cf32 at 25 MSPS).
    Classify {
        /// Path to the capture.
        path: String,
    },
    /// ROC sweep: FA rate vs detection probability across thresholds.
    Roc {
        /// Detector to sweep.
        preset: PresetName,
        /// Probe SNR in dB.
        snr_db: f64,
        /// Frames per threshold.
        frames: usize,
        /// Noise samples per FA measurement.
        fa_samples: usize,
        /// WiMAX IDcell.
        cell: u8,
        /// WiMAX segment.
        segment: u8,
    },
    /// Print the FPGA resource footprint of the custom core.
    Resources,
    /// Print usage.
    Help,
}

/// Raw key/value option map plus positionals.
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    /// `--key value` pairs.
    pub options: HashMap<String, String>,
    /// Bare arguments in order.
    pub positionals: Vec<String>,
}

/// Splits argv into options and positionals.
pub fn split(argv: &[String]) -> Result<ParsedArgs, CliError> {
    let mut out = ParsedArgs::default();
    let mut i = 0;
    while i < argv.len() {
        if let Some(key) = argv[i].strip_prefix("--") {
            let value = argv
                .get(i + 1)
                .ok_or_else(|| CliError(format!("--{key} needs a value")))?;
            out.options.insert(key.to_string(), value.clone());
            i += 2;
        } else {
            out.positionals.push(argv[i].clone());
            i += 1;
        }
    }
    Ok(out)
}

fn opt<T: std::str::FromStr>(p: &ParsedArgs, key: &str, default: T) -> Result<T, CliError> {
    match p.options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError(format!("--{key}: cannot parse '{v}'"))),
    }
}

/// Parses a full command line (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let Some(verb) = argv.first() else {
        return Ok(Command::Help);
    };
    let rest = split(&argv[1..])?;
    match verb.as_str() {
        "timeline" => Ok(Command::Timeline {
            trials: opt(&rest, "trials", 20)?,
        }),
        "detect" => Ok(Command::Detect {
            preset: PresetName::parse(
                rest.options
                    .get("preset")
                    .ok_or_else(|| CliError("detect requires --preset".into()))?,
            )?,
            snr_db: opt(&rest, "snr", 5.0)?,
            frames: opt(&rest, "frames", 100)?,
            threshold: opt(&rest, "threshold", 0.35)?,
            energy_db: opt(&rest, "energy-db", 10.0)?,
            cell: opt(&rest, "cell", 1)?,
            segment: opt(&rest, "segment", 0)?,
        }),
        "fa" => Ok(Command::Fa {
            preset: PresetName::parse(
                rest.options
                    .get("preset")
                    .ok_or_else(|| CliError("fa requires --preset".into()))?,
            )?,
            threshold: opt(&rest, "threshold", 0.40)?,
            energy_db: opt(&rest, "energy-db", 10.0)?,
            samples: opt(&rest, "samples", 5_000_000)?,
            cell: opt(&rest, "cell", 1)?,
            segment: opt(&rest, "segment", 0)?,
        }),
        "iperf" => Ok(Command::Iperf {
            jammer: JammerName::parse(
                rest.options
                    .get("jammer")
                    .ok_or_else(|| CliError("iperf requires --jammer".into()))?,
            )?,
            sir_db: opt(&rest, "sir", 20.0)?,
            seconds: opt(&rest, "seconds", 5.0)?,
        }),
        "classify" => {
            let path = rest
                .positionals
                .first()
                .cloned()
                .ok_or_else(|| CliError("classify requires a capture path".into()))?;
            Ok(Command::Classify { path })
        }
        "roc" => Ok(Command::Roc {
            preset: PresetName::parse(
                rest.options
                    .get("preset")
                    .ok_or_else(|| CliError("roc requires --preset".into()))?,
            )?,
            snr_db: opt(&rest, "snr", 0.0)?,
            frames: opt(&rest, "frames", 60)?,
            fa_samples: opt(&rest, "fa-samples", 2_000_000)?,
            cell: opt(&rest, "cell", 1)?,
            segment: opt(&rest, "segment", 0)?,
        }),
        "resources" => Ok(Command::Resources),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError(format!("unknown command '{other}' (try 'help')"))),
    }
}

/// Usage text.
pub const USAGE: &str = "rjamctl — reactive jamming operator console

USAGE:
  rjamctl timeline  [--trials N]
  rjamctl detect    --preset wifi-short|wifi-long|wimax|energy
                    [--snr dB] [--frames N] [--threshold f]
                    [--energy-db dB] [--cell N] [--segment N]
  rjamctl fa        --preset ... [--threshold f] [--energy-db dB] [--samples N]
  rjamctl iperf     --jammer off|continuous|reactive-long|reactive-short
                    [--sir dB] [--seconds S]
  rjamctl roc       --preset ... [--snr dB] [--frames N] [--fa-samples N]
  rjamctl classify  <capture.cf32>
  rjamctl resources
  rjamctl help

NOTES:
  detect/roc probe against full 802.11g frames; selecting --preset wimax
  there measures cross-standard rejection (it should stay near zero).
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_timeline_defaults() {
        assert_eq!(
            parse(&argv("timeline")).unwrap(),
            Command::Timeline { trials: 20 }
        );
        assert_eq!(
            parse(&argv("timeline --trials 7")).unwrap(),
            Command::Timeline { trials: 7 }
        );
    }

    #[test]
    fn parses_detect() {
        let c = parse(&argv("detect --preset wifi-short --snr -3 --frames 50")).unwrap();
        match c {
            Command::Detect {
                preset,
                snr_db,
                frames,
                ..
            } => {
                assert_eq!(preset, PresetName::WifiShort);
                assert_eq!(snr_db, -3.0);
                assert_eq!(frames, 50);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn detect_requires_preset() {
        let err = parse(&argv("detect --snr 3")).unwrap_err();
        assert!(err.0.contains("--preset"), "{err}");
    }

    #[test]
    fn rejects_unknown_preset_and_command() {
        assert!(parse(&argv("detect --preset zigbee")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn parses_iperf_jammers() {
        for (name, want) in [
            ("off", JammerName::Off),
            ("continuous", JammerName::Continuous),
            ("reactive-long", JammerName::ReactiveLong),
            ("reactive-short", JammerName::ReactiveShort),
        ] {
            let c = parse(&argv(&format!("iperf --jammer {name} --sir 14"))).unwrap();
            match c {
                Command::Iperf { jammer, sir_db, .. } => {
                    assert_eq!(jammer, want);
                    assert_eq!(sir_db, 14.0);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn classify_takes_positional() {
        let c = parse(&argv("classify cap.cf32")).unwrap();
        assert_eq!(
            c,
            Command::Classify {
                path: "cap.cf32".into()
            }
        );
        assert!(parse(&argv("classify")).is_err());
    }

    #[test]
    fn missing_value_reported() {
        let err = parse(&argv("detect --preset")).unwrap_err();
        assert!(err.0.contains("needs a value"), "{err}");
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn unparsable_number_reported() {
        let err = parse(&argv("iperf --jammer off --sir banana")).unwrap_err();
        assert!(err.0.contains("--sir"), "{err}");
    }
}
