//! Command-line argument model (std-only; no parser dependency).

use std::collections::HashMap;
use std::fmt;

/// How a CLI failure maps to a process exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The invocation itself was malformed (unknown command, bad flag,
    /// unparsable value). Exit code 2; usage text is shown.
    Usage,
    /// The command was well-formed but failed while running (missing file,
    /// empty capture, unwritable output). Exit code 1; no usage spam.
    Runtime,
    /// The command ran to completion but its verdict is unhealthy
    /// (`monitor` finished with an alarm still raised, or a validator
    /// found a violated expectation). Exit code 1; the message is the
    /// command's full report and is printed to stdout, not styled as an
    /// error.
    Alarm,
}

/// A parse or execution failure surfaced to the operator.
///
/// Every error in the console flows through this one type so the binary has
/// a single exit path: [`ErrorKind::Usage`] failures exit 2 with usage,
/// [`ErrorKind::Runtime`] failures exit 1 without it.
#[derive(Clone, Debug, PartialEq)]
pub struct CliError {
    kind: ErrorKind,
    message: String,
}

impl CliError {
    /// A malformed-invocation error (exit code 2, usage shown).
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            kind: ErrorKind::Usage,
            message: message.into(),
        }
    }

    /// A runtime failure (exit code 1, no usage).
    pub fn runtime(message: impl Into<String>) -> Self {
        CliError {
            kind: ErrorKind::Runtime,
            message: message.into(),
        }
    }

    /// An unhealthy verdict (exit code 1): `message` is the command's
    /// complete report, shown on stdout like a success report.
    pub fn alarm(message: impl Into<String>) -> Self {
        CliError {
            kind: ErrorKind::Alarm,
            message: message.into(),
        }
    }

    /// Which class of failure this is.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The operator-facing message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> u8 {
        match self.kind {
            ErrorKind::Usage => 2,
            ErrorKind::Runtime | ErrorKind::Alarm => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

/// The detection preset names the console accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PresetName {
    /// WiFi short-training-sequence template.
    WifiShort,
    /// WiFi long-training-symbol template.
    WifiLong,
    /// WiMAX preamble template (IDcell/segment via --cell/--segment).
    Wimax,
    /// Energy-rise detector.
    Energy,
}

impl PresetName {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "wifi-short" => Ok(PresetName::WifiShort),
            "wifi-long" => Ok(PresetName::WifiLong),
            "wimax" => Ok(PresetName::Wimax),
            "energy" => Ok(PresetName::Energy),
            other => Err(CliError::usage(format!(
                "unknown preset '{other}' (expected wifi-short|wifi-long|wimax|energy)"
            ))),
        }
    }
}

/// Jammer variant names for the iperf command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JammerName {
    /// No jammer.
    Off,
    /// Continuous WGN.
    Continuous,
    /// Reactive, 0.1 ms uptime.
    ReactiveLong,
    /// Reactive, 0.01 ms uptime.
    ReactiveShort,
}

impl JammerName {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "off" => Ok(JammerName::Off),
            "continuous" => Ok(JammerName::Continuous),
            "reactive-long" => Ok(JammerName::ReactiveLong),
            "reactive-short" => Ok(JammerName::ReactiveShort),
            other => Err(CliError::usage(format!(
                "unknown jammer '{other}' (expected off|continuous|reactive-long|reactive-short)"
            ))),
        }
    }
}

/// A fully parsed console command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Fig. 5 latency check.
    Timeline {
        /// Frame episodes per detection path.
        trials: usize,
    },
    /// Detection-probability measurement at one SNR.
    Detect {
        /// Detector to arm.
        preset: PresetName,
        /// Probe SNR in dB.
        snr_db: f64,
        /// Frames per measurement.
        frames: usize,
        /// Correlation threshold fraction (correlator presets).
        threshold: f64,
        /// Energy threshold dB (energy preset).
        energy_db: f64,
        /// WiMAX IDcell.
        cell: u8,
        /// WiMAX segment.
        segment: u8,
    },
    /// False-alarm measurement on noise-only input.
    Fa {
        /// Detector to arm.
        preset: PresetName,
        /// Correlation threshold fraction.
        threshold: f64,
        /// Energy threshold dB.
        energy_db: f64,
        /// Noise samples to process.
        samples: usize,
        /// WiMAX IDcell.
        cell: u8,
        /// WiMAX segment.
        segment: u8,
        /// Comma-separated threshold-fraction grid (correlator presets):
        /// every fraction is measured over the *same* noise stream in one
        /// lane-bank pass.
        grid: Option<Vec<f64>>,
    },
    /// iperf-style jamming run at one SIR.
    Iperf {
        /// Jammer variant.
        jammer: JammerName,
        /// SIR at the AP, dB.
        sir_db: f64,
        /// Test duration, seconds.
        seconds: f64,
    },
    /// Classify an IQ capture file (cf32 at 25 MSPS).
    Classify {
        /// Path to the capture.
        path: String,
    },
    /// ROC sweep: FA rate vs detection probability across thresholds.
    Roc {
        /// Detector to sweep.
        preset: PresetName,
        /// Probe SNR in dB.
        snr_db: f64,
        /// Frames per threshold.
        frames: usize,
        /// Noise samples per FA measurement.
        fa_samples: usize,
        /// WiMAX IDcell.
        cell: u8,
        /// WiMAX segment.
        segment: u8,
    },
    /// Print the FPGA resource footprint of the custom core.
    Resources,
    /// Observability: render a metrics snapshot (live exercise or a saved
    /// `--metrics-out` file).
    Stats {
        /// Optional path to a saved `rjam-metrics-v1` JSON snapshot; when
        /// absent, a short live exercise is run and its metrics shown.
        input: Option<String>,
        /// Response budget the trigger-to-TX p99 is judged against, in ns.
        /// `None` derives it from the detection presets the live exercise
        /// arms (the paper's xcorr budget when the correlator is in play).
        budget_ns: Option<f64>,
    },
    /// Causal tracing: capture traced jam episodes, render the per-frame
    /// latency attribution, and export Perfetto-loadable timelines.
    Trace {
        /// Frame episodes to capture.
        episodes: usize,
        /// Write the compact `rjam-trace-v1` JSON document here.
        out: Option<String>,
        /// Write Chrome trace-event JSON (Perfetto / `chrome://tracing`)
        /// here.
        chrome: Option<String>,
        /// Response budget per frame, ns; `None` derives it from the armed
        /// presets.
        budget_ns: Option<f64>,
        /// How many of the slowest frames to detail.
        top: usize,
    },
    /// Online health monitoring: run a scenario with the link-health
    /// monitor attached and render the live rule table plus alarm log.
    /// Exits 0 when the run ends healthy, 1 when an alarm was raised.
    Monitor {
        /// Jammer variant under test.
        jammer: JammerName,
        /// SIR at the AP, dB.
        sir_db: f64,
        /// Scenario duration, seconds.
        seconds: f64,
        /// Monitor evaluation cadence, frames per window.
        cadence: u64,
        /// Write the line-delimited `rjam-health-v1` event stream here.
        out: Option<String>,
    },
    /// Engine telemetry: run a reference detection campaign and render its
    /// post-run engine profile (per-worker utilization, unit latency
    /// percentiles, stragglers).
    Report {
        /// Frames per SNR point of the reference sweep.
        frames: usize,
        /// How many stragglers to detail.
        top: usize,
    },
    /// Submit a campaign job to a running `rjamd` (or run it locally).
    Submit {
        /// Unix socket of the daemon (`None` only with `local`).
        socket: Option<String>,
        /// The `CampaignRequest` JSON text.
        spec: String,
        /// Run the spec in this process instead of a daemon — the
        /// byte-identical reference for job exports.
        local: bool,
        /// With `local`: write the export here instead of stdout.
        export: Option<String>,
    },
    /// Report job states from a running `rjamd`.
    JobStatus {
        /// Unix socket of the daemon.
        socket: String,
        /// Restrict to one job id.
        job: Option<String>,
    },
    /// Stream a job's progress until it finishes.
    Watch {
        /// Unix socket of the daemon.
        socket: String,
        /// Job id to follow.
        job: String,
        /// Write the final export text here when the job completes.
        export: Option<String>,
    },
    /// Cancel a queued or running job (checkpoint retained).
    JobCancel {
        /// Unix socket of the daemon.
        socket: String,
        /// Job id to cancel.
        job: String,
    },
    /// Resume a cancelled job from its checkpoint.
    JobResume {
        /// Unix socket of the daemon.
        socket: String,
        /// Job id to resume.
        job: String,
    },
    /// Print usage.
    Help,
}

/// Where the live `rjam-progress-v1` stream should go.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgressTarget {
    /// NDJSON on stderr (the default for bare `--progress`).
    Stderr,
    /// NDJSON appended to a file (`--progress=FILE`).
    File(String),
}

/// Raw key/value option map plus positionals.
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    /// `--key value` pairs.
    pub options: HashMap<String, String>,
    /// Bare arguments in order.
    pub positionals: Vec<String>,
}

/// Strips the global `--metrics-out <file>` flag from an argument vector.
///
/// The flag is accepted anywhere on the command line and applies to every
/// command: after execution, a `rjam-metrics-v1` JSON snapshot of the
/// process-wide registry is written to the file. Returns the remaining
/// arguments and the requested path, if any.
pub fn extract_metrics_out(argv: &[String]) -> Result<(Vec<String>, Option<String>), CliError> {
    let mut rest = Vec::with_capacity(argv.len());
    let mut path = None;
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--metrics-out" {
            let value = argv
                .get(i + 1)
                .ok_or_else(|| CliError::usage("--metrics-out needs a file path"))?;
            path = Some(value.clone());
            i += 2;
        } else {
            rest.push(argv[i].clone());
            i += 1;
        }
    }
    Ok((rest, path))
}

/// Strips the global `--threads <N>` flag from an argument vector.
///
/// The flag is accepted anywhere on the command line and sets the worker
/// count of the campaign engine for this invocation, overriding the
/// `RJAM_THREADS` environment variable. `N` must be a positive integer.
/// Campaign output is bit-identical at any thread count, so this is purely
/// a wall-clock knob.
pub fn extract_threads(argv: &[String]) -> Result<(Vec<String>, Option<usize>), CliError> {
    let mut rest = Vec::with_capacity(argv.len());
    let mut threads = None;
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--threads" {
            let value = argv
                .get(i + 1)
                .ok_or_else(|| CliError::usage("--threads needs a positive integer"))?;
            let n: usize = value.parse().map_err(|_| {
                CliError::usage(format!("--threads: cannot parse '{value}' as an integer"))
            })?;
            if n == 0 {
                return Err(CliError::usage("--threads must be at least 1"));
            }
            threads = Some(n);
            i += 2;
        } else {
            rest.push(argv[i].clone());
            i += 1;
        }
    }
    Ok((rest, threads))
}

/// Strips the global `--progress[=FILE]` flag from an argument vector.
///
/// Accepted anywhere on the command line: while a campaign command runs,
/// the engine streams line-delimited `rjam-progress-v1` events (campaign
/// started / shard finished / snapshot with ETA / campaign done) to stderr,
/// or to `FILE` with the `--progress=FILE` form. Unlike the two-token
/// global flags, the value is attached with `=` so bare `--progress` can
/// default to stderr without swallowing the next argument.
pub fn extract_progress(
    argv: &[String],
) -> Result<(Vec<String>, Option<ProgressTarget>), CliError> {
    let mut rest = Vec::with_capacity(argv.len());
    let mut target = None;
    for arg in argv {
        if arg == "--progress" {
            target = Some(ProgressTarget::Stderr);
        } else if let Some(path) = arg.strip_prefix("--progress=") {
            if path.is_empty() {
                return Err(CliError::usage("--progress= needs a file path"));
            }
            target = Some(ProgressTarget::File(path.to_string()));
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, target))
}

/// Splits argv into options and positionals.
pub fn split(argv: &[String]) -> Result<ParsedArgs, CliError> {
    let mut out = ParsedArgs::default();
    let mut i = 0;
    while i < argv.len() {
        if let Some(key) = argv[i].strip_prefix("--") {
            let value = argv
                .get(i + 1)
                .ok_or_else(|| CliError::usage(format!("--{key} needs a value")))?;
            out.options.insert(key.to_string(), value.clone());
            i += 2;
        } else {
            out.positionals.push(argv[i].clone());
            i += 1;
        }
    }
    Ok(out)
}

fn opt<T: std::str::FromStr>(p: &ParsedArgs, key: &str, default: T) -> Result<T, CliError> {
    match p.options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("--{key}: cannot parse '{v}'"))),
    }
}

/// Like [`opt`] but with no default: absent flags stay `None`.
fn opt_maybe<T: std::str::FromStr>(p: &ParsedArgs, key: &str) -> Result<Option<T>, CliError> {
    match p.options.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| CliError::usage(format!("--{key}: cannot parse '{v}'"))),
    }
}

/// Parses a `--grid` value: comma-separated threshold fractions.
fn parse_grid(p: &ParsedArgs) -> Result<Option<Vec<f64>>, CliError> {
    let Some(raw) = p.options.get("grid") else {
        return Ok(None);
    };
    let grid = raw
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| CliError::usage(format!("--grid: cannot parse '{s}' as a fraction")))
        })
        .collect::<Result<Vec<f64>, CliError>>()?;
    // split(',') always yields at least one element, and empty elements
    // fail the parse above, so `grid` is non-empty here.
    Ok(Some(grid))
}

/// The `--socket PATH` every job-service verb needs.
fn job_socket(p: &ParsedArgs, verb: &str) -> Result<String, CliError> {
    p.options
        .get("socket")
        .cloned()
        .ok_or_else(|| CliError::usage(format!("{verb} requires --socket PATH")))
}

/// The positional job id of `watch`/`cancel`/`resume`.
fn job_id(p: &ParsedArgs, verb: &str) -> Result<String, CliError> {
    p.positionals
        .first()
        .cloned()
        .ok_or_else(|| CliError::usage(format!("{verb} requires a job id")))
}

/// Parses a full command line (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let Some(verb) = argv.first() else {
        return Ok(Command::Help);
    };
    let rest = split(&argv[1..])?;
    match verb.as_str() {
        "timeline" => Ok(Command::Timeline {
            trials: opt(&rest, "trials", 20)?,
        }),
        "detect" => Ok(Command::Detect {
            preset: PresetName::parse(
                rest.options
                    .get("preset")
                    .ok_or_else(|| CliError::usage("detect requires --preset"))?,
            )?,
            snr_db: opt(&rest, "snr", 5.0)?,
            frames: opt(&rest, "frames", 1000)?,
            threshold: opt(&rest, "threshold", 0.35)?,
            energy_db: opt(&rest, "energy-db", 10.0)?,
            cell: opt(&rest, "cell", 1)?,
            segment: opt(&rest, "segment", 0)?,
        }),
        "fa" => Ok(Command::Fa {
            preset: PresetName::parse(
                rest.options
                    .get("preset")
                    .ok_or_else(|| CliError::usage("fa requires --preset"))?,
            )?,
            threshold: opt(&rest, "threshold", 0.40)?,
            energy_db: opt(&rest, "energy-db", 10.0)?,
            samples: opt(&rest, "samples", 20_000_000)?,
            cell: opt(&rest, "cell", 1)?,
            segment: opt(&rest, "segment", 0)?,
            grid: parse_grid(&rest)?,
        }),
        "iperf" => Ok(Command::Iperf {
            jammer: JammerName::parse(
                rest.options
                    .get("jammer")
                    .ok_or_else(|| CliError::usage("iperf requires --jammer"))?,
            )?,
            sir_db: opt(&rest, "sir", 20.0)?,
            seconds: opt(&rest, "seconds", 5.0)?,
        }),
        "classify" => {
            let path = rest
                .positionals
                .first()
                .cloned()
                .ok_or_else(|| CliError::usage("classify requires a capture path"))?;
            Ok(Command::Classify { path })
        }
        "roc" => Ok(Command::Roc {
            preset: PresetName::parse(
                rest.options
                    .get("preset")
                    .ok_or_else(|| CliError::usage("roc requires --preset"))?,
            )?,
            snr_db: opt(&rest, "snr", 0.0)?,
            frames: opt(&rest, "frames", 200)?,
            fa_samples: opt(&rest, "fa-samples", 5_000_000)?,
            cell: opt(&rest, "cell", 1)?,
            segment: opt(&rest, "segment", 0)?,
        }),
        "resources" => Ok(Command::Resources),
        "stats" => Ok(Command::Stats {
            input: rest.positionals.first().cloned(),
            budget_ns: opt_maybe(&rest, "budget-ns")?,
        }),
        "trace" => Ok(Command::Trace {
            episodes: opt(&rest, "episodes", 8)?,
            out: rest.options.get("out").cloned(),
            chrome: rest.options.get("chrome").cloned(),
            budget_ns: opt_maybe(&rest, "budget-ns")?,
            top: opt(&rest, "top", 5)?,
        }),
        "monitor" => Ok(Command::Monitor {
            jammer: JammerName::parse(
                rest.options
                    .get("jammer")
                    .ok_or_else(|| CliError::usage("monitor requires --jammer"))?,
            )?,
            sir_db: opt(&rest, "sir", 14.0)?,
            seconds: opt(&rest, "seconds", 1.0)?,
            cadence: opt(&rest, "cadence", 16)?,
            out: rest.options.get("out").cloned(),
        }),
        "report" => Ok(Command::Report {
            frames: opt(&rest, "frames", 64)?,
            top: opt(&rest, "top", 5)?,
        }),
        "submit" => {
            // `--local` is a bare flag; pull it out before the two-token
            // option split sees it.
            let mut args: Vec<String> = argv[1..].to_vec();
            let local = args.iter().any(|a| a == "--local");
            args.retain(|a| a != "--local");
            let rest = split(&args)?;
            let spec = match (rest.options.get("spec"), rest.options.get("spec-file")) {
                (Some(s), None) => s.clone(),
                (None, Some(path)) => std::fs::read_to_string(path)
                    .map_err(|e| CliError::usage(format!("--spec-file {path}: {e}")))?,
                (Some(_), Some(_)) => {
                    return Err(CliError::usage("pass --spec or --spec-file, not both"))
                }
                (None, None) => {
                    return Err(CliError::usage(
                        "submit requires --spec JSON or --spec-file FILE",
                    ))
                }
            };
            let socket = rest.options.get("socket").cloned();
            if socket.is_none() && !local {
                return Err(CliError::usage(
                    "submit requires --socket PATH (or --local)",
                ));
            }
            if socket.is_some() && local {
                return Err(CliError::usage("pass --socket or --local, not both"));
            }
            Ok(Command::Submit {
                socket,
                spec,
                local,
                export: rest.options.get("export").cloned(),
            })
        }
        "status" => Ok(Command::JobStatus {
            socket: job_socket(&rest, "status")?,
            job: rest.positionals.first().cloned(),
        }),
        "watch" => Ok(Command::Watch {
            socket: job_socket(&rest, "watch")?,
            job: job_id(&rest, "watch")?,
            export: rest.options.get("export").cloned(),
        }),
        "cancel" => Ok(Command::JobCancel {
            socket: job_socket(&rest, "cancel")?,
            job: job_id(&rest, "cancel")?,
        }),
        "resume" => Ok(Command::JobResume {
            socket: job_socket(&rest, "resume")?,
            job: job_id(&rest, "resume")?,
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError::usage(format!(
            "unknown command '{other}' (try 'help')"
        ))),
    }
}

/// Usage text.
pub const USAGE: &str = "rjamctl — reactive jamming operator console

USAGE:
  rjamctl timeline  [--trials N]
  rjamctl detect    --preset wifi-short|wifi-long|wimax|energy
                    [--snr dB] [--frames N] [--threshold f]
                    [--energy-db dB] [--cell N] [--segment N]
  rjamctl fa        --preset ... [--threshold f] [--energy-db dB] [--samples N]
                    [--grid f,f,...]
  rjamctl iperf     --jammer off|continuous|reactive-long|reactive-short
                    [--sir dB] [--seconds S]
  rjamctl roc       --preset ... [--snr dB] [--frames N] [--fa-samples N]
  rjamctl classify  <capture.cf32>
  rjamctl resources
  rjamctl stats     [snapshot.json] [--budget-ns NS]
  rjamctl trace     [--episodes N] [--out trace.json] [--chrome chrome.json]
                    [--budget-ns NS] [--top K]
  rjamctl monitor   --jammer off|continuous|reactive-long|reactive-short
                    [--sir dB] [--seconds S] [--cadence FRAMES]
                    [--out health.ndjson]
  rjamctl report    [--frames N] [--top K]
  rjamctl submit    (--socket PATH | --local) (--spec JSON | --spec-file FILE)
                    [--export FILE]
  rjamctl status    --socket PATH [JOB]
  rjamctl watch     --socket PATH JOB [--export FILE]
  rjamctl cancel    --socket PATH JOB
  rjamctl resume    --socket PATH JOB
  rjamctl help

GLOBAL OPTIONS:
  --metrics-out FILE   after any command, write a rjam-metrics-v1 JSON
                       snapshot of the observability registry to FILE
                       (inspect later with 'rjamctl stats FILE')
  --threads N          worker threads for the campaign engine (detect, fa,
                       roc, iperf); overrides RJAM_THREADS, defaults to all
                       cores. Output is bit-identical at any N
  --progress[=FILE]    stream line-delimited rjam-progress-v1 events
                       (campaign started / shard finished / snapshot with
                       ETA / campaign done) to stderr, or to FILE with the
                       = form, while campaign commands run. Requires the
                       default 'obs' build

NOTES:
  detect/roc probe against full 802.11g frames; selecting --preset wimax
  there measures cross-standard rejection (it should stay near zero).
  fa --grid sweeps a comma-separated list of threshold fractions over the
  *same* noise stream in one bitsliced lane-bank pass (one row per
  fraction); it needs a correlator preset, not energy.
  stats without a file runs a short live exercise and renders its metrics,
  including the trigger-to-TX latency histogram against the response budget
  (derived from the armed presets unless --budget-ns overrides it).
  trace captures causally-linked jam episodes: every frame gets a
  correlation ID at MAC emission and a per-stage latency decomposition;
  --out writes the rjam-trace-v1 document, --chrome writes a Perfetto /
  chrome://tracing loadable timeline with one track per pipeline stage.
  monitor attaches the online link-health monitor to one iperf-style
  scenario run: every --cadence frames the streaming detectors (EWMA
  baseline, CUSUM, Page-Hinkley, rolling quantiles) judge the windowed
  PRR, jam rate, false-alarm drift, trigger-to-TX budget and worker
  utilization, and each transition is logged as a rjam-health-v1 event
  (--out writes the NDJSON stream; validate it with check_health_json).
  The exit code is the verdict: 0 healthy, 1 alarmed.
  report runs a reference detection sweep through the campaign engine and
  renders its telemetry: per-worker busy/idle/merge-wait with utilization,
  wall-clock attribution coverage, unit latency percentiles, and the top
  straggler units with the per-unit seeds needed to re-run them.
  submit/status/watch/cancel/resume speak the rjam-job-v1 protocol to a
  resident rjamd over its Unix socket. submit sends a CampaignRequest JSON
  spec (campaigns: wifi_detection, false_alarm, wimax, jamming) and prints
  the assigned job id; invalid specs are refused before enqueue. watch
  replays then follows the job's job-tagged rjam-progress-v1 stream and,
  with --export FILE, writes the final export — byte-identical to the same
  spec run with 'submit --local'. cancel stops a job between work units,
  keeping its checkpointed shard progress; resume re-enqueues it to finish
  from the checkpoint.

EXIT CODES:
  0 success, 1 runtime failure, 2 usage error (usage shown on 2 only);
  monitor: 0 final verdict healthy, 1 alarmed, 2 usage error
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_timeline_defaults() {
        assert_eq!(
            parse(&argv("timeline")).unwrap(),
            Command::Timeline { trials: 20 }
        );
        assert_eq!(
            parse(&argv("timeline --trials 7")).unwrap(),
            Command::Timeline { trials: 7 }
        );
    }

    #[test]
    fn parses_detect() {
        let c = parse(&argv("detect --preset wifi-short --snr -3 --frames 50")).unwrap();
        match c {
            Command::Detect {
                preset,
                snr_db,
                frames,
                ..
            } => {
                assert_eq!(preset, PresetName::WifiShort);
                assert_eq!(snr_db, -3.0);
                assert_eq!(frames, 50);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn detect_requires_preset() {
        let err = parse(&argv("detect --snr 3")).unwrap_err();
        assert!(err.message().contains("--preset"), "{err}");
        assert_eq!(err.kind(), ErrorKind::Usage);
    }

    #[test]
    fn rejects_unknown_preset_and_command() {
        assert!(parse(&argv("detect --preset zigbee")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn parses_iperf_jammers() {
        for (name, want) in [
            ("off", JammerName::Off),
            ("continuous", JammerName::Continuous),
            ("reactive-long", JammerName::ReactiveLong),
            ("reactive-short", JammerName::ReactiveShort),
        ] {
            let c = parse(&argv(&format!("iperf --jammer {name} --sir 14"))).unwrap();
            match c {
                Command::Iperf { jammer, sir_db, .. } => {
                    assert_eq!(jammer, want);
                    assert_eq!(sir_db, 14.0);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn classify_takes_positional() {
        let c = parse(&argv("classify cap.cf32")).unwrap();
        assert_eq!(
            c,
            Command::Classify {
                path: "cap.cf32".into()
            }
        );
        assert!(parse(&argv("classify")).is_err());
    }

    #[test]
    fn parses_fa_grid() {
        match parse(&argv("fa --preset wifi-short")).unwrap() {
            Command::Fa { grid, .. } => assert_eq!(grid, None),
            other => panic!("{other:?}"),
        }
        match parse(&argv("fa --preset wifi-short --grid 0.22,0.34,0.50")).unwrap() {
            Command::Fa { grid, .. } => assert_eq!(grid, Some(vec![0.22, 0.34, 0.50])),
            other => panic!("{other:?}"),
        }
        // Spaces after commas survive (quoted on a real command line).
        let argv_spaced: Vec<String> = vec!["fa", "--preset", "wifi-short", "--grid", "0.2, 0.4"]
            .into_iter()
            .map(String::from)
            .collect();
        match parse(&argv_spaced).unwrap() {
            Command::Fa { grid, .. } => assert_eq!(grid, Some(vec![0.2, 0.4])),
            other => panic!("{other:?}"),
        }
        for bad in [
            "fa --preset wifi-short --grid banana",
            "fa --preset wifi-short --grid 0.2,,0.4",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Usage, "'{bad}'");
            assert!(err.message().contains("--grid"), "'{bad}' -> {err}");
        }
    }

    #[test]
    fn missing_value_reported() {
        let err = parse(&argv("detect --preset")).unwrap_err();
        assert!(err.message().contains("needs a value"), "{err}");
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn unparsable_number_reported() {
        let err = parse(&argv("iperf --jammer off --sir banana")).unwrap_err();
        assert!(err.message().contains("--sir"), "{err}");
    }

    #[test]
    fn error_kinds_map_to_exit_codes() {
        assert_eq!(CliError::usage("x").exit_code(), 2);
        assert_eq!(CliError::runtime("x").exit_code(), 1);
        assert_eq!(CliError::usage("x").kind(), ErrorKind::Usage);
        assert_eq!(CliError::runtime("x").kind(), ErrorKind::Runtime);
    }

    #[test]
    fn all_parse_errors_are_usage_errors() {
        for bad in [
            "frobnicate",
            "detect --snr 3",
            "detect --preset zigbee",
            "detect --preset",
            "iperf --jammer off --sir banana",
            "classify",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Usage, "'{bad}' -> {err}");
            assert_eq!(err.exit_code(), 2, "'{bad}'");
        }
    }

    #[test]
    fn parses_stats() {
        assert_eq!(
            parse(&argv("stats")).unwrap(),
            Command::Stats {
                input: None,
                budget_ns: None
            }
        );
        assert_eq!(
            parse(&argv("stats snap.json")).unwrap(),
            Command::Stats {
                input: Some("snap.json".into()),
                budget_ns: None
            }
        );
        assert_eq!(
            parse(&argv("stats --budget-ns 3000")).unwrap(),
            Command::Stats {
                input: None,
                budget_ns: Some(3000.0)
            }
        );
        let err = parse(&argv("stats --budget-ns fast")).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Usage);
    }

    #[test]
    fn parses_trace() {
        assert_eq!(
            parse(&argv("trace")).unwrap(),
            Command::Trace {
                episodes: 8,
                out: None,
                chrome: None,
                budget_ns: None,
                top: 5
            }
        );
        assert_eq!(
            parse(&argv(
                "trace --episodes 3 --out t.json --chrome c.json --budget-ns 2640 --top 2"
            ))
            .unwrap(),
            Command::Trace {
                episodes: 3,
                out: Some("t.json".into()),
                chrome: Some("c.json".into()),
                budget_ns: Some(2640.0),
                top: 2
            }
        );
        assert!(parse(&argv("trace --episodes many")).is_err());
    }

    #[test]
    fn threads_stripped_from_anywhere() {
        let (rest, threads) = extract_threads(&argv("detect --threads 4 --preset energy")).unwrap();
        assert_eq!(threads, Some(4));
        assert_eq!(rest, argv("detect --preset energy"));

        let (rest, threads) = extract_threads(&argv("fa --preset energy")).unwrap();
        assert_eq!(threads, None);
        assert_eq!(rest, argv("fa --preset energy"));

        for bad in ["roc --threads", "roc --threads zero", "roc --threads 0"] {
            let err = extract_threads(&argv(bad)).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Usage, "'{bad}'");
            assert!(err.message().contains("--threads"), "'{bad}' -> {err}");
        }
    }

    #[test]
    fn parses_report() {
        assert_eq!(
            parse(&argv("report")).unwrap(),
            Command::Report { frames: 64, top: 5 }
        );
        assert_eq!(
            parse(&argv("report --frames 32 --top 3")).unwrap(),
            Command::Report { frames: 32, top: 3 }
        );
        assert!(parse(&argv("report --frames many")).is_err());
    }

    #[test]
    fn progress_stripped_from_anywhere() {
        let (rest, target) = extract_progress(&argv("detect --progress --preset energy")).unwrap();
        assert_eq!(target, Some(ProgressTarget::Stderr));
        assert_eq!(rest, argv("detect --preset energy"));

        let (rest, target) =
            extract_progress(&argv("fa --progress=prog.ndjson --preset energy")).unwrap();
        assert_eq!(target, Some(ProgressTarget::File("prog.ndjson".into())));
        assert_eq!(rest, argv("fa --preset energy"));

        let (rest, target) = extract_progress(&argv("timeline")).unwrap();
        assert_eq!(target, None);
        assert_eq!(rest, argv("timeline"));

        // Bare --progress must not swallow the next argument.
        let (rest, target) = extract_progress(&argv("roc --progress --preset energy")).unwrap();
        assert_eq!(target, Some(ProgressTarget::Stderr));
        assert!(rest.contains(&"--preset".to_string()));

        let err = extract_progress(&argv("detect --progress=")).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Usage);
        assert!(err.message().contains("--progress"), "{err}");
    }

    #[test]
    fn metrics_out_stripped_from_anywhere() {
        let (rest, path) =
            extract_metrics_out(&argv("iperf --metrics-out m.json --jammer off")).unwrap();
        assert_eq!(path.as_deref(), Some("m.json"));
        assert_eq!(rest, argv("iperf --jammer off"));

        let (rest, path) = extract_metrics_out(&argv("timeline")).unwrap();
        assert_eq!(path, None);
        assert_eq!(rest, argv("timeline"));

        let err = extract_metrics_out(&argv("resources --metrics-out")).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Usage);
        assert!(err.message().contains("--metrics-out"), "{err}");
    }
}
