//! Command implementations: each returns its report as a `String` so tests
//! can assert on output without capturing stdout.

use crate::args::{CliError, Command, JammerName, PresetName};
use rjam_core::campaign::{CampaignSpec, JammerUnderTest, WifiEmission};
use rjam_core::timeline::{comparison_rows, measure, TimelineBudget};
use rjam_core::{CampaignEngine, DetectionPreset, JammerPreset, ReactiveJammer};
use rjam_daemon::{JobRequest, JobResponse};
use std::fmt::Write as _;

/// Builds the requested detection preset and validates the FPGA core
/// configuration it compiles to, so a bad operating point (zero correlation
/// threshold, energy threshold outside the detector's 3-30 dB range) is
/// rejected *before* any campaign runs — through the console's single
/// error-exit path, as a usage error.
fn preset_for(
    name: PresetName,
    threshold: f64,
    energy_db: f64,
    cell: u8,
    segment: u8,
) -> Result<DetectionPreset, CliError> {
    let p = match name {
        PresetName::WifiShort => DetectionPreset::WifiShortPreamble { threshold },
        PresetName::WifiLong => DetectionPreset::WifiLongPreamble { threshold },
        PresetName::Wimax => DetectionPreset::WimaxPreamble {
            id_cell: cell,
            segment,
            threshold,
        },
        PresetName::Energy => DetectionPreset::EnergyRise {
            threshold_db: energy_db,
        },
    };
    rjam_core::presets::build_config(&p, &JammerPreset::Monitor, 0)
        .validate()
        .map_err(|e: rjam_fpga::ConfigError| {
            CliError::usage(format!("invalid detector configuration: {e}"))
        })?;
    Ok(p)
}

/// Executes a parsed command with the environment's engine
/// (`RJAM_THREADS`, else all cores). The binary routes `--threads` through
/// [`execute_with`] instead.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    execute_with(cmd, &CampaignEngine::from_env())
}

/// Executes a parsed command on the given campaign engine, returning the
/// printable report.
pub fn execute_with(cmd: &Command, engine: &CampaignEngine) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Resources => Ok(resources_report()),
        Command::Timeline { trials } => Ok(timeline_report(*trials)),
        Command::Detect {
            preset,
            snr_db,
            frames,
            threshold,
            energy_db,
            cell,
            segment,
        } => {
            let p = preset_for(*preset, *threshold, *energy_db, *cell, *segment)?;
            let pts = CampaignSpec::wifi_detection(&p)
                .emission(WifiEmission::FullFrames { psdu_len: 100 })
                .snrs(&[*snr_db])
                .trials(*frames)
                .seed(0xC11)
                .run(engine);
            let mut out = String::new();
            let _ = writeln!(out, "detector: {p:?}");
            let _ = writeln!(
                out,
                "SNR {:.1} dB over {frames} frames: P(det) = {:.3}, {:.2} triggers/frame",
                pts[0].snr_db, pts[0].p_detect, pts[0].triggers_per_frame
            );
            Ok(out)
        }
        Command::Fa {
            preset,
            threshold,
            energy_db,
            samples,
            cell,
            segment,
            grid,
        } => {
            if let Some(grid) = grid {
                if matches!(preset, PresetName::Energy) {
                    return Err(CliError::usage(
                        "--grid sweeps correlation-threshold fractions; the energy \
                         preset's threshold is in dB (use --energy-db without --grid)",
                    ));
                }
                let max = rjam_fpga::lanes::MAX_LANES;
                if grid.len() > max {
                    return Err(CliError::usage(format!(
                        "--grid supports at most {max} fractions (one lane each), got {}",
                        grid.len()
                    )));
                }
                // Validate every grid point through the same config check a
                // single-threshold run gets.
                for f in grid {
                    preset_for(*preset, *f, *energy_db, *cell, *segment)?;
                }
                let p = preset_for(*preset, grid[0], *energy_db, *cell, *segment)?;
                let rows = CampaignSpec::false_alarm(&p)
                    .samples(*samples)
                    .seed(0xFA2)
                    .run_grid_counts(engine, grid);
                let mut out = format!(
                    "detector: {p:?}\n{} thresholds over one shared noise stream (single lane-bank pass):\n",
                    grid.len()
                );
                for (f, (triggers, processed)) in grid.iter().zip(&rows) {
                    let air_s = *processed as f64 / rjam_sdr::USRP_SAMPLE_RATE;
                    let fa = if *processed == 0 {
                        0.0
                    } else {
                        *triggers as f64 / air_s
                    };
                    let _ = writeln!(
                        out,
                        "  threshold {f:.3}: {triggers} false alarms on {processed} noise samples ({air_s:.2} s of air): {fa:.3}/s"
                    );
                }
                return Ok(out);
            }
            let p = preset_for(*preset, *threshold, *energy_db, *cell, *segment)?;
            let (triggers, processed) = CampaignSpec::false_alarm(&p)
                .samples(*samples)
                .seed(0xFA2)
                .run_counts(engine);
            let air_s = processed as f64 / rjam_sdr::USRP_SAMPLE_RATE;
            let fa = if processed == 0 {
                0.0
            } else {
                triggers as f64 / air_s
            };
            Ok(format!(
                "detector: {p:?}\n{triggers} false alarms on {processed} noise samples ({air_s:.2} s of air): {fa:.3}/s\n",
            ))
        }
        Command::Iperf {
            jammer,
            sir_db,
            seconds,
        } => {
            let jut = match jammer {
                JammerName::Off => JammerUnderTest::Off,
                JammerName::Continuous => JammerUnderTest::Continuous,
                JammerName::ReactiveLong => JammerUnderTest::ReactiveLong,
                JammerName::ReactiveShort => JammerUnderTest::ReactiveShort,
            };
            let pts = CampaignSpec::jamming(jut)
                .sirs(&[*sir_db])
                .duration_s(*seconds)
                .seed(0x1EF)
                .run(engine);
            let r = &pts[0].report;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{} at SIR {sir_db:.2} dB for {seconds} s:",
                jut.label()
            );
            let _ = writeln!(out, "  {}", r.summary());
            let _ = writeln!(
                out,
                "  mean PHY rate {:.1} Mb/s, jam duty {:.2} %, {} bursts",
                r.mean_phy_rate_mbps,
                r.jam_duty_percent(*seconds),
                r.jam_bursts
            );
            Ok(out)
        }
        Command::Monitor {
            jammer,
            sir_db,
            seconds,
            cadence,
            out,
        } => monitor_report(*jammer, *sir_db, *seconds, *cadence, out.as_deref()),
        Command::Classify { path } => classify_report(path),
        Command::Report { frames, top } => engine_report(engine, *frames, *top),
        Command::Stats { input, budget_ns } => stats_report(input.as_deref(), *budget_ns),
        Command::Trace {
            episodes,
            out,
            chrome,
            budget_ns,
            top,
        } => trace_report(
            *episodes,
            out.as_deref(),
            chrome.as_deref(),
            *budget_ns,
            *top,
        ),
        Command::Roc {
            preset,
            snr_db,
            frames,
            fa_samples,
            cell,
            segment,
        } => {
            let (name, e_db, thresholds): (PresetName, f64, Vec<f64>) = (
                *preset,
                10.0,
                (0..8).map(|k| 0.26 + 0.04 * k as f64).collect(),
            );
            let (cell, segment) = (*cell, *segment);
            // Validate once at the tightest threshold of the sweep: if the
            // lowest fraction compiles to a legal core config, every higher
            // one does too.
            let lowest = thresholds.iter().cloned().fold(f64::INFINITY, f64::min);
            preset_for(name, lowest, e_db, cell, segment)?;
            let make = move |t: f64| match name {
                PresetName::WifiShort => DetectionPreset::WifiShortPreamble { threshold: t },
                PresetName::WifiLong => DetectionPreset::WifiLongPreamble { threshold: t },
                PresetName::Wimax => DetectionPreset::WimaxPreamble {
                    id_cell: cell,
                    segment,
                    threshold: t,
                },
                PresetName::Energy => DetectionPreset::EnergyRise { threshold_db: e_db },
            };
            let pts = CampaignSpec::roc(&make)
                .emission(WifiEmission::FullFrames { psdu_len: 100 })
                .snr_db(*snr_db)
                .thresholds(&thresholds)
                .trials(*frames)
                .fa_samples(*fa_samples)
                .seed(0x20C)
                .run(engine);
            let mut out = String::new();
            let _ = writeln!(
                out,
                "ROC at SNR {snr_db:.1} dB ({frames} frames/threshold):"
            );
            let _ = writeln!(out, "{}", rjam_core::export::roc_csv(&pts).trim_end());
            Ok(out)
        }
        Command::Submit {
            socket,
            spec,
            local,
            export,
        } => submit_report(socket.as_deref(), spec, *local, export.as_deref(), engine),
        Command::JobStatus { socket, job } => status_report(socket, job.as_deref()),
        Command::Watch {
            socket,
            job,
            export,
        } => watch_report(socket, job, export.as_deref()),
        Command::JobCancel { socket, job } => cancel_report(socket, job),
        Command::JobResume { socket, job } => resume_report(socket, job),
    }
}

fn resources_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "custom reactive-jamming core, per block:");
    for (name, r) in rjam_fpga::resources::block_table() {
        let _ = writeln!(out, "  {name:<40} {r}");
    }
    let total = rjam_fpga::resources::core_total();
    let budget = rjam_fpga::resources::custom_logic_budget();
    let _ = writeln!(out, "  {:<40} {total}", "TOTAL");
    let _ = writeln!(
        out,
        "fits the Spartan-3A DSP 3400's free fabric: {} (worst axis {:.0} % used)",
        total.fits_in(budget),
        total.worst_utilization_pct(budget)
    );
    out
}

/// Drives one noisy WiFi frame through a freshly armed reactive jammer.
/// Returns the jammer (with its event logs populated) and the lead-in
/// length in samples.
fn jam_episode(det: DetectionPreset, seed: u64) -> (ReactiveJammer, usize) {
    use rjam_fpga::JamWaveform;
    use rjam_sdr::complex::Cf64;
    use rjam_sdr::rng::Rng;

    let mut j = ReactiveJammer::new(
        det,
        JammerPreset::Reactive {
            uptime_s: 10e-6,
            waveform: JamWaveform::Wgn,
        },
    );
    let mut rng = Rng::seed_from(seed);
    let mut psdu = vec![0u8; 80];
    rng.fill_bytes(&mut psdu);
    let frame = rjam_phy80211::tx::Frame::new(rjam_phy80211::Rate::R12, psdu);
    let native = rjam_phy80211::tx::modulate_frame(&frame);
    let mut wave = rjam_sdr::resample::to_usrp_rate(&native, rjam_sdr::WIFI_SAMPLE_RATE);
    rjam_sdr::power::scale_to_power(&mut wave, 0.02);
    let noise_p = 0.02 / rjam_sdr::power::db_to_lin(20.0);
    let mut noise = rjam_channel::NoiseSource::new(noise_p, rng.fork());
    let lead = 400usize;
    let mut stream: Vec<Cf64> = noise.block(lead);
    stream.extend(wave.iter().map(|&s| s + noise.next_sample()));
    stream.extend(noise.block(200));
    j.process_block(&stream);
    (j, lead)
}

fn timeline_report(trials: usize) -> String {
    let mut worst = rjam_core::timeline::MeasuredTimeline::default();
    let mut merge = |m: rjam_core::timeline::MeasuredTimeline| {
        let max = |a: Option<f64>, b: Option<f64>| match (a, b) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (x, None) => x,
            (None, y) => y,
        };
        worst.t_en_det_ns = max(worst.t_en_det_ns, m.t_en_det_ns);
        worst.t_xcorr_det_ns = max(worst.t_xcorr_det_ns, m.t_xcorr_det_ns);
        worst.t_init_ns = max(worst.t_init_ns, m.t_init_ns);
        worst.t_resp_ns = max(worst.t_resp_ns, m.t_resp_ns);
    };
    for k in 0..trials as u64 {
        for det in [
            DetectionPreset::EnergyRise { threshold_db: 10.0 },
            DetectionPreset::WifiShortPreamble { threshold: 0.35 },
        ] {
            let (mut j, lead) = jam_episode(det, 500 + k);
            merge(measure(j.events(), j.jam_events(), lead as u64));
            // Publish the episode's counters/latencies so a trailing
            // --metrics-out snapshot reflects the run.
            j.core_mut().flush_obs();
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>14}",
        "metric", "budget (ns)", "measured (ns)"
    );
    for (name, budget, meas) in comparison_rows(&TimelineBudget::paper(), &worst) {
        match meas {
            Some(m) => {
                let _ = writeln!(out, "{name:<14} {budget:>12.0} {m:>14.0}");
            }
            None => {
                let _ = writeln!(out, "{name:<14} {budget:>12.0} {:>14}", "-");
            }
        }
    }
    out
}

fn classify_report(path: &str) -> Result<String, CliError> {
    let capture = rjam_sdr::io::read_cf32(std::path::Path::new(path))
        .map_err(|e| CliError::runtime(format!("cannot read '{path}': {e}")))?;
    if capture.is_empty() {
        return Err(CliError::runtime(format!("'{path}' holds no samples")));
    }
    let cells: Vec<(u8, u8)> = (0..32)
        .flat_map(|id| (0..3).map(move |s| (id, s)))
        .collect();
    let window = capture.len().min(30_000);
    let cls = rjam_core::autonomous::classify_capture(&capture[..window], &cells);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} samples ({:.2} ms at 25 MSPS), classified over the first {window}:",
        capture.len(),
        capture.len() as f64 / 25_000.0
    );
    let _ = writeln!(out, "  class: {:?}", cls.class);
    let _ = writeln!(
        out,
        "  evidence: wifi {:.2}, best wimax {:.2}",
        cls.wifi_score, cls.wimax_score
    );
    Ok(out)
}

/// The detection presets the live `stats` / `trace` exercises arm: both
/// detector paths (energy rise and the WiFi short-preamble correlator).
fn exercised_presets() -> [DetectionPreset; 2] {
    [
        DetectionPreset::EnergyRise { threshold_db: 10.0 },
        DetectionPreset::WifiShortPreamble { threshold: 0.35 },
    ]
}

/// The response budget to judge against: the operator's `--budget-ns` when
/// given, otherwise derived from the armed presets (the slowest applicable
/// path bounds the exercise). Returns the value and how it was obtained.
fn resolve_budget(budget_ns: Option<f64>) -> (f64, &'static str) {
    match budget_ns {
        Some(ns) => (ns, "operator"),
        None => (
            exercised_presets()
                .iter()
                .map(DetectionPreset::response_budget_ns)
                .fold(0.0, f64::max),
            "paper",
        ),
    }
}

/// Appends the Fig.-5 budget verdict for the trigger-to-TX histogram to a
/// rendered snapshot.
fn append_budget_line(out: &mut String, snap: &rjam_obs::MetricsSnapshot, budget: Option<f64>) {
    let (budget_ns, source) = resolve_budget(budget);
    let label = match source {
        "operator" => format!("the operator's {budget_ns:.0} ns response budget (--budget-ns)"),
        _ => format!("the paper's {budget_ns:.0} ns xcorr response budget"),
    };
    match snap.histogram("fpga.trigger_to_tx_ns") {
        Some(h) if h.count > 0 => {
            let verdict = if (h.p99 as f64) <= budget_ns {
                "within"
            } else {
                "OVER"
            };
            let _ = writeln!(out, "trigger-to-TX p99 = {} ns — {verdict} {label}", h.p99);
        }
        _ => {
            let _ = writeln!(
                out,
                "trigger-to-TX histogram empty (budget {budget_ns:.0} ns not exercised)"
            );
        }
    }
}

/// `rjamctl stats`: with a path, load and render a saved `rjam-metrics-v1`
/// snapshot; without one, run a short live exercise (a handful of jam
/// episodes through both detector paths) and render the resulting registry.
fn stats_report(input: Option<&str>, budget_ns: Option<f64>) -> Result<String, CliError> {
    let snap = match input {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::runtime(format!("cannot read '{path}': {e}")))?;
            rjam_obs::MetricsSnapshot::from_json(&text).map_err(|e| {
                CliError::runtime(format!("'{path}' is not a metrics snapshot: {e}"))
            })?
        }
        None => {
            // Live exercise: both detection paths, a few episodes each.
            for k in 0..4u64 {
                for det in exercised_presets() {
                    let (mut j, lead) = jam_episode(det, 900 + k);
                    let m = measure(j.events(), j.jam_events(), lead as u64);
                    if let Some(ns) = m.t_resp_ns {
                        rjam_obs::registry::histogram("timeline.t_resp_ns").record(ns as u64);
                    }
                    j.core_mut().flush_obs();
                }
            }
            rjam_obs::registry::snapshot()
        }
    };
    let mut out = String::new();
    if !rjam_obs::enabled() && input.is_none() {
        let _ = writeln!(
            out,
            "observability disabled at compile time (rebuild with the 'obs' feature)"
        );
    }
    out.push_str(&snap.render());
    append_budget_line(&mut out, &snap, budget_ns);
    Ok(out)
}

/// `rjamctl trace`: capture traced jam episodes, export the requested
/// documents and render the per-frame causal attribution.
fn trace_report(
    episodes: usize,
    out_path: Option<&str>,
    chrome_path: Option<&str>,
    budget_ns: Option<f64>,
    top: usize,
) -> Result<String, CliError> {
    use rjam_obs::trace::{stage, Outcome};

    if episodes == 0 {
        return Err(CliError::usage("trace needs at least one episode"));
    }
    let (reports, doc) = rjam_core::trace::default_traced_capture(episodes, 0x7AC3);
    if let Some(path) = out_path {
        std::fs::write(path, doc.to_json())
            .map_err(|e| CliError::runtime(format!("cannot write trace to '{path}': {e}")))?;
    }
    if let Some(path) = chrome_path {
        std::fs::write(path, doc.to_chrome_json()).map_err(|e| {
            CliError::runtime(format!("cannot write chrome trace to '{path}': {e}"))
        })?;
    }

    let (budget, _) = resolve_budget(budget_ns);
    let mut out = String::new();
    if !rjam_obs::enabled() {
        let _ = writeln!(
            out,
            "observability disabled at compile time — episodes ran, but no events \
             were recorded (rebuild with the 'obs' feature)"
        );
    }
    let count = |o: Outcome| reports.iter().filter(|r| r.outcome == o).count();
    let _ = writeln!(
        out,
        "traced {episodes} episodes: {} jammed, {} missed, {} delivered — {} events \
         ({} dropped)",
        count(Outcome::Jammed),
        count(Outcome::Missed),
        count(Outcome::Delivered),
        doc.events.len(),
        doc.dropped
    );

    // Per-frame causal rows, slowest first by response latency.
    let frames = doc.frames();
    let mut rows: Vec<_> = frames
        .iter()
        .map(|ft| {
            let delay = ft.span(stage::FPGA, "delay").map_or(0, |(a, b)| b - a);
            let init = ft.span(stage::FPGA, "tx_init").map_or(0, |(a, b)| b - a);
            (
                ft.frame,
                ft.outcome(),
                ft.response_ns(),
                ft.trigger_to_tx_ns(),
                delay,
                init,
            )
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.2));

    if !rows.is_empty() {
        let _ = writeln!(
            out,
            "\n== top {} slowest frames (budget {budget:.0} ns) ==",
            top.min(rows.len())
        );
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>11} {:>13} {:>10} {:>11}  verdict",
            "frame", "outcome", "t_resp(ns)", "trig->tx(ns)", "delay(ns)", "tx_init(ns)"
        );
        for (fid, outcome, resp, t2t, delay, init) in rows.iter().take(top) {
            let verdict = match resp {
                Some(r) if (*r as f64) <= budget => "within",
                Some(_) => "OVER",
                None => "-",
            };
            let opt = |v: &Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
            let _ = writeln!(
                out,
                "{:>6} {:>10} {:>11} {:>13} {:>10} {:>11}  {verdict}",
                fid.raw(),
                outcome.map_or("?", Outcome::as_str),
                opt(resp),
                opt(t2t),
                delay,
                init
            );
        }
    }

    // Per-stage attribution: total closed-span time per pipeline stage
    // across the capture, so a budget regression names its stage.
    let mut stage_totals: Vec<(String, u64)> = Vec::new();
    for ft in &frames {
        for (s, d) in ft.stage_durations() {
            match stage_totals.iter_mut().find(|(n, _)| *n == s) {
                Some((_, t)) => *t += d,
                None => stage_totals.push((s, d)),
            }
        }
    }
    if !stage_totals.is_empty() {
        let _ = writeln!(
            out,
            "\n== per-stage attribution (closed spans, all frames) =="
        );
        for (s, total) in &stage_totals {
            let _ = writeln!(out, "  {s:<8} {total:>12} ns");
        }
    }

    // The causal-chain verdict the Fig. 5 claim rests on.
    let full_chains = frames.iter().filter(|f| f.has_full_chain()).count();
    let _ = writeln!(
        out,
        "\nfull causal chains (emit → fire → trigger → jam TX → outcome): \
         {full_chains}/{}",
        frames.len().max(reports.len())
    );
    if let Some(path) = out_path {
        let _ = writeln!(out, "wrote rjam-trace-v1 document to {path}");
    }
    if let Some(path) = chrome_path {
        let _ = writeln!(
            out,
            "wrote Chrome trace-event JSON to {path} (load in Perfetto)"
        );
    }
    Ok(out)
}

/// `rjamctl report`: runs the reference WiFi short-preamble detection
/// sweep through the campaign engine, then renders the engine profile the
/// telemetry layer published for it — per-worker utilization, unit-latency
/// percentiles, and the top-K stragglers with their reproduction seeds.
fn engine_report(engine: &CampaignEngine, frames: usize, top: usize) -> Result<String, CliError> {
    if frames == 0 {
        return Err(CliError::usage("report needs --frames >= 1"));
    }
    if !rjam_obs::enabled() {
        return Err(CliError::runtime(
            "engine telemetry is compiled out (obs feature disabled); \
             rebuild with default features to use `rjamctl report`",
        ));
    }
    let p = preset_for(PresetName::WifiShort, 0.35, 10.0, 1, 0)?;
    let pts = CampaignSpec::wifi_detection(&p)
        .emission(WifiEmission::FullFrames { psdu_len: 100 })
        .snr_range(-9.0, 12.0, 3.0)
        .trials(frames)
        .seed(0x4E90)
        .run(engine);
    let profile = rjam_obs::telemetry::profile_for("wifi_detection").ok_or_else(|| {
        CliError::runtime("the campaign finished but published no engine profile")
    })?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "reference sweep: wifi-short @ 0.35, {} SNR points x {frames} frames, {} worker thread(s)",
        pts.len(),
        engine.threads()
    );
    out.push_str(&profile.render(top));
    let kinds = rjam_obs::telemetry::kind_summaries();
    if !kinds.is_empty() {
        let _ = writeln!(out, "\n== unit kinds seen this process ==");
        for (kind, s) in kinds {
            let _ = writeln!(
                out,
                "{kind:<16} n={:<6} p50={:>10} p95={:>10} max={:>10}",
                s.count,
                rjam_obs::telemetry::fmt_ns(s.p50),
                rjam_obs::telemetry::fmt_ns(s.p95),
                rjam_obs::telemetry::fmt_ns(s.max),
            );
        }
    }
    Ok(out)
}

/// Runs one iperf-style scenario with the online health monitor attached
/// and renders the rule table, the alarm log and the final verdict. When
/// the run ends unhealthy the report comes back as [`CliError::alarm`],
/// so the process exits 1 while still printing the full report — the exit
/// code *is* the verdict (healthy=0, alarmed=1, usage=2).
fn monitor_report(
    jammer: JammerName,
    sir_db: f64,
    seconds: f64,
    cadence: u64,
    out: Option<&str>,
) -> Result<String, CliError> {
    use rjam_obs::health::HealthEvent;
    if cadence == 0 {
        return Err(CliError::usage("--cadence must be at least 1"));
    }
    if seconds <= 0.0 || seconds.is_nan() {
        return Err(CliError::usage("--seconds must be positive"));
    }
    if !rjam_obs::enabled() {
        return Err(CliError::runtime(
            "health monitoring is compiled out (obs feature disabled); \
             rebuild with default features to use `rjamctl monitor`",
        ));
    }
    let jut = match jammer {
        JammerName::Off => JammerUnderTest::Off,
        JammerName::Continuous => JammerUnderTest::Continuous,
        JammerName::ReactiveLong => JammerUnderTest::ReactiveLong,
        JammerName::ReactiveShort => JammerUnderTest::ReactiveShort,
    };
    let sink_installed = match out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::runtime(format!("--out {path}: {e}")))?;
            rjam_obs::health::install(Box::new(file));
            true
        }
        None => false,
    };
    let sc = rjam_core::campaign::scenario_for(jut, sir_db, seconds, 0x6EA17);
    let mut mon = rjam_obs::HealthMonitor::new(rjam_obs::HealthConfig::with_cadence(cadence));
    let report = rjam_mac::ScenarioRun::new(&sc).health(&mut mon).run();
    // One end-of-run registry poll so the counter/histogram rules see the
    // scenario's flushed `mac.*` / `fpga.*` deltas too.
    mon.poll_registry();
    let verdict = mon.finish();
    if sink_installed {
        rjam_obs::health::uninstall();
    }

    let mut buf = String::new();
    let _ = writeln!(
        buf,
        "{} at SIR {sir_db:.2} dB for {seconds} s, cadence {cadence} frames:",
        jut.label()
    );
    let _ = writeln!(buf, "  {}", report.summary());
    buf.push('\n');
    buf.push_str(&mon.rule_table());
    let _ = writeln!(buf, "\nalarm log:");
    let mut transitions = 0u32;
    for ev in mon.events() {
        match ev {
            HealthEvent::AlarmRaised {
                rule,
                metric,
                detector,
                stat,
                threshold,
                frame,
                frames,
            } => {
                transitions += 1;
                let _ = write!(
                    buf,
                    "  frame {frame:>6}  ALARM  {rule} ({metric}: {detector} stat {stat:.3} >= {threshold:.3})"
                );
                if !frames.is_empty() {
                    let ids: Vec<String> = frames.iter().map(|f| format!("0x{f:x}")).collect();
                    let _ = write!(buf, " frames [{}]", ids.join(" "));
                }
                buf.push('\n');
            }
            HealthEvent::AlarmCleared {
                rule,
                metric,
                frame,
            } => {
                transitions += 1;
                let _ = writeln!(buf, "  frame {frame:>6}  clear  {rule} ({metric})");
            }
            _ => {}
        }
    }
    if transitions == 0 {
        let _ = writeln!(buf, "  (no transitions)");
    }
    let _ = writeln!(
        buf,
        "\nlink health: {} ({} alarm(s) raised, {} active over {} frames)",
        if verdict.healthy {
            "HEALTHY"
        } else {
            "ALARMED"
        },
        verdict.alarms_raised,
        verdict.alarms_active,
        verdict.frames
    );
    if verdict.healthy {
        Ok(buf)
    } else {
        Err(CliError::alarm(buf))
    }
}

/// Writes a `rjam-metrics-v1` snapshot of the process-wide registry to
/// `path` (the `--metrics-out` half of the observability loop).
pub fn write_metrics_snapshot(path: &str) -> Result<(), CliError> {
    let snap = rjam_obs::registry::snapshot();
    std::fs::write(path, snap.to_json())
        .map_err(|e| CliError::runtime(format!("cannot write metrics to '{path}': {e}")))
}

// ---- rjam-job-v1 client (submit / status / watch / cancel / resume) ----

/// One request/response exchange with a running `rjamd`. The connection
/// is dropped after the first response line; `watch` keeps its own.
fn job_roundtrip(socket: &str, request: &JobRequest) -> Result<JobResponse, CliError> {
    use std::io::{BufRead, BufReader, Write as _};
    let mut stream = std::os::unix::net::UnixStream::connect(socket)
        .map_err(|e| CliError::runtime(format!("cannot reach rjamd at '{socket}': {e}")))?;
    writeln!(stream, "{}", request.to_line())
        .map_err(|e| CliError::runtime(format!("rjamd at '{socket}': {e}")))?;
    let mut line = String::new();
    BufReader::new(&stream)
        .read_line(&mut line)
        .map_err(|e| CliError::runtime(format!("rjamd at '{socket}': {e}")))?;
    if line.trim().is_empty() {
        return Err(CliError::runtime(format!(
            "rjamd at '{socket}' closed the connection without replying"
        )));
    }
    JobResponse::from_line(line.trim_end())
        .map_err(|e| CliError::runtime(format!("bad rjamd response: {e}")))
}

/// Lifts a protocol-level refusal into the console's runtime error path.
fn job_refused(resp: JobResponse) -> CliError {
    match resp {
        JobResponse::Error(e) => CliError::runtime(format!("rjamd refused: {e}")),
        other => CliError::runtime(format!("unexpected rjamd response: {other:?}")),
    }
}

fn submit_report(
    socket: Option<&str>,
    spec_text: &str,
    local: bool,
    export_path: Option<&str>,
    engine: &CampaignEngine,
) -> Result<String, CliError> {
    // Parse + validate in the client either way: a bad spec is a usage
    // error here, before any daemon (or engine) sees it.
    let spec = rjam_core::spec::CampaignRequest::from_json(spec_text)
        .map_err(|e| CliError::usage(format!("--spec: {e}")))?;
    if local {
        let export = spec
            .run_to_export(engine, &mut rjam_core::spec::JobCheckpoint::new(), None)
            .expect("uncancelled local run completes");
        return match export_path {
            Some(path) => {
                std::fs::write(path, &export)
                    .map_err(|e| CliError::runtime(format!("--export {path}: {e}")))?;
                Ok(format!(
                    "{} ({} units) exported to {path}\n",
                    spec.kind(),
                    spec.n_units()
                ))
            }
            None => Ok(export),
        };
    }
    let socket = socket.expect("parser guarantees a socket in daemon mode");
    match job_roundtrip(socket, &JobRequest::Submit { spec })? {
        JobResponse::Accepted { job, queue_depth } => {
            Ok(format!("{job} accepted (queue depth {queue_depth})\n"))
        }
        other => Err(job_refused(other)),
    }
}

fn status_report(socket: &str, job: Option<&str>) -> Result<String, CliError> {
    let req = JobRequest::Status {
        job: job.map(str::to_string),
    };
    match job_roundtrip(socket, &req)? {
        JobResponse::Status { jobs } => {
            if jobs.is_empty() {
                return Ok("no jobs\n".to_string());
            }
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{:<10} {:<15} {:<10} {:>6}",
                "JOB", "KIND", "STATE", "UNITS"
            );
            for s in jobs {
                let _ = writeln!(
                    out,
                    "{:<10} {:<15} {:<10} {:>3}/{}",
                    s.job,
                    s.kind,
                    s.state.name(),
                    s.units_done,
                    s.units_total
                );
            }
            Ok(out)
        }
        other => Err(job_refused(other)),
    }
}

/// Follows a job's stream: progress lines go to stdout as they arrive;
/// the terminal `job_done` export goes to `--export FILE` when given.
fn watch_report(socket: &str, job: &str, export_path: Option<&str>) -> Result<String, CliError> {
    use std::io::{BufRead, BufReader, Write as _};
    let mut stream = std::os::unix::net::UnixStream::connect(socket)
        .map_err(|e| CliError::runtime(format!("cannot reach rjamd at '{socket}': {e}")))?;
    let req = JobRequest::Watch {
        job: job.to_string(),
    };
    writeln!(stream, "{}", req.to_line())
        .map_err(|e| CliError::runtime(format!("rjamd at '{socket}': {e}")))?;
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| CliError::runtime(format!("rjamd at '{socket}': {e}")))?,
    );
    let mut out = String::new();
    for line in reader.lines() {
        let line = line.map_err(|e| CliError::runtime(format!("rjamd at '{socket}': {e}")))?;
        match JobResponse::from_line(&line) {
            Ok(JobResponse::Done { job, export }) => {
                if let Some(path) = export_path {
                    std::fs::write(path, &export)
                        .map_err(|e| CliError::runtime(format!("--export {path}: {e}")))?;
                    let _ = writeln!(out, "{job} done, export written to {path}");
                } else {
                    let _ = writeln!(out, "{job} done ({} export bytes)", export.len());
                }
                return Ok(out);
            }
            Ok(JobResponse::Cancelled { job, units_done }) => {
                let _ = writeln!(out, "{job} cancelled ({units_done} units checkpointed)");
                return Ok(out);
            }
            Ok(JobResponse::Error(e)) => return Err(CliError::runtime(format!("rjamd: {e}"))),
            Ok(JobResponse::Metrics { .. }) => {}
            Ok(other) => return Err(job_refused(other)),
            // Not a job-v1 line: a job-tagged rjam-progress-v1 event.
            Err(_) => {
                println!("{line}");
            }
        }
    }
    Err(CliError::runtime(format!(
        "rjamd at '{socket}' hung up before {job} finished"
    )))
}

fn cancel_report(socket: &str, job: &str) -> Result<String, CliError> {
    let req = JobRequest::Cancel {
        job: job.to_string(),
    };
    match job_roundtrip(socket, &req)? {
        JobResponse::Cancelled { job, units_done } => Ok(format!(
            "{job} cancelled ({units_done} units checkpointed)\n"
        )),
        other => Err(job_refused(other)),
    }
}

fn resume_report(socket: &str, job: &str) -> Result<String, CliError> {
    let req = JobRequest::Resume {
        job: job.to_string(),
    };
    match job_roundtrip(socket, &req)? {
        JobResponse::Accepted { job, queue_depth } => {
            Ok(format!("{job} resumed (queue depth {queue_depth})\n"))
        }
        other => Err(job_refused(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_prints_usage() {
        let out = execute(&parse(&argv("help")).unwrap()).unwrap();
        assert!(out.contains("rjamctl"));
        assert!(out.contains("iperf"));
    }

    #[test]
    fn resources_report_totals() {
        let out = execute(&Command::Resources).unwrap();
        assert!(out.contains("TOTAL"));
        assert!(out.contains("fits the Spartan-3A DSP 3400's free fabric: true"));
    }

    #[test]
    fn timeline_within_budget() {
        let out = execute(&Command::Timeline { trials: 3 }).unwrap();
        assert!(out.contains("T_init"));
        // Every measured column is populated.
        assert!(!out.contains(" -\n"), "{out}");
    }

    #[test]
    fn detect_command_reports_probability() {
        let out =
            execute(&parse(&argv("detect --preset wifi-short --snr 10 --frames 25")).unwrap())
                .unwrap();
        assert!(out.contains("P(det)"), "{out}");
    }

    #[test]
    fn monitor_rejects_zero_cadence_as_usage() {
        let err = execute(&parse(&argv("monitor --jammer off --cadence 0")).unwrap()).unwrap_err();
        assert_eq!(err.kind(), crate::args::ErrorKind::Usage, "{err}");
        assert_eq!(err.exit_code(), 2);
        assert!(err.message().contains("--cadence"), "{err}");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn monitor_clean_run_reports_healthy() {
        let out = execute(&parse(&argv("monitor --jammer off --seconds 0.5")).unwrap()).unwrap();
        assert!(out.contains("link health: HEALTHY"), "{out}");
        assert!(out.contains("prr_collapse"), "{out}");
        assert!(out.contains("(no transitions)"), "{out}");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn monitor_jammed_run_is_an_alarm_verdict() {
        let err =
            execute(&parse(&argv("monitor --jammer reactive-long --sir 1 --seconds 1")).unwrap())
                .unwrap_err();
        assert_eq!(err.kind(), crate::args::ErrorKind::Alarm, "{err}");
        assert_eq!(err.exit_code(), 1);
        // The message is the complete report, alarm log included.
        assert!(err.message().contains("link health: ALARMED"), "{err}");
        assert!(err.message().contains("prr_collapse"), "{err}");
    }

    #[test]
    fn invalid_operating_points_are_usage_errors() {
        // Energy threshold outside the detector's 3-30 dB range: the core
        // config validator rejects it before any campaign runs.
        let err =
            execute(&parse(&argv("detect --preset energy --energy-db 45")).unwrap()).unwrap_err();
        assert_eq!(err.kind(), crate::args::ErrorKind::Usage, "{err}");
        assert!(
            err.message().contains("invalid detector configuration"),
            "{err}"
        );
        // Zero correlation threshold compiles to a trigger-on-everything
        // core; equally rejected.
        let err =
            execute(&parse(&argv("fa --preset wifi-long --threshold 0 --samples 1000")).unwrap())
                .unwrap_err();
        assert_eq!(err.kind(), crate::args::ErrorKind::Usage, "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn fa_grid_reports_one_row_per_fraction_and_matches_single_runs() {
        let grid_out = execute(
            &parse(&argv(
                "fa --preset wifi-short --grid 0.22,0.50 --samples 300000",
            ))
            .unwrap(),
        )
        .unwrap();
        assert!(grid_out.contains("threshold 0.220:"), "{grid_out}");
        assert!(grid_out.contains("threshold 0.500:"), "{grid_out}");
        // Every grid row carries the same counts a dedicated single-threshold
        // run reports for that fraction.
        for frac in ["0.22", "0.50"] {
            let single = execute(
                &parse(&argv(&format!(
                    "fa --preset wifi-short --threshold {frac} --samples 300000"
                )))
                .unwrap(),
            )
            .unwrap();
            let counts = single
                .lines()
                .find(|l| l.contains("false alarms"))
                .unwrap()
                .to_string();
            assert!(grid_out.contains(counts.trim()), "{frac}: {grid_out}");
        }
    }

    #[test]
    fn fa_grid_rejects_energy_preset_and_oversized_grids() {
        let err = execute(&parse(&argv("fa --preset energy --grid 0.2,0.4")).unwrap()).unwrap_err();
        assert_eq!(err.kind(), crate::args::ErrorKind::Usage, "{err}");
        assert!(err.message().contains("--energy-db"), "{err}");

        let grid: Vec<String> = (0..65).map(|k| format!("0.{:02}", k + 10)).collect();
        let cmd = format!("fa --preset wifi-short --grid {}", grid.join(","));
        let err = execute(&parse(&argv(&cmd)).unwrap()).unwrap_err();
        assert_eq!(err.kind(), crate::args::ErrorKind::Usage, "{err}");
        assert!(err.message().contains("at most"), "{err}");

        // A zero fraction anywhere in the grid hits the same config check a
        // single-threshold run gets.
        let err =
            execute(&parse(&argv("fa --preset wifi-short --grid 0.4,0")).unwrap()).unwrap_err();
        assert!(
            err.message().contains("invalid detector configuration"),
            "{err}"
        );
    }

    #[test]
    fn detect_output_is_thread_count_invariant() {
        let cmd = parse(&argv("detect --preset wifi-short --snr 5 --frames 20")).unwrap();
        let serial = execute_with(&cmd, &CampaignEngine::serial()).unwrap();
        let sharded = execute_with(&cmd, &CampaignEngine::with_threads(4)).unwrap();
        assert_eq!(serial, sharded);
    }

    #[test]
    fn threads_flag_reaches_the_engine() {
        // Through the full run() path: --threads parses, is stripped, and
        // the command output matches the serial engine byte for byte.
        let with_flag = crate::run(&argv(
            "detect --preset energy --snr 8 --frames 10 --threads 3",
        ))
        .unwrap();
        let serial = execute_with(
            &parse(&argv("detect --preset energy --snr 8 --frames 10")).unwrap(),
            &CampaignEngine::serial(),
        )
        .unwrap();
        assert_eq!(with_flag, serial);
    }

    #[test]
    fn iperf_command_reports_bandwidth() {
        let out =
            execute(&parse(&argv("iperf --jammer reactive-long --sir 14 --seconds 1")).unwrap())
                .unwrap();
        assert!(out.contains("kbps"), "{out}");
        assert!(out.contains("duty"), "{out}");
    }

    #[test]
    fn classify_roundtrip_through_file() {
        // Write a WiFi capture, classify it back through the CLI path.
        let mut rng = rjam_sdr::rng::Rng::seed_from(77);
        let mut psdu = vec![0u8; 100];
        rng.fill_bytes(&mut psdu);
        let frame = rjam_phy80211::tx::Frame::new(rjam_phy80211::Rate::R12, psdu);
        let native = rjam_phy80211::tx::modulate_frame(&frame);
        let mut wave = rjam_sdr::resample::to_usrp_rate(&native, rjam_sdr::WIFI_SAMPLE_RATE);
        rjam_sdr::power::scale_to_power(&mut wave, 0.02);
        let mut path = std::env::temp_dir();
        path.push(format!("rjamctl_test_{}.cf32", std::process::id()));
        rjam_sdr::io::write_cf32(&path, &wave).unwrap();
        let out = execute(&Command::Classify {
            path: path.to_string_lossy().into(),
        })
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("class: Wifi"), "{out}");
    }

    #[test]
    fn roc_command_outputs_csv() {
        let out = execute(
            &parse(&argv(
                "roc --preset wifi-short --snr 3 --frames 10 --fa-samples 200000",
            ))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("threshold,fa_per_s,p_detect"), "{out}");
        assert!(out.lines().count() >= 9, "{out}");
    }

    #[test]
    fn classify_missing_file_errors() {
        let err = execute(&Command::Classify {
            path: "/nonexistent/x.cf32".into(),
        })
        .unwrap_err();
        assert!(err.message().contains("cannot read"));
        assert_eq!(err.kind(), crate::args::ErrorKind::Runtime);
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn stats_live_exercise_renders_registry() {
        let out = execute(&Command::Stats {
            input: None,
            budget_ns: None,
        })
        .unwrap();
        assert!(out.contains("== counters =="), "{out}");
        assert!(out.contains("== histograms =="), "{out}");
        if rjam_obs::enabled() {
            // The live exercise must surface the FPGA pipeline counters and
            // a trigger-to-TX latency inside the paper budget.
            assert!(out.contains("fpga.samples_in"), "{out}");
            assert!(
                out.contains("within the paper's 2640 ns xcorr response budget"),
                "{out}"
            );
        } else {
            assert!(out.contains("observability disabled"), "{out}");
        }
    }

    #[test]
    fn stats_roundtrips_through_metrics_out_file() {
        let mut path = std::env::temp_dir();
        path.push(format!("rjamctl_metrics_{}.json", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        // Run an exercise so the registry holds something, then snapshot.
        execute(&Command::Stats {
            input: None,
            budget_ns: None,
        })
        .unwrap();
        write_metrics_snapshot(&path_s).unwrap();
        let out = execute(&Command::Stats {
            input: Some(path_s.clone()),
            budget_ns: None,
        })
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("== counters =="), "{out}");
        if rjam_obs::enabled() {
            assert!(out.contains("fpga.samples_in"), "{out}");
        }
    }

    #[test]
    fn stats_rejects_garbage_snapshot() {
        let mut path = std::env::temp_dir();
        path.push(format!("rjamctl_garbage_{}.json", std::process::id()));
        std::fs::write(&path, "{\"schema\":\"wrong\"}").unwrap();
        let err = execute(&Command::Stats {
            input: Some(path.to_string_lossy().into()),
            budget_ns: None,
        })
        .unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), crate::args::ErrorKind::Runtime);
        assert!(err.message().contains("not a metrics snapshot"), "{err}");
    }

    #[test]
    fn stats_operator_budget_overrides_default() {
        let out = execute(&Command::Stats {
            input: None,
            budget_ns: Some(5000.0),
        })
        .unwrap();
        if rjam_obs::enabled() {
            assert!(
                out.contains("5000 ns response budget (--budget-ns)"),
                "{out}"
            );
        }
    }

    #[test]
    fn trace_zero_episodes_is_usage_error() {
        let err = execute(&Command::Trace {
            episodes: 0,
            out: None,
            chrome: None,
            budget_ns: None,
            top: 5,
        })
        .unwrap_err();
        assert_eq!(err.kind(), crate::args::ErrorKind::Usage);
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn trace_report_renders_attribution_and_chain() {
        let out = execute(&Command::Trace {
            episodes: 4,
            out: None,
            chrome: None,
            budget_ns: None,
            top: 3,
        })
        .unwrap();
        if rjam_obs::enabled() {
            assert!(out.contains("traced 4 episodes:"), "{out}");
            assert!(out.contains("slowest frames"), "{out}");
            assert!(out.contains("== per-stage attribution"), "{out}");
            assert!(out.contains("full causal chains"), "{out}");
        } else {
            assert!(out.contains("observability disabled"), "{out}");
        }
    }

    #[test]
    fn trace_out_file_roundtrips_and_validates() {
        if !rjam_obs::enabled() {
            return;
        }
        let mut path = std::env::temp_dir();
        path.push(format!("rjamctl_trace_{}.json", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        let mut chrome = std::env::temp_dir();
        chrome.push(format!("rjamctl_chrome_{}.json", std::process::id()));
        let chrome_s = chrome.to_string_lossy().to_string();
        let out = execute(&Command::Trace {
            episodes: 4,
            out: Some(path_s.clone()),
            chrome: Some(chrome_s.clone()),
            budget_ns: None,
            top: 2,
        })
        .unwrap();
        assert!(out.contains(&path_s), "{out}");
        assert!(out.contains(&chrome_s), "{out}");

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let doc = rjam_obs::trace::TraceDoc::from_json(&text).unwrap();
        doc.validate().unwrap();
        // At least one frame must carry the complete causal chain
        // MAC emit -> detector fire -> trigger -> jam TX -> MAC outcome.
        let full = doc
            .frames()
            .into_iter()
            .filter(|f| f.has_full_chain())
            .count();
        assert!(full >= 1, "no frame with a full causal chain");

        let chrome_text = std::fs::read_to_string(&chrome).unwrap();
        std::fs::remove_file(&chrome).ok();
        assert!(
            chrome_text.contains("traceEvents"),
            "missing traceEvents array"
        );
        assert!(
            chrome_text.contains("\"ph\": \"X\"") || chrome_text.contains("\"ph\":\"X\""),
            "no complete (X) span events in chrome trace"
        );
    }

    #[test]
    fn report_zero_frames_is_usage_error() {
        let err = execute(&Command::Report { frames: 0, top: 5 }).unwrap_err();
        assert_eq!(err.kind(), crate::args::ErrorKind::Usage);
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn report_renders_the_engine_profile() {
        let out = execute_with(
            &parse(&argv("report --frames 8 --top 3")).unwrap(),
            &CampaignEngine::serial(),
        );
        if !rjam_obs::enabled() {
            let err = out.unwrap_err();
            assert_eq!(err.kind(), crate::args::ErrorKind::Runtime);
            assert!(err.message().contains("compiled out"), "{err}");
            return;
        }
        let out = out.unwrap();
        assert!(out.contains("reference sweep: wifi-short"), "{out}");
        assert!(
            out.contains("== engine profile: wifi_detection =="),
            "{out}"
        );
        assert!(out.contains("== unit latency =="), "{out}");
        assert!(out.contains("attributed"), "{out}");
        assert!(out.contains("wifi_detection"), "{out}");
        // The strict >= 95 % attribution bound lives in the dedicated
        // progress_cli integration test (own process, no parallel-test
        // campaigns overwriting the per-kind profile slot mid-assert).
    }
}
