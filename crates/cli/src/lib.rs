//! # rjam-cli — the operator console
//!
//! The paper drives its jammer from a Python GUI built on GNU Radio
//! Companion: an operator picks detection types and jamming reactions at
//! run time (§2.5). `rjamctl` is that interface as a command-line tool over
//! the simulated testbed:
//!
//! ```text
//! rjamctl timeline                  # Fig. 5 latency check
//! rjamctl detect --preset wifi-short --snr 3 --frames 200
//! rjamctl fa --preset wifi-long --threshold 0.38 --samples 10000000
//! rjamctl iperf --jammer reactive-long --sir 14 --seconds 5
//! rjamctl classify capture.cf32    # identify the standard in a capture
//! rjamctl resources                # FPGA footprint of the core
//! ```
//!
//! This library half holds the argument model and command implementations
//! so they are unit-testable; `main.rs` is a thin dispatcher.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{CliError, Command, ParsedArgs};

/// Entry point shared by the binary and tests: parse and run.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let cmd = args::parse(argv)?;
    commands::execute(&cmd)
}
