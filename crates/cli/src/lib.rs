//! # rjam-cli — the operator console
//!
//! The paper drives its jammer from a Python GUI built on GNU Radio
//! Companion: an operator picks detection types and jamming reactions at
//! run time (§2.5). `rjamctl` is that interface as a command-line tool over
//! the simulated testbed:
//!
//! ```text
//! rjamctl timeline                  # Fig. 5 latency check
//! rjamctl detect --preset wifi-short --snr 3 --frames 200
//! rjamctl fa --preset wifi-long --threshold 0.38 --samples 10000000
//! rjamctl iperf --jammer reactive-long --sir 14 --seconds 5
//! rjamctl classify capture.cf32    # identify the standard in a capture
//! rjamctl resources                # FPGA footprint of the core
//! rjamctl stats                    # observability registry + histograms
//! ```
//!
//! Any command also accepts the global `--metrics-out FILE` flag, which
//! writes a `rjam-metrics-v1` JSON snapshot of the process-wide metrics
//! registry after the command runs (`rjamctl stats FILE` renders it back),
//! the global `--threads N` flag, which sets the campaign engine's worker
//! count (campaign results are bit-identical at any `N`), and the global
//! `--progress[=FILE]` flag, which streams live `rjam-progress-v1` NDJSON
//! events to stderr (or `FILE`) while campaigns run.
//!
//! This library half holds the argument model and command implementations
//! so they are unit-testable; `main.rs` is a thin dispatcher. All failures
//! flow through [`CliError`] and exit via [`fail`]: usage errors exit 2
//! (with usage text), runtime errors exit 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{CliError, Command, ErrorKind, ParsedArgs};

/// Entry point shared by the binary and tests: parse and run.
///
/// The global `--threads N` flag picks the campaign engine's worker count
/// for this invocation (over `RJAM_THREADS`, over all cores); campaign
/// output is bit-identical at any thread count, so the flag only changes
/// wall-clock time.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let (argv, metrics_out) = args::extract_metrics_out(argv)?;
    let (argv, threads) = args::extract_threads(&argv)?;
    let engine = match threads {
        Some(n) => rjam_core::CampaignEngine::with_threads(n),
        // No --threads flag: defer to RJAM_THREADS, but strictly. The
        // engine's own fallback degrades garbage to serial; the console
        // rejects it outright (exit 2), mirroring `--threads` validation.
        None => match rjam_core::engine::threads_from_env() {
            Ok(Some(0)) => {
                return Err(CliError::usage(format!(
                    "{} must be at least 1 (unset it to use all cores)",
                    rjam_core::engine::THREADS_ENV
                )))
            }
            Ok(_) => rjam_core::CampaignEngine::from_env(),
            Err(msg) => return Err(CliError::usage(msg)),
        },
    };
    let (argv, progress) = args::extract_progress(&argv)?;
    let cmd = args::parse(&argv)?;
    let progress_installed = match progress {
        Some(args::ProgressTarget::Stderr) => {
            rjam_obs::stream::install(Box::new(std::io::stderr()));
            true
        }
        Some(args::ProgressTarget::File(path)) => {
            let file = std::fs::File::create(&path)
                .map_err(|e| CliError::runtime(format!("--progress={path}: {e}")))?;
            rjam_obs::stream::install(Box::new(file));
            true
        }
        None => false,
    };
    let report = commands::execute_with(&cmd, &engine);
    if progress_installed {
        // Flush and detach even when the command failed, so a partial
        // stream is still readable.
        rjam_obs::stream::uninstall();
    }
    let report = report?;
    if let Some(path) = metrics_out {
        commands::write_metrics_snapshot(&path)?;
    }
    Ok(report)
}

/// The single error-exit path of the console: reports the failure on
/// stderr (appending usage only for malformed invocations) and returns the
/// process exit code mandated by the error's kind.
///
/// [`ErrorKind::Alarm`] is the exception: the command completed and its
/// message *is* the report (e.g. `monitor` ending with an alarm raised),
/// so it goes to stdout unstyled — only the exit code marks the verdict.
pub fn fail(e: &CliError) -> std::process::ExitCode {
    if e.kind() == ErrorKind::Alarm {
        print!("{e}");
    } else {
        eprintln!("error: {e}");
        if e.kind() == ErrorKind::Usage {
            eprintln!("{}", args::USAGE);
        }
    }
    std::process::ExitCode::from(e.exit_code())
}
