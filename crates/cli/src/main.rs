//! `rjamctl` — thin dispatcher over [`rjam_cli`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match rjam_cli::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", rjam_cli::args::USAGE);
            std::process::exit(2);
        }
    }
}
