//! `rjamctl` — thin dispatcher over [`rjam_cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match rjam_cli::run(&argv) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => rjam_cli::fail(&e),
    }
}
