//! Every campaign runner is exactly reproducible from its seed, including
//! the thread-parallel sweeps (workers are seeded per-index, so scheduling
//! order cannot leak into results).

use rjam_core::campaign::{
    false_alarm_rate, jamming_sweep, wifi_detection_sweep, wimax_detection, JammerUnderTest,
    WifiEmission,
};
use rjam_core::DetectionPreset;

#[test]
fn detection_sweep_is_deterministic() {
    let run = || {
        wifi_detection_sweep(
            &DetectionPreset::WifiShortPreamble { threshold: 0.35 },
            WifiEmission::FullFrames { psdu_len: 80 },
            &[-3.0, 3.0, 9.0],
            30,
            777,
        )
    };
    let a = run();
    let b = run();
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.p_detect, y.p_detect);
        assert_eq!(x.triggers_per_frame, y.triggers_per_frame);
    }
}

#[test]
fn jamming_sweep_is_deterministic() {
    let run = || jamming_sweep(JammerUnderTest::ReactiveLong, &[20.0, 8.0], 2.0, 31337);
    let a = run();
    let b = run();
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.report.sent, y.report.sent);
        assert_eq!(x.report.received, y.report.received);
        assert_eq!(x.report.jam_bursts, y.report.jam_bursts);
    }
}

#[test]
fn fa_and_wimax_are_deterministic() {
    let p = DetectionPreset::WifiLongPreamble { threshold: 0.34 };
    assert_eq!(
        false_alarm_rate(&p, 1_000_000, 9),
        false_alarm_rate(&p, 1_000_000, 9)
    );
    let a = wimax_detection(true, 6, 20.0, 0.45, 11);
    let b = wimax_detection(true, 6, 20.0, 0.45, 11);
    assert_eq!(a.detect_fraction, b.detect_fraction);
    assert_eq!(a.mean_latency_us, b.mean_latency_us);
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = jamming_sweep(JammerUnderTest::ReactiveLong, &[14.0], 2.0, 1);
    let b = jamming_sweep(JammerUnderTest::ReactiveLong, &[14.0], 2.0, 2);
    assert_ne!(
        (a[0].report.received, a[0].report.jam_bursts),
        (b[0].report.received, b[0].report.jam_bursts),
        "seeds must actually steer the randomness"
    );
}
