//! Every campaign runner is exactly reproducible from its seed, including
//! the thread-parallel sweeps (workers are seeded per-index, so scheduling
//! order cannot leak into results). These tests run through the
//! [`rjam_core::campaign::CampaignSpec`] builders, with engines of several
//! thread counts, pinning the determinism contract from the outside.

use rjam_core::campaign::{CampaignSpec, JammerUnderTest, WifiEmission};
use rjam_core::{CampaignEngine, DetectionPreset};

#[test]
fn detection_sweep_is_deterministic() {
    let run = |engine: &CampaignEngine| {
        CampaignSpec::wifi_detection(&DetectionPreset::WifiShortPreamble { threshold: 0.35 })
            .emission(WifiEmission::FullFrames { psdu_len: 80 })
            .snrs(&[-3.0, 3.0, 9.0])
            .trials(30)
            .seed(777)
            .run(engine)
    };
    let a = run(&CampaignEngine::serial());
    let b = run(&CampaignEngine::with_threads(4));
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.p_detect, y.p_detect);
        assert_eq!(x.triggers_per_frame, y.triggers_per_frame);
    }
}

#[test]
fn jamming_sweep_is_deterministic() {
    let run = |engine: &CampaignEngine| {
        CampaignSpec::jamming(JammerUnderTest::ReactiveLong)
            .sirs(&[20.0, 8.0])
            .duration_s(2.0)
            .seed(31337)
            .run(engine)
    };
    let a = run(&CampaignEngine::serial());
    let b = run(&CampaignEngine::with_threads(3));
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.report.sent, y.report.sent);
        assert_eq!(x.report.received, y.report.received);
        assert_eq!(x.report.jam_bursts, y.report.jam_bursts);
    }
}

#[test]
fn fa_and_wimax_are_deterministic() {
    let fa = |engine: &CampaignEngine| {
        CampaignSpec::false_alarm(&DetectionPreset::WifiLongPreamble { threshold: 0.34 })
            .samples(1_000_000)
            .seed(9)
            .run(engine)
    };
    assert_eq!(
        fa(&CampaignEngine::serial()),
        fa(&CampaignEngine::with_threads(2))
    );
    let wimax = |engine: &CampaignEngine| {
        CampaignSpec::wimax_detection()
            .fused(true)
            .frames(6)
            .snr_db(20.0)
            .threshold(0.45)
            .seed(11)
            .run(engine)
    };
    let a = wimax(&CampaignEngine::serial());
    let b = wimax(&CampaignEngine::with_threads(4));
    assert_eq!(a.detect_fraction, b.detect_fraction);
    assert_eq!(a.mean_latency_us, b.mean_latency_us);
}

#[test]
fn different_seeds_differ_somewhere() {
    let engine = CampaignEngine::serial();
    let run = |seed: u64| {
        CampaignSpec::jamming(JammerUnderTest::ReactiveLong)
            .sirs(&[14.0])
            .duration_s(2.0)
            .seed(seed)
            .run(&engine)
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(
        (a[0].report.received, a[0].report.jam_bursts),
        (b[0].report.received, b[0].report.jam_bursts),
        "seeds must actually steer the randomness"
    );
}
