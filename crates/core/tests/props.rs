//! Property tests for template generation and the testbed link budget,
//! driven by `rjam-testkit`.

use rjam_core::coeff::{quantize_template, Template};
use rjam_core::testbed::TestbedBudget;
use rjam_sdr::complex::Cf64;
use rjam_testkit::{self as tk, prop_assert, props, Gen};

fn any_wave(len: std::ops::Range<usize>) -> impl Gen<Value = Vec<(f64, f64)>> {
    tk::vec((-1.0f64..1.0, -1.0f64..1.0), len)
}

props! {
    cases = 16;

    /// Quantized coefficients always land in the hardware's signed 3-bit
    /// range, whatever the source waveform looks like.
    fn template_coeffs_in_3bit_range(pairs in any_wave(1..200)) {
        let mut wave: Vec<Cf64> =
            pairs.iter().map(|&(re, im)| Cf64::new(re, im)).collect();
        wave[0] = Cf64::new(0.7, -0.3); // guarantee a nonzero peak
        let t = quantize_template(&wave);
        for c in t.coeff_i.iter().chain(t.coeff_q.iter()) {
            prop_assert!((-4..=3).contains(c), "coefficient {c} out of range");
        }
    }

    /// The recommended threshold is monotone in the fraction, clamps to
    /// [0, peak] and hits the exact ideal peak at fraction 1.
    fn threshold_fraction_monotone(
        pairs in any_wave(8..120),
        f_lo in 0.0f64..1.0,
        df in 0.0f64..1.0,
    ) {
        let mut wave: Vec<Cf64> =
            pairs.iter().map(|&(re, im)| Cf64::new(re, im)).collect();
        wave[0] = Cf64::new(0.7, -0.3);
        let t = quantize_template(&wave);
        let lo = t.threshold_at_fraction(f_lo);
        let hi = t.threshold_at_fraction((f_lo + df).min(1.0));
        prop_assert!(lo <= hi, "threshold not monotone: {lo} > {hi}");
        let peak = t.threshold_at_fraction(1.0);
        prop_assert!(t.threshold_at_fraction(2.0) == peak, "clamps above 1");
        prop_assert!(t.threshold_at_fraction(-1.0) == 0, "clamps below 0");
        let sum: i64 = t
            .coeff_i
            .iter()
            .chain(t.coeff_q.iter())
            .map(|&c| (c as i64).abs())
            .sum();
        prop_assert!(peak == (sum * sum) as u64, "ideal peak formula");
        let _: &Template = &t;
    }

    /// `set_sir_ap_db` inverts `sir_ap_db` for any attenuator setting and
    /// target — the sweep harness depends on this round trip.
    fn testbed_sir_setter_roundtrips(
        target in -10.0f64..60.0,
        atten in 0.0f64..30.0,
    ) {
        let mut b = TestbedBudget { jammer_atten_db: atten, ..Default::default() };
        b.set_sir_ap_db(target);
        prop_assert!(
            (b.sir_ap_db() - target).abs() < 1e-9,
            "target {target} with atten {atten} gave {}",
            b.sir_ap_db()
        );
        // CCA defer probability is always a probability.
        let p = b.cca_defer_prob();
        prop_assert!((0.0..=1.0).contains(&p));
    }
}
