//! End-to-end `rjam-progress-v1` streaming and engine-profile tests.
//!
//! These live in their own integration-test binary (own process) because
//! the progress sink and the campaign guard are process-wide: unit tests
//! of other campaigns running in parallel threads of the lib test binary
//! would race for stream ownership. The scenarios below share one `#[test]`
//! for the same reason.

#![cfg(feature = "obs")]

use rjam_core::engine::CampaignEngine;
use rjam_obs::stream::{self, ProgressEvent};
use rjam_obs::telemetry;
use std::sync::{Arc, Mutex};

/// A `Write` sink the test can read back after `uninstall`.
#[derive(Clone, Default)]
struct Buf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for Buf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buf lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn capture<F: FnOnce()>(run: F) -> Vec<ProgressEvent> {
    let buf = Buf::default();
    stream::install(Box::new(buf.clone()));
    run();
    stream::uninstall();
    let text = String::from_utf8(buf.0.lock().expect("buf lock").clone()).expect("utf8");
    stream::parse_stream(&text).unwrap_or_else(|e| panic!("stream parses: {e}\n{text}"))
}

fn busy_unit(index: usize) -> u64 {
    // A deterministic ~100 µs of real work per unit, so busy time
    // dominates and timings are non-trivial on any box.
    let mut acc = index as u64 ^ 0x9E37_79B9;
    for _ in 0..20_000 {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    acc
}

#[test]
fn engine_streams_one_valid_chain_and_publishes_a_profile() {
    // --- Scenario 1: a parallel campaign emits a complete, valid chain.
    let events = capture(|| {
        let out = CampaignEngine::with_threads(3).run_units_kind(
            "progress_e2e",
            24,
            0xFEED,
            || (),
            |_, ctx| busy_unit(ctx.index),
        );
        // Streaming must not perturb results.
        let serial = CampaignEngine::serial().run_units_kind(
            "progress_e2e_serial",
            24,
            0xFEED,
            || (),
            |_, ctx| busy_unit(ctx.index),
        );
        assert_eq!(out, serial, "telemetry must never change outputs");
    });
    // Two campaigns ran inside the capture, one after the other: split at
    // the chain boundary and validate each.
    let done_positions: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, ProgressEvent::Done { .. }))
        .map(|(k, _)| k)
        .collect();
    assert_eq!(done_positions.len(), 2, "two sequential campaigns");
    let first = &events[..=done_positions[0]];
    let second = &events[done_positions[0] + 1..];
    stream::validate_chain(first).expect("parallel chain validates");
    stream::validate_chain(second).expect("serial chain validates");
    let ProgressEvent::Started {
        kind,
        units,
        workers,
        seed,
        ..
    } = &first[0]
    else {
        panic!("first event is campaign_started")
    };
    assert_eq!(kind, "progress_e2e");
    assert_eq!(*units, 24);
    assert_eq!(*workers, 3);
    assert_eq!(*seed, 0xFEED);
    // Snapshots carry a real ETA while in flight.
    assert!(
        first
            .iter()
            .any(|e| matches!(e, ProgressEvent::Snapshot { done, total, .. } if done < total)),
        "at least one in-flight snapshot"
    );

    // --- Scenario 2: nested campaigns (the ROC shape — whole serial
    // sub-campaigns inside shards) emit exactly one chain.
    let events = capture(|| {
        CampaignEngine::with_threads(2).run_shards_kind("progress_nested_outer", 6, 7, |ctx| {
            CampaignEngine::serial()
                .run_units_kind(
                    "progress_nested_inner",
                    4,
                    ctx.seed,
                    || (),
                    |_, c| busy_unit(c.index),
                )
                .len()
        });
    });
    stream::validate_chain(&events).expect("nested run still yields one valid chain");
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, ProgressEvent::Started { .. }))
            .count(),
        1,
        "inner campaigns must stay silent"
    );
    let ProgressEvent::Started { kind, units, .. } = &events[0] else {
        panic!("first event is campaign_started")
    };
    assert_eq!(kind, "progress_nested_outer");
    assert_eq!(*units, 6);

    // --- Scenario 3: the published profile accounts for the run.
    let p = telemetry::profile_for("progress_e2e").expect("profile published");
    assert_eq!(p.units, 24);
    assert_eq!(p.shards, 12, "3 workers x OVERSHARD ranges");
    assert_eq!(p.workers.len(), 3);
    assert_eq!(p.workers.iter().map(|w| w.units).sum::<u64>(), 24);
    assert_eq!(p.unit_ns.count, 24);
    assert!(p.median_unit_ns > 0, "units do real work");
    // The lower bound is deliberately weak: on an oversubscribed 1-core
    // runner, worker spawn latency (in the denominator, attributable to
    // nothing) has been observed to push a debug-build micro-campaign's
    // fraction down to ~0.3. The tight attribution gates live where they
    // are meaningful: the serial profile below (structural, >= 0.95) and
    // ci.sh's release-build `rjamctl report` gate (>= 95 %).
    let f = p.attributed_fraction();
    assert!(
        f > 0.1 && f <= 1.0,
        "attribution in a sane range even on a loaded box: {f}"
    );
    // The serial campaign's attribution is structural (busy + idle ==
    // worker wall by construction), so it admits a tight bound.
    let p = telemetry::profile_for("progress_e2e_serial").expect("serial profile");
    assert_eq!(p.workers.len(), 1);
    assert!(
        p.attributed_fraction() >= 0.95,
        "serial attribution: {}",
        p.attributed_fraction()
    );
    // Engine aggregates reached the registry.
    assert!(rjam_obs::registry::counter_value("core.engine_busy_ns") > 0);
    let unit_hist = rjam_obs::registry::histogram("core.engine_unit_ns").snapshot();
    assert!(unit_hist.count() >= 24 + 24 + 24 + 6);

    // --- Scenario 4: without a sink, campaigns stay silent but still
    // profile.
    telemetry::clear();
    CampaignEngine::with_threads(2).run_units_kind(
        "progress_silent",
        8,
        1,
        || (),
        |_, ctx| busy_unit(ctx.index),
    );
    assert!(telemetry::profile_for("progress_silent").is_some());
}

#[test]
fn straggler_detection_flags_slow_units_with_seeds() {
    // One unit sleeps ~20x the median: it must be flagged, with the seed
    // the engine actually used for it.
    use rjam_core::engine::shard_seed;
    CampaignEngine::with_threads(2).run_units_kind(
        "straggler_e2e",
        16,
        0xBAD,
        || (),
        |_, ctx| {
            if ctx.index == 5 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            } else {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            ctx.index
        },
    );
    let p = telemetry::profile_for("straggler_e2e").expect("profile");
    assert!(
        p.stragglers.iter().any(|s| s.unit == 5),
        "unit 5 flagged: {:?}",
        p.stragglers
    );
    let s = p.stragglers.iter().find(|s| s.unit == 5).unwrap();
    assert_eq!(
        s.seed,
        shard_seed(0xBAD, 5),
        "straggler seed is reproducible"
    );
    assert!(s.duration_ns > 4 * p.median_unit_ns);
    // And it landed in the flight recorder.
    let (events, _) = rjam_obs::recorder::global_dump();
    assert!(
        events
            .iter()
            .any(|e| e.kind == "engine_straggler" && e.a == 5),
        "straggler reaches the flight recorder"
    );
}
