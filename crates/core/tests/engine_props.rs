//! Property tests for the sharded campaign engine, driven by
//! `rjam-testkit`: the determinism contract stated over the *external*
//! JSON export surface, and the injectivity of the seed-splitting map.

use rjam_core::campaign::{CampaignSpec, JammerUnderTest, WifiEmission};
use rjam_core::engine::shard_seed;
use rjam_core::export::{detection_json, false_alarm_json, jamming_json};
use rjam_core::{CampaignEngine, DetectionPreset};
use rjam_testkit::{prop_assert, props};

props! {
    cases = 4;

    /// A detection sweep exports byte-identical JSON at 1, 2 and 7
    /// worker threads, for any campaign seed — the determinism contract
    /// observed from the outside.
    fn detection_export_thread_invariant(seed in 0u64..1_000_000) {
        let run = |threads: usize| {
            let pts = CampaignSpec::wifi_detection(
                &DetectionPreset::WifiShortPreamble { threshold: 0.35 },
            )
            .emission(WifiEmission::FullFrames { psdu_len: 60 })
            .snrs(&[-3.0, 3.0, 9.0])
            .trials(8)
            .seed(seed)
            .run(&CampaignEngine::with_threads(threads));
            detection_json(&pts)
        };
        let serial = run(1);
        for threads in [2usize, 7] {
            let sharded = run(threads);
            prop_assert!(
                serial == sharded,
                "JSON diverged at {threads} threads for seed {seed}"
            );
        }
    }

    /// Same contract for the MAC-layer jamming sweep and the false-alarm
    /// calibration (which shards by sample segment, not by point).
    fn jamming_and_fa_exports_thread_invariant(seed in 0u64..1_000_000) {
        let jam = |threads: usize| {
            let pts = CampaignSpec::jamming(JammerUnderTest::ReactiveShort)
                .sirs(&[20.0, 6.0])
                .duration_s(0.5)
                .seed(seed)
                .run(&CampaignEngine::with_threads(threads));
            jamming_json(&pts)
        };
        let fa = |threads: usize| {
            let rate = CampaignSpec::false_alarm(
                &DetectionPreset::WifiLongPreamble { threshold: 0.30 },
            )
            // 1.5 shards' worth of samples, so the partial-shard path runs.
            .samples((1 << 20) + (1 << 19))
            .seed(seed)
            .run(&CampaignEngine::with_threads(threads));
            false_alarm_json(rate)
        };
        let (jam1, fa1) = (jam(1), fa(1));
        for threads in [2usize, 7] {
            prop_assert!(jam(threads) == jam1, "jamming JSON diverged at {threads} threads");
            prop_assert!(fa(threads) == fa1, "FA JSON diverged at {threads} threads");
        }
    }
}

props! {
    cases = 16;

    /// `shard_seed` never collides within a campaign (injective in the
    /// shard index) and separates campaigns at every shard.
    fn shard_seed_splits_cleanly(campaign_a in 0u64..u64::MAX, campaign_b in 0u64..u64::MAX) {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for shard in 0..512u64 {
            prop_assert!(
                seen.insert(shard_seed(campaign_a, shard)),
                "collision within campaign {campaign_a:#x} at shard {shard}"
            );
        }
        if campaign_a != campaign_b {
            for shard in 0..64u64 {
                prop_assert!(
                    shard_seed(campaign_a, shard) != shard_seed(campaign_b, shard),
                    "campaigns {campaign_a:#x}/{campaign_b:#x} share shard {shard}'s stream"
                );
            }
        }
    }
}
