//! Property tests for the sharded campaign engine, driven by
//! `rjam-testkit`: the determinism contract stated over the *external*
//! JSON export surface, the injectivity of the seed-splitting map, and
//! the pool-reuse contract (a reset core is indistinguishable from a
//! fresh one).

use rjam_core::campaign::{CampaignSpec, JammerUnderTest, WifiEmission};
use rjam_core::engine::shard_seed;
use rjam_core::export::{detection_json, false_alarm_json, jamming_json};
use rjam_core::{CampaignEngine, DetectionPreset, JammerPreset, ReactiveJammer};
use rjam_testkit::{prop_assert, props};

props! {
    cases = 4;

    /// A detection sweep exports byte-identical JSON at 1, 2 and 7
    /// worker threads, for any campaign seed — the determinism contract
    /// observed from the outside. The trial count is deliberately NOT a
    /// multiple of the engine's frames-per-unit, so remainder-bearing
    /// `(snr, seed-block)` cells are always in play.
    fn detection_export_thread_invariant(seed in 0u64..1_000_000) {
        let run = |threads: usize| {
            let pts = CampaignSpec::wifi_detection(
                &DetectionPreset::WifiShortPreamble { threshold: 0.35 },
            )
            .emission(WifiEmission::FullFrames { psdu_len: 60 })
            .snrs(&[-3.0, 3.0, 9.0])
            .trials(11)
            .seed(seed)
            .run(&CampaignEngine::with_threads(threads));
            detection_json(&pts)
        };
        let serial = run(1);
        for threads in [2usize, 7] {
            let sharded = run(threads);
            prop_assert!(
                serial == sharded,
                "JSON diverged at {threads} threads for seed {seed}"
            );
        }
    }

    /// Same contract for the MAC-layer jamming sweep and the false-alarm
    /// calibration (which shards by sample segment, not by point). The
    /// jamming sweep runs with far more workers than shards; the FA
    /// sample count leaves a partial final segment.
    fn jamming_and_fa_exports_thread_invariant(seed in 0u64..1_000_000) {
        let jam = |threads: usize| {
            let pts = CampaignSpec::jamming(JammerUnderTest::ReactiveShort)
                .sirs(&[20.0, 6.0])
                .duration_s(0.5)
                .seed(seed)
                .run(&CampaignEngine::with_threads(threads));
            jamming_json(&pts)
        };
        let fa = |threads: usize| {
            let rate = CampaignSpec::false_alarm(
                &DetectionPreset::WifiLongPreamble { threshold: 0.30 },
            )
            // 2.x units' worth of samples, so the partial-unit path runs.
            .samples(2 * (1 << 18) + 54_321)
            .seed(seed)
            .run(&CampaignEngine::with_threads(threads));
            false_alarm_json(rate)
        };
        let (jam1, fa1) = (jam(1), fa(1));
        // 32 workers against 2 jamming shards: workers > shards must
        // degrade gracefully and change nothing.
        for threads in [2usize, 7, 32] {
            prop_assert!(jam(threads) == jam1, "jamming JSON diverged at {threads} threads");
            prop_assert!(fa(threads) == fa1, "FA JSON diverged at {threads} threads");
        }
    }

    /// The pool-reuse contract behind `CampaignEngine::run_units`: a core
    /// that processed unrelated traffic and was `reset` produces output
    /// bit-identical to a freshly built, identically configured core —
    /// events, transmit waveform and activity mask alike.
    fn reset_jammer_matches_fresh_jammer(seed in 0u64..1_000_000) {
        use rjam_core::BlockScratch;
        use rjam_sdr::complex::Cf64;

        let make = || {
            ReactiveJammer::from_presets(
                &DetectionPreset::WifiShortPreamble { threshold: 0.30 },
                &JammerPreset::Reactive {
                    uptime_s: 10e-6,
                    waveform: rjam_fpga::JamWaveform::Wgn,
                },
                1000,
            )
        };
        let mut rng = rjam_sdr::rng::Rng::seed_from(seed);
        let noise = rjam_channel::noise::NoiseSource::new(1e-4, rng.fork());
        let frame = rjam_phy80211::tx::modulate_frame(&rjam_phy80211::tx::Frame::new(
            rjam_phy80211::Rate::R12,
            vec![0x5A; 40],
        ));
        let wave = rjam_sdr::resample::to_usrp_rate(&frame, rjam_sdr::WIFI_SAMPLE_RATE);
        let mut noise = noise;
        let mut stream: Vec<Cf64> = (0..256).map(|_| noise.next_sample()).collect();
        stream.extend(wave.iter().map(|&s| s.scale(0.2) + noise.next_sample()));
        let dirt: Vec<Cf64> = (0..2048).map(|_| noise.next_sample()).collect();

        // Dirty path: unrelated traffic, then reset, then the stream.
        let mut dirty = make();
        let mut scratch_d = BlockScratch::new();
        dirty.process_block_into(&dirt, &mut scratch_d);
        dirty.reset();
        dirty.process_block_into(&stream, &mut scratch_d);

        // Fresh path: the stream alone.
        let mut fresh = make();
        let mut scratch_f = BlockScratch::new();
        fresh.process_block_into(&stream, &mut scratch_f);

        prop_assert!(
            dirty.events() == fresh.events(),
            "event log differs after reset (seed {seed})"
        );
        prop_assert!(
            scratch_d.tx() == scratch_f.tx(),
            "transmit waveform differs after reset (seed {seed})"
        );
        prop_assert!(
            scratch_d.active() == scratch_f.active(),
            "activity mask differs after reset (seed {seed})"
        );
    }
}

props! {
    cases = 16;

    /// `shard_seed` never collides within a campaign (injective in the
    /// shard index) and separates campaigns at every shard.
    fn shard_seed_splits_cleanly(campaign_a in 0u64..u64::MAX, campaign_b in 0u64..u64::MAX) {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for shard in 0..512u64 {
            prop_assert!(
                seen.insert(shard_seed(campaign_a, shard)),
                "collision within campaign {campaign_a:#x} at shard {shard}"
            );
        }
        if campaign_a != campaign_b {
            for shard in 0..64u64 {
                prop_assert!(
                    shard_seed(campaign_a, shard) != shard_seed(campaign_b, shard),
                    "campaigns {campaign_a:#x}/{campaign_b:#x} share shard {shard}'s stream"
                );
            }
        }
    }
}
