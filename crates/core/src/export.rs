//! Result export and session reporting.
//!
//! Campaign outputs serialize to plain CSV (plot-ready for gnuplot /
//! matplotlib / a spreadsheet) and detection sessions render to a compact
//! text report — the artifacts a lab notebook wants from each run.

use crate::campaign::{DetectionPoint, EnergyPoint, JammingPoint, RocPoint};
use rjam_fpga::jammer::JamEvent;
use rjam_fpga::CoreEvent;
use std::fmt::Write as _;

/// CSV for a detection-probability sweep (Figs 6-8 data).
pub fn detection_csv(points: &[DetectionPoint]) -> String {
    let mut out = String::from("snr_db,p_detect,triggers_per_frame\n");
    for p in points {
        let _ = writeln!(
            out,
            "{:.2},{:.6},{:.4}",
            p.snr_db, p.p_detect, p.triggers_per_frame
        );
    }
    out
}

/// CSV for a jamming sweep (Figs 10-11 data).
pub fn jamming_csv(points: &[JammingPoint]) -> String {
    let mut out = String::from(
        "sir_ap_db,bandwidth_kbps,prr_percent,mean_phy_rate_mbps,jam_bursts,jam_airtime_us,disassociated\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:.2},{:.1},{:.2},{:.2},{},{:.1},{}",
            p.sir_ap_db,
            p.report.bandwidth_kbps,
            p.report.prr_percent,
            p.report.mean_phy_rate_mbps,
            p.report.jam_bursts,
            p.report.jam_airtime_us,
            p.report.disassociated
        );
    }
    out
}

/// CSV for a receiver-operating-characteristic sweep.
pub fn roc_csv(points: &[RocPoint]) -> String {
    let mut out = String::from("threshold,fa_per_s,p_detect\n");
    for p in points {
        let _ = writeln!(
            out,
            "{:.3},{:.4},{:.6}",
            p.threshold, p.fa_per_s, p.p_detect
        );
    }
    out
}

/// CSV for energy-efficiency operating points.
pub fn energy_csv(points: &[EnergyPoint]) -> String {
    let mut out = String::from(
        "jammer,sir_ap_db,tx_power_dbm,duty_percent,energy_joules,residual_bandwidth_percent\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "{},{:.2},{:.2},{:.3},{:.9},{:.2}",
            p.jammer.label().replace(',', ";"),
            p.sir_ap_db,
            p.tx_power_dbm,
            p.duty_percent,
            p.energy_joules,
            p.residual_bandwidth_percent
        );
    }
    out
}

/// Renders a detection/jamming session as a timeline report: one line per
/// event with VITA-style absolute timestamps.
pub fn session_report(events: &[CoreEvent], jams: &[JamEvent], epoch_secs: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>18}  event", "time (s)");
    let mut jam_iter = jams.iter().peekable();
    for e in events {
        let t = rjam_fpga::VitaTime::from_cycle(e.cycle(), epoch_secs);
        let label = match e {
            CoreEvent::XcorrDetection { metric, .. } => {
                format!("xcorr detection (metric {metric})")
            }
            CoreEvent::EnergyHigh { .. } => "energy rise".to_string(),
            CoreEvent::EnergyLow { .. } => "energy fall".to_string(),
            CoreEvent::JamTrigger { .. } => "JAM TRIGGER".to_string(),
        };
        let _ = writeln!(out, "{:>18.7}  {label}", t.as_secs_f64());
        // Interleave the jam burst that this trigger started, if any.
        if matches!(e, CoreEvent::JamTrigger { .. }) {
            if let Some(j) = jam_iter.next() {
                let ts = rjam_fpga::VitaTime::from_cycle(j.start_cycle, epoch_secs);
                let dur = j
                    .end_cycle
                    .map(|end| format!("{:.1} us", (end - j.start_cycle) as f64 / 100.0))
                    .unwrap_or_else(|| "ongoing".to_string());
                let _ = writeln!(
                    out,
                    "{:>18.7}  -> RF burst ({dur}, response {:.0} ns)",
                    ts.as_secs_f64(),
                    j.response_ns()
                );
            }
        }
    }
    let _ = writeln!(out, "{} events, {} jam bursts", events.len(), jams.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjam_mac::IperfReport;

    #[test]
    fn detection_csv_shape() {
        let pts = vec![
            DetectionPoint {
                snr_db: -3.0,
                p_detect: 0.36,
                triggers_per_frame: 0.4,
            },
            DetectionPoint {
                snr_db: 3.0,
                p_detect: 0.99,
                triggers_per_frame: 1.0,
            },
        ];
        let csv = detection_csv(&pts);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "snr_db,p_detect,triggers_per_frame");
        assert!(lines[1].starts_with("-3.00,0.36"));
        // Parse back.
        for line in &lines[1..] {
            let fields: Vec<f64> = line.split(',').map(|f| f.parse().unwrap()).collect();
            assert_eq!(fields.len(), 3);
        }
    }

    #[test]
    fn jamming_csv_roundtrips_fields() {
        let pts = vec![JammingPoint {
            sir_ap_db: 15.94,
            report: IperfReport::from_counts(100, 50, 1470, 10.0, vec![], true, 24.0, 7, 700.0),
        }];
        let csv = jamming_csv(&pts);
        let row = csv.lines().nth(1).unwrap();
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), 7);
        assert_eq!(fields[0], "15.94");
        assert_eq!(fields[4], "7");
        assert_eq!(fields[6], "true");
    }

    #[test]
    fn roc_and_energy_headers() {
        assert!(roc_csv(&[]).starts_with("threshold,"));
        assert!(energy_csv(&[]).starts_with("jammer,"));
    }

    #[test]
    fn session_report_renders_events() {
        let events = vec![
            CoreEvent::EnergyHigh {
                sample: 100,
                cycle: 401,
            },
            CoreEvent::XcorrDetection {
                sample: 163,
                cycle: 653,
                metric: 140_000,
            },
            CoreEvent::JamTrigger {
                sample: 163,
                cycle: 653,
            },
        ];
        let jams = vec![rjam_fpga::jammer::JamEvent {
            trigger_sample: 163,
            trigger_cycle: 653,
            start_cycle: 661,
            end_cycle: Some(3161),
        }];
        let rep = session_report(&events, &jams, 1000);
        assert!(rep.contains("energy rise"), "{rep}");
        assert!(rep.contains("JAM TRIGGER"), "{rep}");
        assert!(rep.contains("25.0 us"), "{rep}");
        assert!(rep.contains("response 80 ns"), "{rep}");
        assert!(rep.contains("3 events, 1 jam bursts"), "{rep}");
    }

    #[test]
    fn session_report_from_live_core() {
        use crate::{DetectionPreset, JammerPreset, ReactiveJammer};
        let mut j = ReactiveJammer::new(
            DetectionPreset::EnergyRise { threshold_db: 6.0 },
            JammerPreset::Reactive {
                uptime_s: 4e-5,
                waveform: rjam_fpga::JamWaveform::Wgn,
            },
        );
        let mut stream = vec![rjam_sdr::complex::Cf64::new(0.001, 0.0); 300];
        stream.extend(vec![rjam_sdr::complex::Cf64::new(0.2, 0.2); 400]);
        j.process_block(&stream);
        let rep = session_report(j.events(), j.jam_events(), 0);
        assert!(rep.contains("JAM TRIGGER"), "{rep}");
        assert!(rep.contains("RF burst"), "{rep}");
    }
}
