//! Result export and session reporting.
//!
//! Campaign outputs serialize to plain CSV (plot-ready for gnuplot /
//! matplotlib / a spreadsheet) or canonical JSON, and detection sessions
//! render to a compact text report — the artifacts a lab notebook wants
//! from each run.
//!
//! The JSON exporters are *canonical*: numbers use Rust's shortest
//! round-trip `f64` formatting and keys appear in a fixed order, so two
//! exports are byte-identical exactly when the underlying results are
//! bit-identical. That is the external surface the engine's determinism
//! contract is checked against — CI diffs `RJAM_THREADS=1` output against
//! `RJAM_THREADS=4` output, byte for byte.

use crate::campaign::{
    DetectionPoint, EnergyPoint, JammingPoint, RocPoint, TimeToDetectPoint, WimaxResult,
};
use rjam_fpga::jammer::JamEvent;
use rjam_fpga::CoreEvent;
use rjam_obs::json::write_number as num;
use std::fmt::Write as _;

/// CSV for a detection-probability sweep (Figs 6-8 data).
pub fn detection_csv(points: &[DetectionPoint]) -> String {
    let mut out = String::from("snr_db,p_detect,triggers_per_frame\n");
    for p in points {
        let _ = writeln!(
            out,
            "{:.2},{:.6},{:.4}",
            p.snr_db, p.p_detect, p.triggers_per_frame
        );
    }
    out
}

/// CSV for a jamming sweep (Figs 10-11 data).
pub fn jamming_csv(points: &[JammingPoint]) -> String {
    let mut out = String::from(
        "sir_ap_db,bandwidth_kbps,prr_percent,mean_phy_rate_mbps,jam_bursts,jam_airtime_us,disassociated\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:.2},{:.1},{:.2},{:.2},{},{:.1},{}",
            p.sir_ap_db,
            p.report.bandwidth_kbps,
            p.report.prr_percent,
            p.report.mean_phy_rate_mbps,
            p.report.jam_bursts,
            p.report.jam_airtime_us,
            p.report.disassociated
        );
    }
    out
}

/// CSV for a health-monitor time-to-detect sweep. `frames_to_alarm` is
/// `-1` when the monitor never alarmed (the clean-run rows).
pub fn time_to_detect_csv(points: &[TimeToDetectPoint]) -> String {
    let mut out = String::from("jammer,sir_ap_db,frames,frames_to_alarm,alarms,prr_percent\n");
    for p in points {
        let tta = p.frames_to_alarm.map_or(-1i64, |f| f as i64);
        let _ = writeln!(
            out,
            "{},{:.2},{},{},{},{:.2}",
            p.jammer.label().replace(',', ";"),
            p.sir_ap_db,
            p.frames,
            tta,
            p.alarms,
            p.prr_percent
        );
    }
    out
}

/// CSV for a receiver-operating-characteristic sweep.
pub fn roc_csv(points: &[RocPoint]) -> String {
    let mut out = String::from("threshold,fa_per_s,p_detect\n");
    for p in points {
        let _ = writeln!(
            out,
            "{:.3},{:.4},{:.6}",
            p.threshold, p.fa_per_s, p.p_detect
        );
    }
    out
}

/// CSV for energy-efficiency operating points.
pub fn energy_csv(points: &[EnergyPoint]) -> String {
    let mut out = String::from(
        "jammer,sir_ap_db,tx_power_dbm,duty_percent,energy_joules,residual_bandwidth_percent\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "{},{:.2},{:.2},{:.3},{:.9},{:.2}",
            p.jammer.label().replace(',', ";"),
            p.sir_ap_db,
            p.tx_power_dbm,
            p.duty_percent,
            p.energy_joules,
            p.residual_bandwidth_percent
        );
    }
    out
}

/// Canonical JSON for a detection-probability sweep.
pub fn detection_json(points: &[DetectionPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"snr_db\":{},\"p_detect\":{},\"triggers_per_frame\":{}}}",
                num(p.snr_db),
                num(p.p_detect),
                num(p.triggers_per_frame)
            )
        })
        .collect();
    format!("{{\"detection\":[{}]}}", rows.join(","))
}

/// Canonical JSON for a jamming sweep.
pub fn jamming_json(points: &[JammingPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            let r = &p.report;
            let per_s: Vec<String> = r.per_second_kbps.iter().map(|&v| num(v)).collect();
            format!(
                concat!(
                    "{{\"sir_ap_db\":{},\"sent\":{},\"received\":{},",
                    "\"bandwidth_kbps\":{},\"prr_percent\":{},",
                    "\"mean_phy_rate_mbps\":{},\"jam_bursts\":{},",
                    "\"jam_airtime_us\":{},\"disassociated\":{},",
                    "\"per_second_kbps\":[{}]}}"
                ),
                num(p.sir_ap_db),
                r.sent,
                r.received,
                num(r.bandwidth_kbps),
                num(r.prr_percent),
                num(r.mean_phy_rate_mbps),
                r.jam_bursts,
                num(r.jam_airtime_us),
                r.disassociated,
                per_s.join(",")
            )
        })
        .collect();
    format!("{{\"jamming\":[{}]}}", rows.join(","))
}

/// Canonical JSON for a receiver-operating-characteristic sweep.
pub fn roc_json(points: &[RocPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"threshold\":{},\"fa_per_s\":{},\"p_detect\":{}}}",
                num(p.threshold),
                num(p.fa_per_s),
                num(p.p_detect)
            )
        })
        .collect();
    format!("{{\"roc\":[{}]}}", rows.join(","))
}

/// Canonical JSON for a false-alarm calibration: raw rate in triggers/s.
pub fn false_alarm_json(fa_per_s: f64) -> String {
    format!("{{\"fa_per_s\":{}}}", num(fa_per_s))
}

/// Canonical JSON for a WiMAX correspondence run. The scope trace is
/// folded in as its marker log plus an envelope checksum, which pins both
/// detection decisions and every captured sample without megabytes of
/// floats.
pub fn wimax_json(result: &WimaxResult) -> String {
    let mut env_sum = 0u64;
    for &v in result.scope.envelope() {
        // Order-sensitive bit-exact digest (FNV-1a over the f64 bits).
        env_sum ^= v.to_bits();
        env_sum = env_sum.wrapping_mul(0x100_0000_01b3);
    }
    format!(
        concat!(
            "{{\"detect_fraction\":{},\"mean_latency_us\":{},",
            "\"one_to_one\":{},\"scope_samples\":{},",
            "\"envelope_fnv\":\"{:016x}\",\"markers\":{}}}"
        ),
        num(result.detect_fraction),
        num(result.mean_latency_us),
        result.one_to_one,
        result.scope.len(),
        env_sum,
        result.scope.to_markers_json()
    )
}

/// Renders a detection/jamming session as a timeline report: one line per
/// event with VITA-style absolute timestamps.
pub fn session_report(events: &[CoreEvent], jams: &[JamEvent], epoch_secs: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>18}  event", "time (s)");
    let mut jam_iter = jams.iter().peekable();
    for e in events {
        let t = rjam_fpga::VitaTime::from_cycle(e.cycle(), epoch_secs);
        let label = match e {
            CoreEvent::XcorrDetection { metric, .. } => {
                format!("xcorr detection (metric {metric})")
            }
            CoreEvent::EnergyHigh { .. } => "energy rise".to_string(),
            CoreEvent::EnergyLow { .. } => "energy fall".to_string(),
            CoreEvent::JamTrigger { .. } => "JAM TRIGGER".to_string(),
        };
        let _ = writeln!(out, "{:>18.7}  {label}", t.as_secs_f64());
        // Interleave the jam burst that this trigger started, if any.
        if matches!(e, CoreEvent::JamTrigger { .. }) {
            if let Some(j) = jam_iter.next() {
                let ts = rjam_fpga::VitaTime::from_cycle(j.start_cycle, epoch_secs);
                let dur = j
                    .end_cycle
                    .map(|end| format!("{:.1} us", (end - j.start_cycle) as f64 / 100.0))
                    .unwrap_or_else(|| "ongoing".to_string());
                let _ = writeln!(
                    out,
                    "{:>18.7}  -> RF burst ({dur}, response {:.0} ns)",
                    ts.as_secs_f64(),
                    j.response_ns()
                );
            }
        }
    }
    let _ = writeln!(out, "{} events, {} jam bursts", events.len(), jams.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjam_mac::IperfReport;

    #[test]
    fn detection_csv_shape() {
        let pts = vec![
            DetectionPoint {
                snr_db: -3.0,
                p_detect: 0.36,
                triggers_per_frame: 0.4,
            },
            DetectionPoint {
                snr_db: 3.0,
                p_detect: 0.99,
                triggers_per_frame: 1.0,
            },
        ];
        let csv = detection_csv(&pts);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "snr_db,p_detect,triggers_per_frame");
        assert!(lines[1].starts_with("-3.00,0.36"));
        // Parse back.
        for line in &lines[1..] {
            let fields: Vec<f64> = line.split(',').map(|f| f.parse().unwrap()).collect();
            assert_eq!(fields.len(), 3);
        }
    }

    #[test]
    fn jamming_csv_roundtrips_fields() {
        let pts = vec![JammingPoint {
            sir_ap_db: 15.94,
            report: IperfReport::from_counts(100, 50, 1470, 10.0, vec![], true, 24.0, 7, 700.0),
        }];
        let csv = jamming_csv(&pts);
        let row = csv.lines().nth(1).unwrap();
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), 7);
        assert_eq!(fields[0], "15.94");
        assert_eq!(fields[4], "7");
        assert_eq!(fields[6], "true");
    }

    #[test]
    fn roc_and_energy_headers() {
        assert!(roc_csv(&[]).starts_with("threshold,"));
        assert!(energy_csv(&[]).starts_with("jammer,"));
    }

    #[test]
    fn time_to_detect_csv_encodes_missing_alarm_as_minus_one() {
        use crate::campaign::{JammerUnderTest, TimeToDetectPoint};
        let pts = vec![
            TimeToDetectPoint {
                jammer: JammerUnderTest::ReactiveLong,
                sir_ap_db: 1.0,
                frames: 4590,
                frames_to_alarm: Some(32),
                alarms: 2,
                prr_percent: 3.25,
            },
            TimeToDetectPoint {
                jammer: JammerUnderTest::Off,
                sir_ap_db: 1.0,
                frames: 4590,
                frames_to_alarm: None,
                alarms: 0,
                prr_percent: 97.5,
            },
        ];
        let csv = time_to_detect_csv(&pts);
        assert!(csv.starts_with("jammer,sir_ap_db,frames,frames_to_alarm,alarms,prr_percent\n"));
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert_eq!(rows.len(), 2);
        let jammed: Vec<&str> = rows[0].split(',').collect();
        assert_eq!(jammed[0], "Reactive Jammer 0.1ms Uptime");
        assert_eq!(jammed[3], "32");
        assert_eq!(jammed[4], "2");
        let clean: Vec<&str> = rows[1].split(',').collect();
        assert_eq!(clean[3], "-1");
        assert_eq!(clean[4], "0");
    }

    #[test]
    fn json_exports_parse_and_roundtrip_values() {
        let det = vec![DetectionPoint {
            snr_db: -3.5,
            p_detect: 0.362_517,
            triggers_per_frame: 0.25,
        }];
        let doc = rjam_obs::json::parse(&detection_json(&det)).expect("valid JSON");
        let rows = doc.as_object().unwrap()["detection"].as_array().unwrap();
        assert_eq!(rows.len(), 1);
        let row = rows[0].as_object().unwrap();
        assert_eq!(row["snr_db"].as_f64(), Some(-3.5));
        assert_eq!(row["p_detect"].as_f64(), Some(0.362_517));

        let jam = vec![JammingPoint {
            sir_ap_db: 15.94,
            report: IperfReport::from_counts(
                100,
                50,
                1470,
                10.0,
                vec![1.5, 2.5],
                true,
                24.0,
                7,
                700.0,
            ),
        }];
        let doc = rjam_obs::json::parse(&jamming_json(&jam)).expect("valid JSON");
        let row = doc.as_object().unwrap()["jamming"].as_array().unwrap()[0]
            .as_object()
            .unwrap();
        assert_eq!(row["sent"].as_u64(), Some(100));
        assert_eq!(row["jam_bursts"].as_u64(), Some(7));
        assert_eq!(row["per_second_kbps"].as_array().unwrap().len(), 2);

        let roc = vec![RocPoint {
            threshold: 0.3,
            fa_per_s: 12.25,
            p_detect: 0.875,
        }];
        let doc = rjam_obs::json::parse(&roc_json(&roc)).expect("valid JSON");
        assert_eq!(
            doc.as_object().unwrap()["roc"].as_array().unwrap()[0]
                .as_object()
                .unwrap()["fa_per_s"]
                .as_f64(),
            Some(12.25)
        );

        let doc = rjam_obs::json::parse(&false_alarm_json(0.125)).expect("valid JSON");
        assert_eq!(doc.as_object().unwrap()["fa_per_s"].as_f64(), Some(0.125));
    }

    #[test]
    fn json_export_is_canonical_wrt_bits() {
        // Two bit-identical result sets produce byte-identical JSON; a
        // one-ULP change does not. This is exactly the determinism surface
        // CI diffs across thread counts.
        let p = |pd: f64| {
            vec![DetectionPoint {
                snr_db: 3.0,
                p_detect: pd,
                triggers_per_frame: 1.0,
            }]
        };
        let base = 0.362_517_f64;
        assert_eq!(detection_json(&p(base)), detection_json(&p(base)));
        let nudged = f64::from_bits(base.to_bits() + 1);
        assert_ne!(detection_json(&p(base)), detection_json(&p(nudged)));
    }

    #[test]
    fn wimax_json_digests_the_scope() {
        use rjam_channel::monitor::ScopeTrace;
        let mut scope = ScopeTrace::new(25e6);
        scope.capture(&[rjam_sdr::complex::Cf64::new(0.5, 0.0); 8]);
        scope.mark(3, "frame");
        let a = WimaxResult {
            detect_fraction: 1.0,
            mean_latency_us: 2.5,
            scope,
            one_to_one: true,
        };
        let json = wimax_json(&a);
        let doc = rjam_obs::json::parse(&json).expect("valid JSON");
        let obj = doc.as_object().unwrap();
        assert_eq!(obj["scope_samples"].as_u64(), Some(8));
        assert_eq!(obj["one_to_one"].as_str(), None); // bool, not string
        assert!(json.contains("\"markers\":"));
        // Envelope digest reacts to the samples.
        let mut b = a.clone();
        b.scope.capture(&[rjam_sdr::complex::Cf64::new(0.1, 0.0)]);
        assert_ne!(json, wimax_json(&b));
    }

    #[test]
    fn session_report_renders_events() {
        let events = vec![
            CoreEvent::EnergyHigh {
                sample: 100,
                cycle: 401,
            },
            CoreEvent::XcorrDetection {
                sample: 163,
                cycle: 653,
                metric: 140_000,
            },
            CoreEvent::JamTrigger {
                sample: 163,
                cycle: 653,
            },
        ];
        let jams = vec![rjam_fpga::jammer::JamEvent {
            trigger_sample: 163,
            trigger_cycle: 653,
            start_cycle: 661,
            end_cycle: Some(3161),
        }];
        let rep = session_report(&events, &jams, 1000);
        assert!(rep.contains("energy rise"), "{rep}");
        assert!(rep.contains("JAM TRIGGER"), "{rep}");
        assert!(rep.contains("25.0 us"), "{rep}");
        assert!(rep.contains("response 80 ns"), "{rep}");
        assert!(rep.contains("3 events, 1 jam bursts"), "{rep}");
    }

    #[test]
    fn session_report_from_live_core() {
        use crate::{DetectionPreset, JammerPreset, ReactiveJammer};
        let mut j = ReactiveJammer::new(
            DetectionPreset::EnergyRise { threshold_db: 6.0 },
            JammerPreset::Reactive {
                uptime_s: 4e-5,
                waveform: rjam_fpga::JamWaveform::Wgn,
            },
        );
        let mut stream = vec![rjam_sdr::complex::Cf64::new(0.001, 0.0); 300];
        stream.extend(vec![rjam_sdr::complex::Cf64::new(0.2, 0.2); 400]);
        j.process_block(&stream);
        let rep = session_report(j.events(), j.jam_events(), 0);
        assert!(rep.contains("JAM TRIGGER"), "{rep}");
        assert!(rep.contains("RF burst"), "{rep}");
    }
}
