//! The top-level jammer handle — the programmatic equivalent of the
//! paper's GNU Radio Companion GUI (§2.5).
//!
//! A [`ReactiveJammer`] owns the FPGA core model, applies personalities at
//! run time over the register bus (counting the writes, since personality
//! switches cost only settings-bus latency on real hardware), streams
//! receive samples and surfaces detections, jam bursts and host feedback.

use crate::presets::{build_config, DetectionPreset, JammerPreset};
use rjam_fpga::core::CoreOutput;
use rjam_fpga::jammer::JamEvent;
use rjam_fpga::{CoreEvent, DspCore};
use rjam_sdr::complex::{Cf64, IqI16};

/// Default post-detection lockout in samples (suppresses double counting
/// within one frame; ~40 us at 25 MSPS).
pub const DEFAULT_LOCKOUT: u64 = 1000;

/// Reusable buffers for [`ReactiveJammer::process_block_into`]: the
/// quantized receive block, the fixed-point transmit block and the
/// per-sample activity mask. Hold one per streaming loop and the jammer's
/// block path performs no per-block allocation.
#[derive(Debug, Default)]
pub struct BlockScratch {
    quant: Vec<IqI16>,
    tx: Vec<IqI16>,
    active: Vec<bool>,
}

impl BlockScratch {
    /// Empty scratch buffers; capacity grows to the largest block seen.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-sample jammer activity mask from the last block.
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// Fixed-point transmit waveform from the last block (zeros while
    /// silent), time-aligned with the input.
    pub fn tx(&self) -> &[IqI16] {
        &self.tx
    }

    /// The transmit waveform converted to floating point (allocates).
    pub fn tx_cf64(&self) -> Vec<Cf64> {
        self.tx.iter().map(|s| s.to_cf64()).collect()
    }
}

/// A configured reactive jamming instance.
///
/// ```
/// use rjam_core::{DetectionPreset, JammerPreset, ReactiveJammer};
/// use rjam_fpga::JamWaveform;
/// use rjam_sdr::complex::Cf64;
///
/// // Arm: detect WiFi short preambles, answer with 10 us noise bursts.
/// let mut jammer = ReactiveJammer::new(
///     DetectionPreset::WifiShortPreamble { threshold: 0.35 },
///     JammerPreset::Reactive { uptime_s: 10e-6, waveform: JamWaveform::Wgn },
/// );
///
/// // Stream a WiFi frame at 25 MSPS through it.
/// let frame = rjam_phy80211::tx::Frame::new(rjam_phy80211::Rate::R12, vec![0xAB; 64]);
/// let native = rjam_phy80211::tx::modulate_frame(&frame);
/// let wave = rjam_sdr::resample::to_usrp_rate(&native, rjam_sdr::WIFI_SAMPLE_RATE);
/// let rx: Vec<Cf64> = wave.iter().map(|s| s.scale(0.5)).collect();
/// let (_tx, active) = jammer.process_block(&rx);
/// assert!(active.iter().any(|&a| a), "the frame gets jammed");
/// ```
#[derive(Debug)]
pub struct ReactiveJammer {
    core: DspCore,
    detection: DetectionPreset,
    reaction: JammerPreset,
    lockout: u64,
    /// Cumulative register writes spent on reconfiguration.
    reconfig_writes: u64,
}

impl ReactiveJammer {
    /// Creates a jammer with the given personalities applied.
    pub fn new(detection: DetectionPreset, reaction: JammerPreset) -> Self {
        Self::from_presets(&detection, &reaction, DEFAULT_LOCKOUT)
    }

    /// Creates a jammer from borrowed personalities with an explicit
    /// lockout — the campaign worker-pool constructor: the spec keeps
    /// ownership of its presets and each worker clones them exactly once,
    /// with the lockout programmed in the same configuration pass instead
    /// of a second register walk through [`ReactiveJammer::set_lockout`].
    pub fn from_presets(
        detection: &DetectionPreset,
        reaction: &JammerPreset,
        lockout: u64,
    ) -> Self {
        let mut core = DspCore::new();
        let cfg = build_config(detection, reaction, lockout);
        let writes = core.configure(&cfg);
        ReactiveJammer {
            core,
            detection: detection.clone(),
            reaction: reaction.clone(),
            lockout,
            reconfig_writes: writes,
        }
    }

    /// Creates a jammer from a raw core configuration — the escape hatch
    /// for setups the preset vocabulary does not cover (custom templates,
    /// sequence-mode trigger combinations, energy-fall triggers).
    ///
    /// Later personality setters reprogram from the preset vocabulary and
    /// will overwrite the custom configuration.
    pub fn from_config(cfg: &rjam_fpga::CoreConfig) -> Self {
        let mut core = DspCore::new();
        let writes = core.configure(cfg);
        ReactiveJammer {
            core,
            detection: DetectionPreset::EnergyRise {
                threshold_db: cfg.energy_high_db,
            },
            reaction: JammerPreset::Monitor,
            lockout: cfg.lockout,
            reconfig_writes: writes,
        }
    }

    /// Current detection personality.
    pub fn detection(&self) -> &DetectionPreset {
        &self.detection
    }

    /// Current jamming personality.
    pub fn reaction(&self) -> &JammerPreset {
        &self.reaction
    }

    /// Switches the detection personality at run time. Returns the number
    /// of register writes it cost (the reconfiguration latency currency).
    pub fn set_detection(&mut self, detection: DetectionPreset) -> u64 {
        self.detection = detection;
        self.reprogram()
    }

    /// Switches the jamming personality at run time.
    pub fn set_reaction(&mut self, reaction: JammerPreset) -> u64 {
        self.reaction = reaction;
        self.reprogram()
    }

    /// Sets the detector lockout (refractory period) in samples.
    pub fn set_lockout(&mut self, samples: u64) -> u64 {
        self.lockout = samples;
        self.reprogram()
    }

    fn reprogram(&mut self) -> u64 {
        let cfg = build_config(&self.detection, &self.reaction, self.lockout);
        let writes = self.core.configure(&cfg);
        self.reconfig_writes += writes;
        writes
    }

    /// Total register writes spent on reconfiguration so far.
    pub fn reconfig_writes(&self) -> u64 {
        self.reconfig_writes
    }

    /// Processes one fixed-point receive sample.
    pub fn process(&mut self, rx: IqI16) -> CoreOutput {
        self.core.process(rx)
    }

    /// Processes a floating-point 25 MSPS block through the ADC quantizer
    /// and the core; returns the transmitted jamming waveform time-aligned
    /// with the input (zeros while silent) and the per-sample activity mask.
    ///
    /// Allocates four buffers per call. Campaign inner loops stream many
    /// blocks through one jammer — use [`ReactiveJammer::process_block_into`]
    /// with a reused [`BlockScratch`] there.
    pub fn process_block(&mut self, rx: &[Cf64]) -> (Vec<Cf64>, Vec<bool>) {
        let mut scratch = BlockScratch::new();
        self.process_block_into(rx, &mut scratch);
        (scratch.tx_cf64(), std::mem::take(&mut scratch.active))
    }

    /// Allocation-free block processing: quantizes `rx` and streams it
    /// through the core entirely within `scratch`'s reusable buffers.
    /// After the first few blocks the buffers reach steady capacity and
    /// the per-block heap traffic drops to zero — this is the campaign
    /// engine's datapath.
    pub fn process_block_into(&mut self, rx: &[Cf64], scratch: &mut BlockScratch) {
        scratch.quant.clear();
        scratch.quant.reserve(rx.len());
        scratch
            .quant
            .extend(rx.iter().map(|&s| IqI16::from_cf64(s)));
        self.core
            .process_block_into(&scratch.quant, &mut scratch.tx, &mut scratch.active);
    }

    /// Detection/trigger event log.
    pub fn events(&self) -> &[CoreEvent] {
        self.core.events()
    }

    /// Jam bursts with cycle-accurate timing.
    pub fn jam_events(&self) -> &[JamEvent] {
        self.core.jam_events()
    }

    /// Reads and clears host feedback flags (paper's "synchro flags").
    pub fn take_feedback(&mut self) -> u32 {
        self.core.take_feedback()
    }

    /// Direct access to the underlying core (advanced host processing).
    pub fn core_mut(&mut self) -> &mut DspCore {
        &mut self.core
    }

    /// Resets streaming state and logs, keeping configuration.
    pub fn reset(&mut self) {
        self.core.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjam_fpga::JamWaveform;
    use rjam_sdr::resample::to_usrp_rate;

    fn wifi_frame_at_25msps(snr_scale: f64) -> Vec<Cf64> {
        let frame = rjam_phy80211::tx::Frame::new(rjam_phy80211::Rate::R12, vec![0xAB; 100]);
        let wave = rjam_phy80211::tx::modulate_frame(&frame);
        let up = to_usrp_rate(&wave, 20.0e6);
        up.iter().map(|s| s.scale(snr_scale)).collect()
    }

    #[test]
    fn detects_and_jams_wifi_frame() {
        let mut j = ReactiveJammer::new(
            DetectionPreset::WifiShortPreamble { threshold: 0.5 },
            JammerPreset::Reactive {
                uptime_s: 1e-5,
                waveform: JamWaveform::Wgn,
            },
        );
        let mut stream = vec![Cf64::ZERO; 1000];
        stream.extend(wifi_frame_at_25msps(2.0)); // strong, clean
        let (_tx, active) = j.process_block(&stream);
        assert!(active.iter().any(|&a| a), "must jam the frame");
        assert!(!j.events().is_empty());
        // Burst length is 250 samples (10 us).
        assert_eq!(active.iter().filter(|&&a| a).count(), 250);
    }

    #[test]
    fn scratch_path_matches_allocating_path_across_blocks() {
        let mk = || {
            ReactiveJammer::new(
                DetectionPreset::WifiShortPreamble { threshold: 0.5 },
                JammerPreset::Reactive {
                    uptime_s: 1e-5,
                    waveform: JamWaveform::Wgn,
                },
            )
        };
        let mut a = mk();
        let mut b = mk();
        let mut scratch = BlockScratch::new();
        let mut stream = vec![Cf64::ZERO; 1000];
        stream.extend(wifi_frame_at_25msps(2.0));
        // Stream the same signal twice as two blocks each; the scratch is
        // reused across blocks (the whole point) and must match exactly.
        for block in [&stream[..700], &stream[700..]] {
            let (tx_alloc, active_alloc) = a.process_block(block);
            b.process_block_into(block, &mut scratch);
            assert_eq!(scratch.active(), &active_alloc[..]);
            assert_eq!(scratch.tx_cf64(), tx_alloc);
            assert_eq!(scratch.tx().len(), block.len());
        }
        assert_eq!(a.events().len(), b.events().len());
    }

    #[test]
    fn monitor_mode_detects_without_transmitting() {
        let mut j = ReactiveJammer::new(
            DetectionPreset::WifiShortPreamble { threshold: 0.5 },
            JammerPreset::Monitor,
        );
        let mut stream = vec![Cf64::ZERO; 500];
        stream.extend(wifi_frame_at_25msps(2.0));
        let (_tx, active) = j.process_block(&stream);
        assert!(active.iter().all(|&a| !a));
        assert!(j
            .events()
            .iter()
            .any(|e| matches!(e, CoreEvent::XcorrDetection { .. })));
    }

    #[test]
    fn personality_switch_counts_register_writes() {
        let mut j = ReactiveJammer::new(
            DetectionPreset::EnergyRise { threshold_db: 10.0 },
            JammerPreset::Monitor,
        );
        let before = j.reconfig_writes();
        let cost = j.set_reaction(JammerPreset::Continuous);
        assert!(cost > 0 && cost <= 24, "cost {cost} writes");
        assert_eq!(j.reconfig_writes(), before + cost);
    }

    #[test]
    fn switch_between_reactive_and_continuous_without_reset() {
        let mut j = ReactiveJammer::new(
            DetectionPreset::EnergyRise { threshold_db: 6.0 },
            JammerPreset::Continuous,
        );
        let (_tx, active) = j.process_block(&vec![Cf64::ZERO; 100]);
        assert!(active.iter().all(|&a| a), "continuous transmits always");
        j.set_reaction(JammerPreset::Monitor);
        let (_tx, active2) = j.process_block(&vec![Cf64::ZERO; 100]);
        assert!(active2.iter().all(|&a| !a), "monitor transmits never");
    }

    #[test]
    fn feedback_flags_after_detection() {
        let mut j = ReactiveJammer::new(
            DetectionPreset::WifiShortPreamble { threshold: 0.5 },
            JammerPreset::Reactive {
                uptime_s: 4e-5,
                waveform: JamWaveform::Wgn,
            },
        );
        let mut stream = vec![Cf64::ZERO; 200];
        stream.extend(wifi_frame_at_25msps(2.0));
        j.process_block(&stream);
        let fb = j.take_feedback();
        assert!(fb & rjam_fpga::regs::host_feedback::XCORR_DET != 0);
        assert!(fb & rjam_fpga::regs::host_feedback::JAMMED != 0);
    }

    #[test]
    fn surgical_delay_places_burst() {
        let mut j = ReactiveJammer::new(
            DetectionPreset::WifiShortPreamble { threshold: 0.5 },
            JammerPreset::Surgical {
                uptime_s: 4e-6,
                delay_s: 40e-6,
                waveform: JamWaveform::Wgn,
            },
        );
        let mut stream = vec![Cf64::ZERO; 100];
        stream.extend(wifi_frame_at_25msps(2.0));
        stream.extend(vec![Cf64::ZERO; 3000]);
        let (_tx, active) = j.process_block(&stream);
        let det = j
            .events()
            .iter()
            .find(|e| matches!(e, CoreEvent::JamTrigger { .. }))
            .unwrap()
            .sample() as usize;
        let first_jam = active.iter().position(|&a| a).unwrap();
        // delay 40 us = 1000 samples (+2 init samples).
        assert_eq!(first_jam, det + 1000 + 2);
    }
}
