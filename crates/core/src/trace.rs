//! Traced jam episodes: one causal chain per frame, MAC emission to jam
//! burst and back.
//!
//! [`EpisodeTracer`] is the episode driver the trace layer needs: it mints
//! a [`FrameId`] when the MAC emits a frame, modulates it (PHY), carries it
//! across the paper's five-port cabled network (channel, with the Table 1
//! insertion loss on the span), streams it through a freshly armed
//! [`ReactiveJammer`] (FPGA detection, trigger arbitration, capture-FIFO
//! occupancy, jam-burst TX) and closes the chain with the MAC outcome —
//! delivered, jammed, or missed. Every stage lands in one [`TraceSink`] on
//! a shared nanosecond clock, so a single exported document shows *where*
//! each frame's nanoseconds went.
//!
//! With observability compiled out (`--no-default-features`) the sink is a
//! ZST and every recording call disappears; the episodes still run and the
//! [`EpisodeReport`]s stay accurate because outcomes are derived from the
//! jammer's activity mask, not from the trace.

use crate::jammer::{BlockScratch, ReactiveJammer};
use crate::presets::{DetectionPreset, JammerPreset};
use rjam_channel::fiveport::{FivePortNetwork, Port};
use rjam_channel::NoiseSource;
use rjam_fpga::trace::NS_PER_SAMPLE;
use rjam_fpga::{CoreEvent, CLOCKS_PER_SAMPLE};
use rjam_obs::trace::{stage, FrameId, FrameIdGen, Outcome, TraceDoc, TraceSink};
use rjam_sdr::complex::Cf64;
use rjam_sdr::rng::Rng;

/// Noise lead-in before each frame, in samples (16 µs at 25 MSPS).
const LEAD_SAMPLES: usize = 400;

/// Noise tail after each frame, in samples.
const TAIL_SAMPLES: usize = 400;

/// Received frame power at the jammer's RX port (linear full-scale units)
/// — 20 dB above the episode noise floor, matching the operator console's
/// live exercises.
const RX_POWER: f64 = 0.02;

/// What one traced episode did, independent of the trace itself.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpisodeReport {
    /// Correlation ID minted at MAC emission.
    pub frame: FrameId,
    /// How the frame ended: delivered, jammed, or missed.
    pub outcome: Outcome,
    /// Detector fires (xcorr or energy) logged during the episode.
    pub detections: usize,
    /// Jam bursts transmitted.
    pub jam_bursts: usize,
    /// Episode length in receive samples.
    pub stream_samples: usize,
}

/// Drives traced jam episodes onto one shared timeline.
///
/// Episodes are laid out back-to-back on a monotone nanosecond clock
/// (each episode's FPGA cycle 0 is pinned to the tracer's cursor), so a
/// multi-episode capture loads into Perfetto as one continuous timeline
/// with one track per pipeline stage.
#[derive(Debug)]
pub struct EpisodeTracer {
    sink: TraceSink,
    ids: FrameIdGen,
    net: FivePortNetwork,
    cursor_ns: u64,
    scratch: BlockScratch,
}

impl EpisodeTracer {
    /// Creates a tracer whose sink holds at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EpisodeTracer {
            sink: TraceSink::with_capacity(capacity),
            ids: FrameIdGen::new(),
            net: FivePortNetwork::paper_table1(),
            cursor_ns: 0,
            scratch: BlockScratch::new(),
        }
    }

    /// Frames traced so far.
    pub fn frames_traced(&self) -> u64 {
        self.ids.minted()
    }

    /// Events dropped by the sink for lack of capacity.
    pub fn dropped(&self) -> u64 {
        self.sink.dropped()
    }

    /// Runs one frame episode: emit, modulate, propagate, detect, jam,
    /// resolve. Returns what happened; the causal trace accumulates in the
    /// tracer's sink.
    pub fn run_episode(
        &mut self,
        det: &DetectionPreset,
        reaction: &JammerPreset,
        seed: u64,
    ) -> EpisodeReport {
        let fid = self.ids.mint();
        let t0 = self.cursor_ns; // episode FPGA cycle 0

        // --- MAC emission: build the frame the client wants delivered.
        let mut rng = Rng::seed_from(seed);
        let mut psdu = vec![0u8; 80];
        rng.fill_bytes(&mut psdu);
        let payload = psdu.len();
        let frame = rjam_phy80211::tx::Frame::new(rjam_phy80211::Rate::R12, psdu);

        // --- PHY: modulate and resample to the USRP rate.
        let native = rjam_phy80211::tx::modulate_frame(&frame);
        let mut wave = rjam_sdr::resample::to_usrp_rate(&native, rjam_sdr::WIFI_SAMPLE_RATE);

        // --- Channel: the client's waveform crosses the five-port network
        // to the jammer's RX port, attenuated by the Table 1 insertion
        // loss. Power is set so the *received* level is RX_POWER.
        rjam_sdr::power::scale_to_power(&mut wave, RX_POWER);
        let noise_p = RX_POWER / rjam_sdr::power::db_to_lin(20.0);
        let mut noise = NoiseSource::new(noise_p, rng.fork());
        let mut stream: Vec<Cf64> = noise.block(LEAD_SAMPLES);
        stream.extend(wave.iter().map(|&s| s + noise.next_sample()));
        stream.extend(noise.block(TAIL_SAMPLES));

        let frame_t0 = t0 + LEAD_SAMPLES as u64 * NS_PER_SAMPLE;
        let frame_t1 = frame_t0 + wave.len() as u64 * NS_PER_SAMPLE;
        self.sink
            .instant(fid, frame_t0, stage::MAC, "emit", payload as i64, 0);
        self.sink.span_begin(fid, frame_t0, stage::PHY, "tx");
        self.sink.span_end(fid, frame_t1, stage::PHY, "tx");
        rjam_channel::trace::trace_propagation(
            &mut self.sink,
            fid,
            frame_t0,
            frame_t1 - frame_t0,
            &self.net,
            Port::Client,
            Port::JammerRx,
        );
        self.sink.instant(
            fid,
            frame_t0,
            stage::FPGA,
            "rx_first_sample",
            LEAD_SAMPLES as i64,
            0,
        );

        // --- FPGA + jammer: fresh core, armed with the requested
        // personalities, capture FIFO live so occupancy is observable.
        let mut j = ReactiveJammer::new(det.clone(), reaction.clone());
        j.core_mut().enable_capture(16, 240, 1024);
        // Allocation-free datapath: the tracer's scratch buffers are
        // reused across episodes, same as the campaign engine's shards.
        j.process_block_into(&stream, &mut self.scratch);
        let active = self.scratch.active();
        let eos_cycle = stream.len() as u64 * CLOCKS_PER_SAMPLE;
        rjam_fpga::trace::trace_frame(
            &mut self.sink,
            fid,
            t0,
            j.events(),
            j.jam_events(),
            eos_cycle,
        );
        let occupancy = j.core_mut().capture_occupancy();
        let overflow = j.core_mut().capture_overflow();
        let t_end = t0 + stream.len() as u64 * NS_PER_SAMPLE;
        rjam_fpga::trace::trace_fifo(&mut self.sink, fid, t_end, occupancy, overflow);

        // --- MAC outcome: the burst either overlapped the frame on air
        // (jammed), landed outside it (missed), or never happened
        // (delivered).
        let frame_range = LEAD_SAMPLES..LEAD_SAMPLES + wave.len();
        let jam_in_frame = active[frame_range].iter().any(|&a| a);
        let jam_any = active.iter().any(|&a| a);
        let outcome = if jam_in_frame {
            Outcome::Jammed
        } else if jam_any {
            Outcome::Missed
        } else {
            Outcome::Delivered
        };
        let detections = j
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    CoreEvent::XcorrDetection { .. } | CoreEvent::EnergyHigh { .. }
                )
            })
            .count();
        let jam_bursts = j.jam_events().len();
        self.sink.instant(
            fid,
            t_end,
            stage::MAC,
            "outcome",
            outcome.code(),
            detections as i64,
        );

        // Publish the episode's counters into the process-wide registry so
        // a trailing `--metrics-out` snapshot reflects the traced run too.
        j.core_mut().flush_obs();

        // Next episode starts one sample after this one ends.
        self.cursor_ns = t_end + NS_PER_SAMPLE;

        EpisodeReport {
            frame: fid,
            outcome,
            detections,
            jam_bursts,
            stream_samples: stream.len(),
        }
    }

    /// Freezes the accumulated trace into an analysable document.
    pub fn to_doc(&self) -> TraceDoc {
        self.sink.to_doc()
    }
}

/// Runs the default traced capture: `episodes` frame episodes alternating
/// the energy-rise and WiFi-short-preamble detection paths against a 10 µs
/// reactive WGN burst — the same exercise `rjamctl stats` runs, now with
/// the causal chain recorded. Returns the reports and the frozen trace.
pub fn default_traced_capture(episodes: usize, seed0: u64) -> (Vec<EpisodeReport>, TraceDoc) {
    let mut tracer = EpisodeTracer::new(4096.max(episodes * 32));
    let reaction = JammerPreset::Reactive {
        uptime_s: 10e-6,
        waveform: rjam_fpga::JamWaveform::Wgn,
    };
    let mut reports = Vec::with_capacity(episodes);
    for k in 0..episodes as u64 {
        let det = if k % 2 == 0 {
            DetectionPreset::WifiShortPreamble { threshold: 0.35 }
        } else {
            DetectionPreset::EnergyRise { threshold_db: 10.0 }
        };
        reports.push(tracer.run_episode(&det, &reaction, seed0 + k));
    }
    (reports, tracer.to_doc())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_reports_are_deterministic_and_jammed() {
        let mut a = EpisodeTracer::new(1024);
        let mut b = EpisodeTracer::new(1024);
        let det = DetectionPreset::WifiShortPreamble { threshold: 0.35 };
        let reaction = JammerPreset::Reactive {
            uptime_s: 10e-6,
            waveform: rjam_fpga::JamWaveform::Wgn,
        };
        let ra = a.run_episode(&det, &reaction, 42);
        let rb = b.run_episode(&det, &reaction, 42);
        assert_eq!(ra, rb, "same seed, same episode");
        assert_eq!(ra.outcome, Outcome::Jammed);
        assert!(ra.detections > 0);
        assert!(ra.jam_bursts > 0);
    }

    #[test]
    fn monitor_mode_delivers() {
        let mut t = EpisodeTracer::new(1024);
        let r = t.run_episode(
            &DetectionPreset::WifiShortPreamble { threshold: 0.35 },
            &JammerPreset::Monitor,
            7,
        );
        assert_eq!(r.outcome, Outcome::Delivered);
        assert_eq!(r.jam_bursts, 0);
        assert!(r.detections > 0, "monitor still detects");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn traced_episode_has_full_causal_chain() {
        let (reports, doc) = default_traced_capture(2, 0x7ACE);
        doc.validate().unwrap();
        assert_eq!(reports.len(), 2);
        let frames = doc.frames();
        assert_eq!(frames.len(), 2, "one FrameTrace per episode");
        // Every jammed frame must expose the whole chain and a stage
        // decomposition that sums exactly to the trigger-to-TX latency.
        let mut jammed = 0;
        for ft in &frames {
            if ft.outcome() != Some(Outcome::Jammed) {
                continue;
            }
            jammed += 1;
            assert!(ft.has_full_chain(), "frame {:?}", ft.frame);
            let t2t = ft.trigger_to_tx_ns().expect("trigger-to-TX");
            // The first burst's stage decomposition (programmed delay, if
            // any, plus the 8-cycle TX init) sums exactly to it.
            let delay_ns = ft.span(stage::FPGA, "delay").map_or(0, |(t0, t1)| t1 - t0);
            let init_ns = ft
                .span(stage::FPGA, "tx_init")
                .map_or(0, |(t0, t1)| t1 - t0);
            assert_eq!(
                delay_ns + init_ns,
                t2t,
                "delay+tx_init sum to trigger-to-TX"
            );
            let resp = ft.response_ns().expect("response latency");
            assert!(resp >= t2t, "response includes detection time");
            assert!(
                resp as f64 <= crate::timeline::TimelineBudget::paper().t_resp_xcorr_ns,
                "response {resp} ns blows the paper budget"
            );
        }
        assert!(jammed >= 1, "at least one jammed frame in the capture");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn episodes_share_one_monotone_timeline() {
        let (_, doc) = default_traced_capture(3, 9);
        let frames = doc.frames();
        let emits: Vec<u64> = frames
            .iter()
            .map(|f| f.instant_t(stage::MAC, "emit").unwrap())
            .collect();
        assert!(
            emits.windows(2).all(|w| w[0] < w[1]),
            "episodes laid out back-to-back: {emits:?}"
        );
        // The channel span carries the Table 1 path (client -> jammer RX).
        let path = frames[0].instant_a(stage::CHANNEL, "path").unwrap();
        assert!(path > 0, "real insertion loss on the channel span");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn fifo_occupancy_recorded_when_capture_enabled() {
        let (_, doc) = default_traced_capture(1, 3);
        let frames = doc.frames();
        let occ = frames[0].instant_a(stage::FPGA, "fifo");
        assert!(occ.is_some(), "fifo instant present");
        assert!(occ.unwrap() > 0, "the triggering frame fills the FIFO");
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn disabled_build_still_reports_outcomes() {
        let (reports, doc) = default_traced_capture(2, 0x7ACE);
        assert!(doc.events.is_empty(), "no events with obs compiled out");
        assert!(reports.iter().any(|r| r.outcome == Outcome::Jammed));
    }
}
