//! Jamming timeline analysis (paper Fig. 5 / §3.1).
//!
//! The paper derives the system response budget analytically from hardware
//! latencies and then demonstrates it live. Both forms live here: the
//! static budget ([`TimelineBudget::paper`]) and the measured extraction of
//! `T_en_det`, `T_xcorr_det`, `T_init` and `T_resp` from a core's event log
//! given the known signal start.

use rjam_fpga::jammer::JamEvent;
use rjam_fpga::{CoreEvent, CLOCKS_PER_SAMPLE, ENERGY_WINDOW, TX_INIT_CYCLES, XCORR_LEN};

/// Nanoseconds per FPGA clock cycle (100 MHz).
const NS_PER_CYCLE: f64 = 10.0;

/// The analytic timing budget of the platform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimelineBudget {
    /// Worst-case energy detection time, ns.
    pub t_en_det_ns: f64,
    /// Cross-correlation detection time, ns.
    pub t_xcorr_det_ns: f64,
    /// TX pipeline initialization, ns.
    pub t_init_ns: f64,
    /// Total response via energy detection, ns.
    pub t_resp_energy_ns: f64,
    /// Total response via cross-correlation, ns.
    pub t_resp_xcorr_ns: f64,
}

impl TimelineBudget {
    /// The budget as derived in the paper: T_en_det < 1.28 us (32 samples),
    /// T_xcorr_det = 2.56 us (64 samples), T_init ~ 80 ns (8 cycles),
    /// T_resp <= 1.36 us / 2.64 us.
    pub fn paper() -> Self {
        let sample_ns = CLOCKS_PER_SAMPLE as f64 * NS_PER_CYCLE;
        let t_en = ENERGY_WINDOW as f64 * sample_ns;
        let t_x = XCORR_LEN as f64 * sample_ns;
        let t_i = TX_INIT_CYCLES as f64 * NS_PER_CYCLE;
        TimelineBudget {
            t_en_det_ns: t_en,
            t_xcorr_det_ns: t_x,
            t_init_ns: t_i,
            t_resp_energy_ns: t_en + t_i,
            t_resp_xcorr_ns: t_x + t_i,
        }
    }
}

/// Latencies measured from one detection/jam episode.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeasuredTimeline {
    /// Signal start to energy-rise trigger, ns (if an energy event fired).
    pub t_en_det_ns: Option<f64>,
    /// Signal start to cross-correlation trigger, ns (if one fired).
    pub t_xcorr_det_ns: Option<f64>,
    /// Jam trigger to RF out, ns.
    pub t_init_ns: Option<f64>,
    /// Signal start to RF out, ns.
    pub t_resp_ns: Option<f64>,
}

impl MeasuredTimeline {
    /// Compares each measured latency against its analytic budget and
    /// returns the violations as `(name, measured_ns, budget_ns)` rows.
    ///
    /// Measured values are reported raw — a response slower than the paper's
    /// bound is *flagged*, never clamped to it. `T_resp` is judged against
    /// the cross-correlation budget when a correlation detection fired
    /// (the slower path bounds the episode) and against the energy budget
    /// otherwise.
    pub fn over_budget(&self, budget: &TimelineBudget) -> Vec<(&'static str, f64, f64)> {
        let mut out = Vec::new();
        let mut check = |name: &'static str, measured: Option<f64>, limit: f64| {
            if let Some(v) = measured {
                if v > limit {
                    out.push((name, v, limit));
                }
            }
        };
        check("T_en_det", self.t_en_det_ns, budget.t_en_det_ns);
        check("T_xcorr_det", self.t_xcorr_det_ns, budget.t_xcorr_det_ns);
        check("T_init", self.t_init_ns, budget.t_init_ns);
        let resp_limit = if self.t_xcorr_det_ns.is_some() {
            budget.t_resp_xcorr_ns
        } else {
            budget.t_resp_energy_ns
        };
        check("T_resp", self.t_resp_ns, resp_limit);
        out
    }
}

/// Extracts the first episode's latencies from core logs.
///
/// `signal_start_sample` is the receive-stream index where the target
/// transmission began (known in a controlled experiment).
pub fn measure(
    events: &[CoreEvent],
    jams: &[JamEvent],
    signal_start_sample: u64,
) -> MeasuredTimeline {
    let start_cycle = signal_start_sample * CLOCKS_PER_SAMPLE;
    let after = |c: u64| (c.saturating_sub(start_cycle)) as f64 * NS_PER_CYCLE;
    let mut out = MeasuredTimeline::default();
    for e in events {
        if e.cycle() < start_cycle {
            continue;
        }
        match e {
            CoreEvent::EnergyHigh { cycle, .. } if out.t_en_det_ns.is_none() => {
                out.t_en_det_ns = Some(after(*cycle));
            }
            CoreEvent::XcorrDetection { cycle, .. } if out.t_xcorr_det_ns.is_none() => {
                out.t_xcorr_det_ns = Some(after(*cycle));
            }
            _ => {}
        }
    }
    if let Some(jam) = jams.iter().find(|j| j.trigger_cycle >= start_cycle) {
        out.t_init_ns = Some(jam.response_cycles() as f64 * NS_PER_CYCLE);
        out.t_resp_ns = Some(after(jam.start_cycle));
    }
    out
}

/// Renders the Fig. 5 comparison as a table of rows
/// `(name, budget_ns, measured_ns)`.
pub fn comparison_rows(
    budget: &TimelineBudget,
    m: &MeasuredTimeline,
) -> Vec<(&'static str, f64, Option<f64>)> {
    vec![
        ("T_en_det", budget.t_en_det_ns, m.t_en_det_ns),
        ("T_xcorr_det", budget.t_xcorr_det_ns, m.t_xcorr_det_ns),
        ("T_init", budget.t_init_ns, m.t_init_ns),
        ("T_resp", budget.t_resp_xcorr_ns, m.t_resp_ns),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budget_values() {
        let b = TimelineBudget::paper();
        assert_eq!(b.t_en_det_ns, 1280.0); // < 1.28 us
        assert_eq!(b.t_xcorr_det_ns, 2560.0); // 2.56 us
        assert_eq!(b.t_init_ns, 80.0); // 80 ns
        assert_eq!(b.t_resp_energy_ns, 1360.0); // <= 1.36 us
        assert_eq!(b.t_resp_xcorr_ns, 2640.0); // <= 2.64 us
    }

    #[test]
    fn measure_from_synthetic_logs() {
        let events = vec![
            CoreEvent::EnergyHigh {
                sample: 110,
                cycle: 441,
            },
            CoreEvent::XcorrDetection {
                sample: 163,
                cycle: 653,
                metric: 99999,
            },
            CoreEvent::JamTrigger {
                sample: 163,
                cycle: 653,
            },
        ];
        let jams = vec![JamEvent {
            trigger_sample: 163,
            trigger_cycle: 653,
            start_cycle: 661,
            end_cycle: Some(761),
        }];
        let m = measure(&events, &jams, 100);
        assert_eq!(m.t_en_det_ns, Some((441 - 400) as f64 * 10.0));
        assert_eq!(m.t_xcorr_det_ns, Some((653 - 400) as f64 * 10.0));
        assert_eq!(m.t_init_ns, Some(80.0));
        assert_eq!(m.t_resp_ns, Some((661 - 400) as f64 * 10.0));
    }

    #[test]
    fn events_before_signal_ignored() {
        let events = vec![
            CoreEvent::EnergyHigh {
                sample: 10,
                cycle: 41,
            }, // stale
            CoreEvent::EnergyHigh {
                sample: 120,
                cycle: 481,
            },
        ];
        let m = measure(&events, &[], 100);
        assert_eq!(m.t_en_det_ns, Some(810.0));
    }

    #[test]
    fn end_to_end_measured_within_budget() {
        // Drive the actual core and verify the measured numbers respect the
        // analytic budget.
        use rjam_fpga::{CoreConfig, DspCore, TriggerMode, TriggerSource};
        use rjam_sdr::complex::IqI16;
        let mut core = DspCore::new();
        core.configure(&CoreConfig {
            energy_high_db: 10.0,
            trigger_mode: TriggerMode::Any(vec![TriggerSource::EnergyHigh]),
            uptime_samples: 100,
            enabled: true,
            ..CoreConfig::default()
        });
        let mut stream = vec![IqI16::new(20, -20); 400];
        stream.extend(vec![IqI16::new(9000, 9000); 400]);
        core.process_block(&stream);
        let m = measure(core.events(), core.jam_events(), 400);
        let b = TimelineBudget::paper();
        let t_en = m.t_en_det_ns.expect("energy detection");
        assert!(t_en <= b.t_en_det_ns, "T_en_det {t_en} ns");
        let t_init = m.t_init_ns.expect("jam");
        assert!(t_init <= b.t_init_ns, "T_init {t_init} ns");
        let t_resp = m.t_resp_ns.expect("resp");
        assert!(t_resp <= b.t_resp_energy_ns, "T_resp {t_resp} ns");
    }

    #[test]
    fn over_budget_flags_slow_response_without_clamping() {
        // Synthetic episode whose T_resp blows the paper's 2.64 us xcorr
        // budget: signal starts at sample 100 (cycle 400), the correlator
        // fires late and the burst only reaches RF at cycle 1100 — 7 us
        // after signal start.
        let events = vec![
            CoreEvent::XcorrDetection {
                sample: 270,
                cycle: 1080,
                metric: 12345,
            },
            CoreEvent::JamTrigger {
                sample: 270,
                cycle: 1080,
            },
        ];
        let jams = vec![JamEvent {
            trigger_sample: 270,
            trigger_cycle: 1080,
            start_cycle: 1100,
            end_cycle: Some(1600),
        }];
        let m = measure(&events, &jams, 100);
        // The raw measurement must come through untouched...
        assert_eq!(m.t_resp_ns, Some(7000.0), "no clamping to the budget");
        assert_eq!(m.t_xcorr_det_ns, Some(6800.0));
        // ...and the violation must be flagged against the xcorr budget.
        let b = TimelineBudget::paper();
        let v = m.over_budget(&b);
        assert!(
            v.iter()
                .any(|&(n, got, lim)| n == "T_resp" && got == 7000.0 && lim == b.t_resp_xcorr_ns),
            "T_resp violation must be reported: {v:?}"
        );
        assert!(
            v.iter()
                .any(|&(n, got, _)| n == "T_xcorr_det" && got == 6800.0),
            "{v:?}"
        );
    }

    #[test]
    fn over_budget_empty_for_healthy_episode() {
        let events = vec![CoreEvent::EnergyHigh {
            sample: 110,
            cycle: 441,
        }];
        let jams = vec![JamEvent {
            trigger_sample: 110,
            trigger_cycle: 441,
            start_cycle: 449,
            end_cycle: Some(549),
        }];
        let m = measure(&events, &jams, 100);
        assert!(m.over_budget(&TimelineBudget::paper()).is_empty());
        // Without an xcorr detection, T_resp is judged against the tighter
        // energy budget: 490 ns is well inside 1.36 us.
        assert_eq!(m.t_resp_ns, Some(490.0));
    }

    #[test]
    fn comparison_rows_complete() {
        let rows = comparison_rows(&TimelineBudget::paper(), &MeasuredTimeline::default());
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].0, "T_en_det");
        assert!(rows.iter().all(|r| r.2.is_none()));
    }
}
