//! Autonomous jamming operations (paper §2.5: the GUI "can be easily
//! modified to provide an interface for more powerful host side processing
//! applications, thereby enabling complete, autonomous jamming
//! operations").
//!
//! [`AutonomousJammer`] closes that loop in software: it scans the band
//! with the energy differentiator, captures the activity it finds,
//! classifies the standard by correlating the capture against the template
//! codebook (WiFi STS/LTS and every WiMAX (IDcell, segment) hypothesis),
//! arms the matching protocol-aware personality, and jams — reverting to
//! scanning when the band goes quiet.

use crate::coeff::{wifi_short_template, wimax_template, Template};
use crate::jammer::ReactiveJammer;
use crate::presets::{DetectionPreset, JammerPreset};
use rjam_fpga::xcorr::Coeff3;
use rjam_fpga::CrossCorrelator;
use rjam_sdr::complex::{Cf64, IqI16};

/// The wireless standard a capture was classified as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StandardClass {
    /// 802.11a/g OFDM (matched the short-training-sequence template).
    Wifi,
    /// 802.16e OFDMA downlink from a specific base station.
    Wimax {
        /// Identified Cell ID.
        id_cell: u8,
        /// Identified segment.
        segment: u8,
    },
    /// Energy present but no template matched confidently.
    Unknown,
}

/// Peak normalized correlation of a capture against one template.
fn template_score(capture: &[Cf64], t: &Template) -> f64 {
    let ci: Vec<Coeff3> = t.coeff_i.iter().map(|&c| Coeff3::new(c)).collect();
    let cq: Vec<Coeff3> = t.coeff_q.iter().map(|&c| Coeff3::new(c)).collect();
    let mut xc = CrossCorrelator::new();
    xc.load_coeffs(&ci, &cq);
    let ideal = t.threshold_at_fraction(1.0) as f64;
    let mut peak = 0u64;
    for &s in capture {
        peak = peak.max(xc.push(IqI16::from_cf64(s)).metric);
    }
    peak as f64 / ideal.max(1.0)
}

/// Classification with per-hypothesis evidence.
#[derive(Clone, Debug)]
pub struct Classification {
    /// Best hypothesis.
    pub class: StandardClass,
    /// Score of the winning hypothesis (normalized correlation, 0..~1).
    pub score: f64,
    /// Score of the best WiFi hypothesis.
    pub wifi_score: f64,
    /// Score and identity of the best WiMAX hypothesis.
    pub wimax_score: f64,
}

/// Minimum normalized correlation to accept a classification. Matched
/// captures score 0.9+; noise and cross-standard captures peak near 0.45
/// (the sign-bit metric has a high floor on short windows), so 0.6 gives a
/// wide margin both ways.
pub const CLASSIFY_THRESHOLD: f64 = 0.60;

/// Classifies a 25 MSPS capture against the template codebook.
///
/// `wimax_cells` bounds the WiMAX search (scanning all 32x3 identities over
/// a long capture is affordable but rarely necessary; band plans are known).
pub fn classify_capture(capture: &[Cf64], wimax_cells: &[(u8, u8)]) -> Classification {
    let wifi_score = template_score(capture, &wifi_short_template());
    let mut best_wimax = (0.0f64, 0u8, 0u8);
    for &(id, seg) in wimax_cells {
        let s = template_score(capture, &wimax_template(id, seg));
        if s > best_wimax.0 {
            best_wimax = (s, id, seg);
        }
    }
    let (wimax_score, id_cell, segment) = best_wimax;
    let class = if wifi_score < CLASSIFY_THRESHOLD && wimax_score < CLASSIFY_THRESHOLD {
        StandardClass::Unknown
    } else if wifi_score >= wimax_score {
        StandardClass::Wifi
    } else {
        StandardClass::Wimax { id_cell, segment }
    };
    Classification {
        class,
        score: wifi_score.max(wimax_score),
        wifi_score,
        wimax_score,
    }
}

/// Operating state of the autonomous loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Watching the band with the energy differentiator.
    Scanning,
    /// Energy found; accumulating a capture for classification.
    Capturing,
    /// Armed with a protocol-aware personality and jamming.
    Engaged(StandardClass),
}

/// Jam-burst uptime while the victim link still shows signs of life.
const FULL_UPTIME_S: f64 = 100e-6;
/// Jam-burst uptime once a health alarm confirms the link has collapsed:
/// a quarter-length burst holds the kill at a quarter of the TX airtime.
const ECO_UPTIME_S: f64 = 25e-6;

/// The self-configuring jammer.
#[derive(Debug)]
pub struct AutonomousJammer {
    jammer: ReactiveJammer,
    mode: Mode,
    capture: Vec<Cf64>,
    /// Samples of capture to gather before classifying.
    capture_len: usize,
    /// Consecutive quiet samples before disengaging back to scan.
    idle_limit: u64,
    idle_run: u64,
    wimax_cells: Vec<(u8, u8)>,
    engagements: Vec<Classification>,
    /// True while a raised health alarm holds the personality at the
    /// shortened [`ECO_UPTIME_S`] jam burst.
    eco: bool,
}

impl AutonomousJammer {
    /// Creates an autonomous jammer scanning with the given energy-rise
    /// threshold (dB) and searching the given WiMAX identities.
    pub fn new(energy_db: f64, wimax_cells: Vec<(u8, u8)>) -> Self {
        let jammer = ReactiveJammer::new(
            DetectionPreset::EnergyRise {
                threshold_db: energy_db,
            },
            JammerPreset::Monitor,
        );
        AutonomousJammer {
            jammer,
            mode: Mode::Scanning,
            capture: Vec::new(),
            capture_len: 4000, // 160 us: several WiFi preambles / one WiMAX CP+code start
            idle_limit: 2_500_000, // 100 ms of silence disengages
            idle_run: 0,
            wimax_cells,
            engagements: Vec::new(),
            eco: false,
        }
    }

    /// Current operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Log of classifications that led to engagements.
    pub fn engagements(&self) -> &[Classification] {
        &self.engagements
    }

    /// Access to the underlying jammer (event logs, feedback).
    pub fn jammer(&self) -> &ReactiveJammer {
        &self.jammer
    }

    /// True while a health alarm holds the engaged personality at the
    /// energy-saving quarter-length jam burst.
    pub fn eco(&self) -> bool {
        self.eco
    }

    /// Feeds one link-health transition into the personality register
    /// path — the monitor's judgement driving the paper's "repurposed on
    /// the fly" register writes.
    ///
    /// A raised alarm means the victim link has already collapsed, so an
    /// engaged jammer de-escalates to the quarter-length `ECO_UPTIME_S`
    /// burst: the same trigger path keeps the kill at a quarter of the TX
    /// airtime. When the alarm clears (the link is recovering), the full
    /// `FULL_UPTIME_S` burst is re-armed. Baselines and run summaries
    /// are ignored.
    pub fn on_health_event(&mut self, ev: &rjam_obs::health::HealthEvent) {
        use rjam_obs::health::HealthEvent;
        match ev {
            HealthEvent::AlarmRaised { .. }
                if !self.eco && matches!(self.mode, Mode::Engaged(_)) =>
            {
                self.eco = true;
                self.jammer.set_reaction(JammerPreset::Reactive {
                    uptime_s: ECO_UPTIME_S,
                    waveform: rjam_fpga::JamWaveform::Wgn,
                });
                self.note_transition(
                    "core.auto_health_deescalate",
                    "auto_health_deescalate",
                    0,
                    0,
                );
            }
            HealthEvent::AlarmCleared { .. } if self.eco => {
                self.eco = false;
                if matches!(self.mode, Mode::Engaged(_)) {
                    self.jammer.set_reaction(JammerPreset::Reactive {
                        uptime_s: FULL_UPTIME_S,
                        waveform: rjam_fpga::JamWaveform::Wgn,
                    });
                }
                self.note_transition(
                    "core.auto_health_reescalate",
                    "auto_health_reescalate",
                    0,
                    0,
                );
            }
            _ => {}
        }
    }

    /// Records an autonomous state transition to the global observability
    /// layer: one `core.auto_*` counter bump plus a flight-recorder event
    /// timestamped with the receive-stream sample index.
    fn note_transition(&mut self, counter: &'static str, kind: &'static str, a: i64, b: i64) {
        if rjam_obs::enabled() {
            let t = self.jammer.core_mut().samples_processed();
            rjam_obs::registry::counter(counter).inc();
            rjam_obs::recorder::record_event(t, kind, a, b);
        }
    }

    /// Processes one receive block; returns the per-sample TX activity.
    pub fn step(&mut self, block: &[Cf64]) -> Vec<bool> {
        match self.mode {
            Mode::Scanning => {
                let before = self.jammer.core_mut().samples_processed();
                let (_tx, active) = self.jammer.process_block(block);
                // An energy rise within THIS block flips us into capture
                // mode (older events are history from prior engagements).
                let rise = self
                    .jammer
                    .events()
                    .iter()
                    .rev()
                    .take_while(|e| e.sample() >= before)
                    .any(|e| matches!(e, rjam_fpga::CoreEvent::EnergyHigh { .. }));
                if rise {
                    self.mode = Mode::Capturing;
                    self.capture.clear();
                    self.capture.extend_from_slice(block);
                    self.note_transition("core.auto_captures", "auto_capture_start", 0, 0);
                }
                active
            }
            Mode::Capturing => {
                self.capture.extend_from_slice(block);
                if self.capture.len() >= self.capture_len {
                    let cls = classify_capture(&self.capture, &self.wimax_cells);
                    match cls.class {
                        StandardClass::Wifi => {
                            self.jammer
                                .set_detection(DetectionPreset::WifiShortPreamble {
                                    threshold: 0.50,
                                });
                            self.jammer.set_reaction(JammerPreset::Reactive {
                                uptime_s: FULL_UPTIME_S,
                                waveform: rjam_fpga::JamWaveform::Wgn,
                            });
                        }
                        StandardClass::Wimax { id_cell, segment } => {
                            self.jammer.set_detection(DetectionPreset::WimaxFused {
                                id_cell,
                                segment,
                                threshold: 0.45,
                                energy_db: 10.0,
                            });
                            self.jammer.set_lockout(100_000);
                            self.jammer.set_reaction(JammerPreset::Reactive {
                                uptime_s: FULL_UPTIME_S,
                                waveform: rjam_fpga::JamWaveform::Wgn,
                            });
                        }
                        StandardClass::Unknown => {
                            // Fall back to protocol-agnostic energy jamming.
                            self.jammer
                                .set_detection(DetectionPreset::EnergyRise { threshold_db: 10.0 });
                            self.jammer.set_reaction(JammerPreset::Reactive {
                                uptime_s: FULL_UPTIME_S,
                                waveform: rjam_fpga::JamWaveform::Wgn,
                            });
                        }
                    }
                    self.mode = Mode::Engaged(cls.class);
                    // Flight-recorder payload: a = class code (0 WiFi,
                    // 1 WiMAX, 2 unknown), b = winning score in permil.
                    let (code, counter) = match cls.class {
                        StandardClass::Wifi => (0, "core.auto_engage_wifi"),
                        StandardClass::Wimax { .. } => (1, "core.auto_engage_wimax"),
                        StandardClass::Unknown => (2, "core.auto_engage_unknown"),
                    };
                    let permil = (cls.score * 1000.0) as i64;
                    self.note_transition(counter, "auto_engage", code, permil);
                    self.engagements.push(cls);
                    self.idle_run = 0;
                    // A fresh engagement always starts at full burst.
                    self.eco = false;
                }
                vec![false; block.len()]
            }
            Mode::Engaged(_) => {
                let before = self.jammer.core_mut().samples_processed();
                let (_tx, active) = self.jammer.process_block(block);
                // Track band idleness via completed jam triggers (raw
                // detector events include sporadic noise-floor crossings).
                let news = self
                    .jammer
                    .events()
                    .iter()
                    .rev()
                    .take_while(|e| e.sample() >= before)
                    .filter(|e| matches!(e, rjam_fpga::CoreEvent::JamTrigger { .. }))
                    .count();
                if news == 0 {
                    self.idle_run += block.len() as u64;
                    if self.idle_run >= self.idle_limit {
                        // Band quiet: disengage and resume scanning.
                        self.jammer
                            .set_detection(DetectionPreset::EnergyRise { threshold_db: 10.0 });
                        self.jammer.set_reaction(JammerPreset::Monitor);
                        self.mode = Mode::Scanning;
                        self.eco = false;
                        let idle = self.idle_run as i64;
                        self.note_transition("core.auto_disengagements", "auto_disengage", idle, 0);
                    }
                } else {
                    self.idle_run = 0;
                }
                active
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjam_sdr::power::scale_to_power;
    use rjam_sdr::resample::to_usrp_rate;
    use rjam_sdr::rng::Rng;

    fn wifi_block(rng: &mut Rng) -> Vec<Cf64> {
        let mut psdu = vec![0u8; 120];
        rng.fill_bytes(&mut psdu);
        let frame = rjam_phy80211::tx::Frame::new(rjam_phy80211::Rate::R12, psdu);
        let native = rjam_phy80211::tx::modulate_frame(&frame);
        let mut w = to_usrp_rate(&native, rjam_sdr::WIFI_SAMPLE_RATE);
        scale_to_power(&mut w, 0.02);
        w
    }

    fn wimax_block(id: u8, seg: u8) -> Vec<Cf64> {
        let mut gen = rjam_phy80216::DownlinkGenerator::new(rjam_phy80216::DownlinkConfig {
            id_cell: id,
            segment: seg,
            ..rjam_phy80216::DownlinkConfig::default()
        });
        let f = gen.next_frame();
        let active = gen.dl_subframe_samples();
        let mut w = to_usrp_rate(&f[..active], rjam_sdr::WIMAX_SAMPLE_RATE);
        scale_to_power(&mut w, 0.02);
        w
    }

    fn noisy(mut w: Vec<Cf64>, snr_db: f64, seed: u64) -> Vec<Cf64> {
        let mut n = rjam_channel::NoiseSource::new(
            0.02 / rjam_sdr::power::db_to_lin(snr_db),
            Rng::seed_from(seed),
        );
        for s in w.iter_mut() {
            *s += n.next_sample();
        }
        w
    }

    #[test]
    fn classifies_wifi_capture() {
        let mut rng = Rng::seed_from(1);
        let cap = noisy(wifi_block(&mut rng), 20.0, 2);
        let cls = classify_capture(&cap, &[(1, 0), (2, 1)]);
        assert_eq!(cls.class, StandardClass::Wifi);
        assert!(cls.wifi_score > cls.wimax_score);
    }

    #[test]
    fn classifies_wimax_capture_with_identity() {
        let cap = noisy(wimax_block(5, 1), 20.0, 3);
        let cells = vec![(1u8, 0u8), (5, 1), (9, 2)];
        let cls = classify_capture(&cap[..12_000], &cells);
        assert_eq!(
            cls.class,
            StandardClass::Wimax {
                id_cell: 5,
                segment: 1
            }
        );
    }

    #[test]
    fn noise_is_unknown() {
        let mut n = rjam_channel::NoiseSource::new(0.02, Rng::seed_from(4));
        let cap = n.block(4000);
        let cls = classify_capture(&cap, &[(1, 0)]);
        assert_eq!(cls.class, StandardClass::Unknown);
    }

    #[test]
    fn autonomous_engages_wifi_and_jams() {
        let mut rng = Rng::seed_from(5);
        let mut auto = AutonomousJammer::new(10.0, vec![(1, 0)]);
        assert_eq!(auto.mode(), Mode::Scanning);
        // Quiet band first.
        let mut noise =
            rjam_channel::NoiseSource::new(0.02 / rjam_sdr::power::db_to_lin(20.0), rng.fork());
        auto.step(&noise.block(2000));
        assert_eq!(auto.mode(), Mode::Scanning);
        // Traffic appears: scan -> capture -> engage(WiFi).
        let frame = noisy(wifi_block(&mut rng), 20.0, 6);
        auto.step(&frame);
        assert_eq!(auto.mode(), Mode::Capturing);
        let frame2 = noisy(wifi_block(&mut rng), 20.0, 7);
        auto.step(&frame2);
        assert_eq!(auto.mode(), Mode::Engaged(StandardClass::Wifi));
        // Next frame gets jammed.
        let frame3 = noisy(wifi_block(&mut rng), 20.0, 8);
        let active = auto.step(&frame3);
        assert!(active.iter().any(|&a| a), "must jam after engaging");
        assert_eq!(auto.engagements().len(), 1);
    }

    #[test]
    fn autonomous_engages_wimax_with_cell_identity() {
        let mut auto = AutonomousJammer::new(10.0, vec![(1, 0), (5, 1)]);
        // Quiet band first so the energy differentiator sees the rise.
        let mut noise = rjam_channel::NoiseSource::new(
            0.02 / rjam_sdr::power::db_to_lin(20.0),
            Rng::seed_from(90),
        );
        auto.step(&noise.block(2000));
        let frame = noisy(wimax_block(5, 1), 20.0, 9);
        // Feed in chunks so scan->capture->engage transitions exercise.
        for chunk in frame.chunks(6000) {
            auto.step(chunk);
        }
        match auto.mode() {
            Mode::Engaged(StandardClass::Wimax { id_cell, segment }) => {
                assert_eq!((id_cell, segment), (5, 1));
            }
            other => panic!("expected WiMAX engagement, got {other:?}"),
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn engagement_transitions_feed_registry() {
        use rjam_obs::registry::counter_value;
        let cap0 = counter_value("core.auto_captures");
        let eng0 = counter_value("core.auto_engage_wifi");
        let mut rng = Rng::seed_from(5);
        let mut auto = AutonomousJammer::new(10.0, vec![(1, 0)]);
        let mut noise =
            rjam_channel::NoiseSource::new(0.02 / rjam_sdr::power::db_to_lin(20.0), rng.fork());
        auto.step(&noise.block(2000));
        let frame = noisy(wifi_block(&mut rng), 20.0, 6);
        auto.step(&frame);
        let frame2 = noisy(wifi_block(&mut rng), 20.0, 7);
        auto.step(&frame2);
        assert_eq!(auto.mode(), Mode::Engaged(StandardClass::Wifi));
        // Other tests share the global registry; assert growth, not equality.
        assert!(counter_value("core.auto_captures") > cap0);
        assert!(counter_value("core.auto_engage_wifi") > eng0);
    }

    #[test]
    fn health_transitions_drive_personality_register_path() {
        use rjam_obs::health::HealthEvent;
        let raised = HealthEvent::AlarmRaised {
            rule: "prr_collapse".into(),
            metric: "mac.prr".into(),
            detector: "cusum".into(),
            stat: 1.2,
            threshold: 1.0,
            frame: 32,
            frames: vec![1, 2],
        };
        let cleared = HealthEvent::AlarmCleared {
            rule: "prr_collapse".into(),
            metric: "mac.prr".into(),
            frame: 96,
        };
        // While scanning, health transitions must not arm anything.
        let mut idle = AutonomousJammer::new(10.0, vec![]);
        idle.on_health_event(&raised);
        assert!(!idle.eco(), "no de-escalation without an engagement");

        // Engage on WiFi traffic first (the stock recipe)...
        let mut rng = Rng::seed_from(5);
        let mut auto = AutonomousJammer::new(10.0, vec![(1, 0)]);
        let mut noise =
            rjam_channel::NoiseSource::new(0.02 / rjam_sdr::power::db_to_lin(20.0), rng.fork());
        auto.step(&noise.block(2000));
        let frame = noisy(wifi_block(&mut rng), 20.0, 6);
        auto.step(&frame);
        let frame2 = noisy(wifi_block(&mut rng), 20.0, 7);
        auto.step(&frame2);
        assert_eq!(auto.mode(), Mode::Engaged(StandardClass::Wifi));
        assert!(!auto.eco());
        // ...then the alarm de-escalates to the quarter burst and the
        // clear re-arms the full one. Duplicate raises are idempotent.
        auto.on_health_event(&raised);
        assert!(auto.eco());
        auto.on_health_event(&raised);
        assert!(auto.eco());
        // The jammer still fires on the next frame, just shorter.
        let frame3 = noisy(wifi_block(&mut rng), 20.0, 8);
        let active = auto.step(&frame3);
        assert!(active.iter().any(|&a| a), "eco mode must keep jamming");
        auto.on_health_event(&cleared);
        assert!(!auto.eco());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn health_transitions_feed_registry() {
        use rjam_obs::health::HealthEvent;
        use rjam_obs::registry::counter_value;
        let de0 = counter_value("core.auto_health_deescalate");
        let re0 = counter_value("core.auto_health_reescalate");
        let mut rng = Rng::seed_from(5);
        let mut auto = AutonomousJammer::new(10.0, vec![(1, 0)]);
        let mut noise =
            rjam_channel::NoiseSource::new(0.02 / rjam_sdr::power::db_to_lin(20.0), rng.fork());
        auto.step(&noise.block(2000));
        let frame = noisy(wifi_block(&mut rng), 20.0, 6);
        auto.step(&frame);
        let frame2 = noisy(wifi_block(&mut rng), 20.0, 7);
        auto.step(&frame2);
        assert_eq!(auto.mode(), Mode::Engaged(StandardClass::Wifi));
        auto.on_health_event(&HealthEvent::AlarmRaised {
            rule: "prr_collapse".into(),
            metric: "mac.prr".into(),
            detector: "cusum".into(),
            stat: 1.2,
            threshold: 1.0,
            frame: 32,
            frames: Vec::new(),
        });
        auto.on_health_event(&HealthEvent::AlarmCleared {
            rule: "prr_collapse".into(),
            metric: "mac.prr".into(),
            frame: 96,
        });
        // Other tests share the global registry; assert growth, not equality.
        assert!(counter_value("core.auto_health_deescalate") > de0);
        assert!(counter_value("core.auto_health_reescalate") > re0);
    }

    #[test]
    fn disengages_after_idle() {
        let mut rng = Rng::seed_from(10);
        let mut auto = AutonomousJammer::new(10.0, vec![]);
        let mut lead = rjam_channel::NoiseSource::new(
            0.02 / rjam_sdr::power::db_to_lin(20.0),
            Rng::seed_from(91),
        );
        auto.step(&lead.block(2000));
        let frame = noisy(wifi_block(&mut rng), 20.0, 11);
        auto.step(&frame);
        let frame2 = noisy(wifi_block(&mut rng), 20.0, 12);
        auto.step(&frame2);
        assert!(matches!(auto.mode(), Mode::Engaged(_)));
        // 120 ms of silence -> back to scanning.
        let mut noise =
            rjam_channel::NoiseSource::new(0.02 / rjam_sdr::power::db_to_lin(20.0), rng.fork());
        for _ in 0..30 {
            auto.step(&noise.block(100_000));
        }
        assert_eq!(auto.mode(), Mode::Scanning);
    }
}
