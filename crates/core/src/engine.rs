//! Deterministic sharded campaign engine.
//!
//! Every campaign the paper's evaluation runs (detection sweeps, ROC
//! curves, false-alarm calibration, WiMAX correspondence, iperf jamming
//! sweeps) decomposes into *shards*: independent work units that share no
//! state — each shard owns its own [`rjam_fpga::DspCore`], its own PRNG
//! stream and its own observability buffers. [`CampaignEngine`] runs those
//! shards on a scoped thread pool and merges the results **in shard
//! order**, which yields the determinism contract the whole repo leans on:
//!
//! > For any thread count — 1, 4, or 128 — a campaign's output is
//! > bit-identical to the serial run.
//!
//! Three ingredients make that true:
//!
//! 1. **Seed-splitting, not seed-sharing.** Each shard's PRNG stream is
//!    derived from the campaign seed and the shard index through
//!    [`shard_seed`] (rjam-testkit's `splitmix64` bijection), so streams
//!    never overlap and never depend on which worker ran the shard.
//! 2. **Shard-local state.** The closure receives a [`ShardCtx`] and
//!    builds everything it needs locally; nothing is read from or written
//!    to shared state during execution.
//! 3. **Ordered merge.** Workers pull shard indices from an atomic
//!    counter (dynamic load balancing), but results are reassembled by
//!    index after the scope joins — including per-shard obs deltas and
//!    scope traces, which the campaign layer publishes in shard order.
//!
//! Worker count resolution: an explicit [`CampaignEngine::with_threads`]
//! wins, else the `RJAM_THREADS` environment variable, else
//! `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = "RJAM_THREADS";

/// Derives the PRNG stream for one shard of a campaign.
///
/// The map `shard -> seed` is injective for any fixed `campaign_seed`:
/// the shard index passes through an odd-multiplier mix (injective on
/// `u64`) and two applications of the splitmix64 finalizer (a bijection on
/// `u64`), so two distinct shards can never collide onto one stream —
/// the property `rjam-testkit`'s seed-splitting test pins down.
pub fn shard_seed(campaign_seed: u64, shard: u64) -> u64 {
    use rjam_testkit::rng::splitmix64;
    let mixed = shard
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x1234_5678_9ABC_DEF1);
    splitmix64(campaign_seed ^ splitmix64(mixed))
}

/// Everything a shard closure is allowed to depend on: its index and its
/// derived PRNG stream. If a shard computes from anything else, determinism
/// across thread counts is forfeit — keep this struct minimal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardCtx {
    /// Shard index, `0..n_shards`.
    pub index: usize,
    /// PRNG stream for this shard, from [`shard_seed`].
    pub seed: u64,
}

/// A deterministic sharded campaign runner.
///
/// ```
/// use rjam_core::engine::CampaignEngine;
/// let engine = CampaignEngine::with_threads(4);
/// let squares = engine.run_shards(8, 42, |ctx| ctx.index * ctx.index);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// // Bit-identical at any thread count:
/// assert_eq!(squares, CampaignEngine::serial().run_shards(8, 42, |ctx| ctx.index * ctx.index));
/// ```
#[derive(Clone, Debug)]
pub struct CampaignEngine {
    threads: usize,
}

impl CampaignEngine {
    /// An engine with the environment's worker count: `RJAM_THREADS` if
    /// set to a positive integer, else `available_parallelism()`, else 1.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        CampaignEngine { threads }
    }

    /// A single-threaded engine — the reference path the determinism
    /// contract is stated against.
    pub fn serial() -> Self {
        CampaignEngine { threads: 1 }
    }

    /// An engine with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        CampaignEngine {
            threads: threads.max(1),
        }
    }

    /// The worker count this engine will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `n_shards` independent shards of campaign `seed` and returns
    /// their results **in shard order**, regardless of worker count or
    /// scheduling. The closure must derive all randomness from
    /// [`ShardCtx::seed`] and all identity from [`ShardCtx::index`].
    ///
    /// Workers are `std::thread::scope` threads pulling shard indices
    /// from a shared atomic counter; a panicking shard propagates the
    /// panic to the caller after the scope joins.
    pub fn run_shards<T, F>(&self, n_shards: usize, seed: u64, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ShardCtx) -> T + Sync,
    {
        let ctx = |index: usize| ShardCtx {
            index,
            seed: shard_seed(seed, index as u64),
        };
        self.note_run(n_shards);
        let workers = self.threads.min(n_shards);
        if workers <= 1 {
            // Serial reference path: no pool, same ShardCtx sequence.
            return (0..n_shards).map(|i| f(ctx(i))).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = (0..n_shards).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_shards {
                                break;
                            }
                            out.push((i, f(ctx(i))));
                        }
                        out
                    })
                })
                .collect();
            // Ordered merge: scheduling decided who computed each shard,
            // the index decides where its result lands.
            for h in handles {
                for (i, v) in h.join().expect("campaign shard worker panicked") {
                    slots[i] = Some(v);
                }
            }
        });
        slots
            .into_iter()
            .map(|o| o.expect("every shard index was claimed exactly once"))
            .collect()
    }

    /// Publishes engine activity to the obs registry (no-op without `obs`).
    fn note_run(&self, n_shards: usize) {
        if rjam_obs::enabled() {
            rjam_obs::registry::counter("core.engine_campaigns").inc();
            rjam_obs::registry::counter("core.engine_shards").add(n_shards as u64);
            rjam_obs::registry::gauge("core.engine_threads").set_max(self.threads as u64);
        }
    }
}

impl Default for CampaignEngine {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_shard_order_for_any_thread_count() {
        for threads in [1, 2, 3, 7, 16] {
            let engine = CampaignEngine::with_threads(threads);
            let got = engine.run_shards(33, 0xABCD, |ctx| ctx.index);
            assert_eq!(got, (0..33).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn shard_seeds_are_stable_and_thread_independent() {
        let serial = CampaignEngine::serial().run_shards(17, 99, |ctx| ctx.seed);
        for threads in [2, 7] {
            let sharded = CampaignEngine::with_threads(threads).run_shards(17, 99, |ctx| ctx.seed);
            assert_eq!(serial, sharded, "threads={threads}");
        }
        // And they match the free derivation function.
        for (i, &s) in serial.iter().enumerate() {
            assert_eq!(s, shard_seed(99, i as u64));
        }
    }

    #[test]
    fn shard_seed_never_collides_within_a_campaign() {
        use std::collections::HashSet;
        for campaign_seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let mut seen = HashSet::new();
            for shard in 0..4096u64 {
                assert!(
                    seen.insert(shard_seed(campaign_seed, shard)),
                    "collision at campaign={campaign_seed:#x} shard={shard}"
                );
            }
        }
    }

    #[test]
    fn shard_seed_separates_campaigns() {
        // Different campaign seeds must not map shard 0 onto one stream.
        assert_ne!(shard_seed(1, 0), shard_seed(2, 0));
        assert_ne!(shard_seed(0, 0), shard_seed(0, 1));
        // A shard seed is not the campaign seed itself (streams split).
        assert_ne!(shard_seed(7, 0), 7);
    }

    #[test]
    fn zero_shards_and_zero_threads_are_safe() {
        let engine = CampaignEngine::with_threads(0);
        assert_eq!(engine.threads(), 1);
        let empty: Vec<u64> = engine.run_shards(0, 5, |ctx| ctx.seed);
        assert!(empty.is_empty());
        // More workers than shards degrades gracefully.
        let one = CampaignEngine::with_threads(64).run_shards(1, 5, |ctx| ctx.index);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn shards_actually_run_concurrently_when_asked() {
        // Not a timing assertion — just that the pool path (workers > 1)
        // covers all shards exactly once under contention.
        use std::sync::atomic::AtomicU64;
        let hits = AtomicU64::new(0);
        let n = 257;
        let r = CampaignEngine::with_threads(7).run_shards(n, 1, |ctx| {
            hits.fetch_add(1, Ordering::Relaxed);
            ctx.index as u64
        });
        assert_eq!(hits.load(Ordering::Relaxed), n as u64);
        assert_eq!(r, (0..n as u64).collect::<Vec<_>>());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn engine_activity_reaches_registry() {
        use rjam_obs::registry::counter_value;
        let before = counter_value("core.engine_shards");
        CampaignEngine::with_threads(2).run_shards(5, 3, |ctx| ctx.index);
        assert!(counter_value("core.engine_shards") >= before + 5);
    }
}
