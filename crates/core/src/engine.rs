//! Deterministic sharded campaign engine.
//!
//! Every campaign the paper's evaluation runs (detection sweeps, ROC
//! curves, false-alarm calibration, WiMAX correspondence, iperf jamming
//! sweeps) decomposes into *units*: independent pieces of work that share
//! no state — a `(snr, seed-block)` cell of a detection sweep, one noise
//! segment of a false-alarm calibration, one frame group of the WiMAX
//! capture. [`CampaignEngine`] runs those units on a scoped thread pool
//! and merges the results **in unit order**, which yields the determinism
//! contract the whole repo leans on:
//!
//! > For any thread count — 1, 4, or 128 — a campaign's output is
//! > bit-identical to the serial run.
//!
//! Three ingredients make that true:
//!
//! 1. **Seed-splitting, not seed-sharing.** Each unit's PRNG stream is
//!    derived from the campaign seed and the unit index through
//!    [`shard_seed`] (rjam-testkit's `splitmix64` bijection), so streams
//!    never overlap and never depend on which worker ran the unit.
//! 2. **Unit-local state.** The closure receives a [`ShardCtx`] and
//!    derives everything that affects its *result* from it; the per-worker
//!    pool (see below) only carries resettable scratch whose post-reset
//!    behavior is identical to freshly built state.
//! 3. **Ordered merge.** Workers claim contiguous unit ranges from an
//!    atomic cursor over a [`ShardPlan`] (dynamic load balancing), but
//!    results are **moved** into pre-sized slots by unit index after the
//!    scope joins — no clones, no order dependence.
//!
//! ## Shard planning and worker pools
//!
//! Granularity is decoupled from dispatch: a campaign declares its natural
//! unit count (which depends only on the spec, never on the thread count)
//! and [`ShardPlan`] groups the units into at least [`OVERSHARD`]× the
//! worker count of near-equal contiguous ranges, so a slow unit cannot
//! serialize the tail of the run. Because seeds and merge order are
//! per-*unit*, the grouping — and therefore the thread count — cannot
//! change the output.
//!
//! Shard setup cost is amortized with per-worker pools:
//! [`CampaignEngine::run_units`] calls `make_pool` once per worker thread
//! (building e.g. a `DspCore`, quantization scratch and stream buffers)
//! and hands each unit a `&mut` to its worker's pool; units reset the
//! pooled state instead of rebuilding it. That turns the engine's
//! per-shard overhead from dominant (one core build per SNR point) to
//! negligible (one core build per worker).
//!
//! Worker count resolution: an explicit [`CampaignEngine::with_threads`]
//! wins, else the `RJAM_THREADS` environment variable (strictly parsed by
//! [`threads_from_env`]; `0` clamps to one worker exactly like
//! `with_threads(0)`, unparsable values degrade to serial rather than
//! silently going wide), else `std::thread::available_parallelism()`.

use rjam_obs::stream::{self, ProgressEvent};
use rjam_obs::telemetry::{self, EngineProfile, Straggler, WorkerStats};
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = "RJAM_THREADS";

/// Minimum shards-per-worker ratio a [`ShardPlan`] aims for, so dynamic
/// load balancing has slack even when unit costs are skewed.
pub const OVERSHARD: usize = 4;

/// Derives the PRNG stream for one unit of a campaign.
///
/// The map `unit -> seed` is injective for any fixed `campaign_seed`:
/// the unit index passes through an odd-multiplier mix (injective on
/// `u64`) and two applications of the splitmix64 finalizer (a bijection on
/// `u64`), so two distinct units can never collide onto one stream —
/// the property `rjam-testkit`'s seed-splitting test pins down.
pub fn shard_seed(campaign_seed: u64, shard: u64) -> u64 {
    use rjam_testkit::rng::splitmix64;
    let mixed = shard
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x1234_5678_9ABC_DEF1);
    splitmix64(campaign_seed ^ splitmix64(mixed))
}

/// Strictly parses a thread-count override string (the value of
/// [`THREADS_ENV`] or a `--threads` argument).
///
/// `None` or an empty/whitespace string means "no override" (`Ok(None)`);
/// a decimal integer parses to `Ok(Some(n))` — including `0`, which
/// [`CampaignEngine::with_threads`] clamps to one worker; anything else is
/// an error with an operator-facing message. Front-ends that own a usage
/// channel (`rjamctl`) surface the error; [`CampaignEngine::from_env`]
/// degrades to serial instead, so a typo can never silently fan out.
pub fn parse_threads(value: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = value else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    trimmed
        .parse::<usize>()
        .map(Some)
        .map_err(|_| format!("{THREADS_ENV} must be a non-negative integer, got {raw:?}"))
}

/// [`parse_threads`] applied to the [`THREADS_ENV`] environment variable.
pub fn threads_from_env() -> Result<Option<usize>, String> {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => parse_threads(Some(&raw)),
        Err(_) => Ok(None),
    }
}

/// A shared cancellation flag for checkpointed campaign runs.
///
/// Cloning shares the flag: `rjamd` hands one clone to the engine (which
/// polls it between units) and keeps another so a `cancel` request can trip
/// it from any thread. Cancellation is cooperative and unit-granular — a
/// unit in flight always finishes, so every checkpointed result is the
/// complete, deterministic output of its unit.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the token; every engine loop polling it stops claiming units.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Everything a unit closure is allowed to depend on for its *result*: its
/// index and its derived PRNG stream. If a unit computes from anything
/// else (other than properly reset pooled scratch), determinism across
/// thread counts is forfeit — keep this struct minimal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardCtx {
    /// Unit index, `0..n_units`.
    pub index: usize,
    /// PRNG stream for this unit, from [`shard_seed`].
    pub seed: u64,
}

/// How `n_units` of work are grouped into contiguous dispatch ranges.
///
/// The plan targets at least [`OVERSHARD`] ranges per worker (capped at
/// one unit per range) with sizes differing by at most one, so the atomic
/// dispenser can load-balance without the grouping ever influencing
/// results: seeds and merge order are per-unit, not per-range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    ranges: Vec<Range<usize>>,
    n_units: usize,
}

impl ShardPlan {
    /// Plans `n_units` of work for `workers` threads.
    pub fn new(n_units: usize, workers: usize) -> Self {
        let target = n_units.min(workers.max(1).saturating_mul(OVERSHARD));
        let mut ranges = Vec::with_capacity(target);
        if let Some(base) = n_units.checked_div(target) {
            let rem = n_units % target;
            let mut lo = 0;
            for k in 0..target {
                let len = base + usize::from(k < rem);
                ranges.push(lo..lo + len);
                lo += len;
            }
        }
        ShardPlan { ranges, n_units }
    }

    /// Total units covered by the plan.
    pub fn n_units(&self) -> usize {
        self.n_units
    }

    /// Number of dispatch ranges.
    pub fn n_shards(&self) -> usize {
        self.ranges.len()
    }

    /// The contiguous unit ranges, in order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }
}

/// A deterministic sharded campaign runner.
///
/// ```
/// use rjam_core::engine::CampaignEngine;
/// let engine = CampaignEngine::with_threads(4);
/// let squares = engine.run_shards(8, 42, |ctx| ctx.index * ctx.index);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// // Bit-identical at any thread count:
/// assert_eq!(squares, CampaignEngine::serial().run_shards(8, 42, |ctx| ctx.index * ctx.index));
/// ```
#[derive(Clone, Debug)]
pub struct CampaignEngine {
    threads: usize,
}

impl CampaignEngine {
    /// An engine with the environment's worker count: `RJAM_THREADS` if
    /// set (strictly parsed; `0` clamps to 1 like [`Self::with_threads`],
    /// unparsable values degrade to serial), else
    /// `available_parallelism()`, else 1.
    pub fn from_env() -> Self {
        match threads_from_env() {
            Ok(Some(n)) => Self::with_threads(n),
            Ok(None) => Self::with_threads(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            ),
            // A garbage override must not silently fan out to every core;
            // rjamctl additionally rejects it through its usage-error path.
            Err(_) => Self::serial(),
        }
    }

    /// A single-threaded engine — the reference path the determinism
    /// contract is stated against.
    pub fn serial() -> Self {
        CampaignEngine { threads: 1 }
    }

    /// An engine with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        CampaignEngine {
            threads: threads.max(1),
        }
    }

    /// The worker count this engine will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `n_shards` independent shards of campaign `seed` and returns
    /// their results **in shard order**, regardless of worker count or
    /// scheduling. The closure must derive all randomness from
    /// [`ShardCtx::seed`] and all identity from [`ShardCtx::index`].
    ///
    /// Thin wrapper over [`Self::run_units`] with a unit pool of `()` —
    /// use `run_units` when shard setup (core construction, template
    /// generation, buffer allocation) is worth amortizing per worker.
    pub fn run_shards<T, F>(&self, n_shards: usize, seed: u64, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ShardCtx) -> T + Sync,
    {
        self.run_shards_kind("shards", n_shards, seed, f)
    }

    /// [`Self::run_shards`] with a unit-kind label for telemetry (see
    /// [`Self::run_units_kind`]).
    pub fn run_shards_kind<T, F>(
        &self,
        kind: &'static str,
        n_shards: usize,
        seed: u64,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(ShardCtx) -> T + Sync,
    {
        self.run_units_kind(kind, n_shards, seed, || (), |_, ctx| f(ctx))
    }

    /// Runs `n_units` independent units of campaign `seed` with per-worker
    /// pools, returning the results **in unit order** regardless of worker
    /// count or scheduling.
    ///
    /// `make_pool` is called once per worker thread (once total on the
    /// serial path); `f` receives a `&mut` to its worker's pool plus the
    /// unit's [`ShardCtx`]. The pool must be *reset-equivalent*: a unit
    /// run against a reused pool must produce the same result as against a
    /// freshly built one (e.g. `DspCore::reset` restores streaming state
    /// while keeping configuration). All randomness must come from
    /// [`ShardCtx::seed`].
    ///
    /// Workers are `std::thread::scope` threads claiming contiguous unit
    /// ranges of a [`ShardPlan`] from a shared atomic cursor; results are
    /// moved into pre-sized slots, and a panicking unit propagates the
    /// panic to the caller after the scope joins.
    pub fn run_units<T, P, M, F>(&self, n_units: usize, seed: u64, make_pool: M, f: F) -> Vec<T>
    where
        T: Send,
        M: Fn() -> P + Sync,
        F: Fn(&mut P, ShardCtx) -> T + Sync,
    {
        self.run_units_kind("units", n_units, seed, make_pool, f)
    }

    /// [`Self::run_units`] with a unit-kind label (`"wifi_detection"`,
    /// `"false_alarm"`, ...) attached to the run's telemetry.
    ///
    /// With the `obs` feature on, the engine times every unit and publishes
    /// an [`EngineProfile`] (per-worker busy/idle/merge-wait, unit-latency
    /// histogram per kind, stragglers > `STRAGGLER_FACTOR`× the median with
    /// their seeds) into [`rjam_obs::telemetry`], and — when a progress
    /// sink is installed ([`rjam_obs::stream::install`]) — emits the
    /// `rjam-progress-v1` event chain (started / shard finished / snapshot
    /// with ETA / done). Only the *outermost* campaign of an invocation
    /// emits: nested engine runs (ROC thresholds run whole sub-campaigns
    /// inside shards) stay silent so one run produces one chain. None of
    /// this touches results; without `obs` the instrumentation compiles
    /// out.
    pub fn run_units_kind<T, P, M, F>(
        &self,
        kind: &'static str,
        n_units: usize,
        seed: u64,
        make_pool: M,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        M: Fn() -> P + Sync,
        F: Fn(&mut P, ShardCtx) -> T + Sync,
    {
        let ctx = |index: usize| ShardCtx {
            index,
            seed: shard_seed(seed, index as u64),
        };
        let workers = self.threads.min(n_units);
        let plan = ShardPlan::new(n_units, workers);
        self.note_run(&plan, workers.max(1));

        // Campaign-level stream ownership (outermost run only); the guard
        // releases it even if a unit panics.
        let streaming = rjam_obs::enabled() && stream::active() && stream::begin_campaign();
        let _stream_guard = StreamOwnership(streaming);
        if streaming {
            stream::emit(&ProgressEvent::Started {
                kind: kind.to_string(),
                units: n_units as u64,
                shards: plan.n_shards() as u64,
                workers: workers.max(1) as u64,
                seed,
            });
        }
        let t0 = Instant::now();
        // Shard completions update `done` and emit under one lock so
        // racing workers can never put snapshots out of order on the wire.
        let progress = Mutex::new(0u64);
        let depth_gauge = rjam_obs::registry::gauge("core.engine_queue_depth");
        let n_shards = plan.n_shards();
        let note_shard = |shard: usize, worker: usize, units: usize, busy_ns: u64| {
            if !rjam_obs::enabled() {
                return;
            }
            depth_gauge.set(n_shards.saturating_sub(shard + 1) as u64);
            if !streaming {
                return;
            }
            let mut done = progress.lock().expect("engine progress lock");
            *done += units as u64;
            let elapsed = t0.elapsed().as_nanos() as u64;
            stream::emit_all(&[
                ProgressEvent::ShardFinished {
                    shard: shard as u64,
                    worker: worker as u64,
                    units: units as u64,
                    busy_ns,
                },
                ProgressEvent::Snapshot {
                    done: *done,
                    total: n_units as u64,
                    elapsed_ns: elapsed,
                    eta_ns: stream::eta_ns(elapsed, *done, n_units as u64),
                },
            ]);
        };

        if workers <= 1 {
            // Serial reference path: one pool, one worker timeline. The
            // ranges cover 0..n_units in order, so the ShardCtx sequence —
            // and therefore the output — is identical to the pre-telemetry
            // `(0..n_units)` loop.
            let mut pool = make_pool();
            let mut out = Vec::with_capacity(n_units);
            let mut log = WorkerLog::new(0);
            for (r, range) in plan.ranges().iter().enumerate() {
                let mut shard_busy = 0u64;
                for i in range.clone() {
                    if rjam_obs::enabled() {
                        let u0 = Instant::now();
                        out.push(f(&mut pool, ctx(i)));
                        let d = u0.elapsed().as_nanos() as u64;
                        shard_busy += d;
                        log.unit_ns.push((i, d));
                    } else {
                        out.push(f(&mut pool, ctx(i)));
                    }
                }
                if rjam_obs::enabled() {
                    log.busy_ns += shard_busy;
                    log.units += range.len() as u64;
                    note_shard(r, 0, range.len(), shard_busy);
                }
            }
            if rjam_obs::enabled() {
                log.wall_ns = t0.elapsed().as_nanos() as u64;
                publish_run_telemetry(kind, seed, &plan, t0, vec![log], streaming);
            }
            return out;
        }

        let ranges = plan.ranges();
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = (0..n_units).map(|_| None).collect();
        let mut logs: Vec<WorkerLog> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let f = &f;
            let make_pool = &make_pool;
            let ctx = &ctx;
            let next = &next;
            let note_shard = &note_shard;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || {
                        let wt0 = Instant::now();
                        let mut pool = make_pool();
                        let mut out = Vec::new();
                        let mut log = WorkerLog::new(w);
                        loop {
                            let r = next.fetch_add(1, Ordering::Relaxed);
                            if r >= ranges.len() {
                                break;
                            }
                            let range = ranges[r].clone();
                            let mut shard_busy = 0u64;
                            for i in range.clone() {
                                if rjam_obs::enabled() {
                                    let u0 = Instant::now();
                                    let v = f(&mut pool, ctx(i));
                                    let d = u0.elapsed().as_nanos() as u64;
                                    shard_busy += d;
                                    log.unit_ns.push((i, d));
                                    out.push((i, v));
                                } else {
                                    out.push((i, f(&mut pool, ctx(i))));
                                }
                            }
                            if rjam_obs::enabled() {
                                log.busy_ns += shard_busy;
                                log.units += range.len() as u64;
                                note_shard(r, w, range.len(), shard_busy);
                            }
                        }
                        if rjam_obs::enabled() {
                            log.wall_ns = wt0.elapsed().as_nanos() as u64;
                            log.finished = Some(Instant::now());
                        }
                        (out, log)
                    })
                })
                .collect();
            // Ordered merge: scheduling decided who computed each unit,
            // the index decides where its result lands — moved, not cloned.
            for h in handles {
                let (items, mut log) = h.join().expect("campaign unit worker panicked");
                for (i, v) in items {
                    slots[i] = Some(v);
                }
                if rjam_obs::enabled() {
                    // Merge-wait: from the worker finishing to its results
                    // being merged here (charged after the merge so the
                    // last worker's merge cost is attributed, not lost).
                    if let Some(fin) = log.finished {
                        log.merge_wait_ns =
                            Instant::now().saturating_duration_since(fin).as_nanos() as u64;
                    }
                    logs.push(log);
                }
            }
        });
        if rjam_obs::enabled() {
            logs.sort_by_key(|l| l.worker);
            publish_run_telemetry(kind, seed, &plan, t0, logs, streaming);
        }
        slots
            .into_iter()
            .map(|o| o.expect("every unit index was claimed exactly once"))
            .collect()
    }

    /// Checkpointed, cancellable variant of [`Self::run_units_kind`] — the
    /// primitive behind `rjamd`'s cancel + resume.
    ///
    /// `done` holds the results of units completed by *previous* attempts,
    /// keyed by unit index; only the missing units run. Each unit's seed
    /// still derives from its **original** index via [`shard_seed`], so a
    /// resumed campaign computes bit-identical results to an uninterrupted
    /// one — the determinism contract extends across interruptions.
    ///
    /// `cancel`, when tripped, stops workers from claiming further units
    /// (units in flight finish). On interruption the completed results are
    /// merged into `done` and the call returns `None`; run again with the
    /// same arguments to resume. On completion `done` is drained and the
    /// full result vector returns **in unit order**.
    ///
    /// With no token and an empty checkpoint this delegates to
    /// [`Self::run_units_kind`], keeping the fully-profiled fast path.
    /// The checkpointed path emits the same `rjam-progress-v1` chain over
    /// the units it actually runs; an interrupted run leaves the chain
    /// truncated (no `campaign_done`), which is what its watchers should
    /// see.
    #[allow(clippy::too_many_arguments)]
    pub fn run_units_ckpt<T, P, M, F>(
        &self,
        kind: &'static str,
        n_units: usize,
        seed: u64,
        done: &mut BTreeMap<usize, T>,
        cancel: Option<&CancelToken>,
        make_pool: M,
        f: F,
    ) -> Option<Vec<T>>
    where
        T: Send,
        M: Fn() -> P + Sync,
        F: Fn(&mut P, ShardCtx) -> T + Sync,
    {
        if cancel.is_none() && done.is_empty() {
            return Some(self.run_units_kind(kind, n_units, seed, make_pool, f));
        }
        let todo: Vec<usize> = (0..n_units).filter(|i| !done.contains_key(i)).collect();
        let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
        if !todo.is_empty() && !cancelled() {
            let ctx = |index: usize| ShardCtx {
                index,
                seed: shard_seed(seed, index as u64),
            };
            let workers = self.threads.min(todo.len());
            let plan = ShardPlan::new(todo.len(), workers);
            self.note_run(&plan, workers.max(1));
            let streaming = rjam_obs::enabled() && stream::active() && stream::begin_campaign();
            let _stream_guard = StreamOwnership(streaming);
            if streaming {
                stream::emit(&ProgressEvent::Started {
                    kind: kind.to_string(),
                    units: todo.len() as u64,
                    shards: plan.n_shards() as u64,
                    workers: workers.max(1) as u64,
                    seed,
                });
            }
            let t0 = Instant::now();
            let progress = Mutex::new(0u64);
            let depth_gauge = rjam_obs::registry::gauge("core.engine_queue_depth");
            let n_shards = plan.n_shards();
            let n_todo = todo.len();
            let note_shard = |shard: usize, worker: usize, units: usize, busy_ns: u64| {
                if !rjam_obs::enabled() {
                    return;
                }
                depth_gauge.set(n_shards.saturating_sub(shard + 1) as u64);
                if !streaming {
                    return;
                }
                let mut done_units = progress.lock().expect("engine progress lock");
                *done_units += units as u64;
                let elapsed = t0.elapsed().as_nanos() as u64;
                stream::emit_all(&[
                    ProgressEvent::ShardFinished {
                        shard: shard as u64,
                        worker: worker as u64,
                        units: units as u64,
                        busy_ns,
                    },
                    ProgressEvent::Snapshot {
                        done: *done_units,
                        total: n_todo as u64,
                        elapsed_ns: elapsed,
                        eta_ns: stream::eta_ns(elapsed, *done_units, n_todo as u64),
                    },
                ]);
            };

            let ranges = plan.ranges();
            let next = AtomicUsize::new(0);
            let todo = &todo;
            // (busy_ns, wall_ns) per worker plus each worker's results keyed
            // by ORIGINAL unit index; cancelled ranges simply never arrive.
            let mut worker_times: Vec<(u64, u64)> = Vec::with_capacity(workers.max(1));
            let mut fresh: Vec<(usize, T)> = Vec::new();
            std::thread::scope(|s| {
                let f = &f;
                let make_pool = &make_pool;
                let ctx = &ctx;
                let next = &next;
                let note_shard = &note_shard;
                let handles: Vec<_> = (0..workers.max(1))
                    .map(|w| {
                        s.spawn(move || {
                            let wt0 = Instant::now();
                            let mut pool = make_pool();
                            let mut out: Vec<(usize, T)> = Vec::new();
                            let mut busy = 0u64;
                            'claim: loop {
                                if cancelled() {
                                    break;
                                }
                                let r = next.fetch_add(1, Ordering::Relaxed);
                                if r >= ranges.len() {
                                    break;
                                }
                                let range = ranges[r].clone();
                                let mut shard_busy = 0u64;
                                let mut ran = 0usize;
                                for slot in range.clone() {
                                    if cancelled() {
                                        // Partial range: keep what finished,
                                        // report no shard_finished for it.
                                        busy += shard_busy;
                                        break 'claim;
                                    }
                                    let orig = todo[slot];
                                    let u0 = Instant::now();
                                    let v = f(&mut pool, ctx(orig));
                                    shard_busy += u0.elapsed().as_nanos() as u64;
                                    out.push((orig, v));
                                    ran += 1;
                                }
                                busy += shard_busy;
                                note_shard(r, w, ran, shard_busy);
                            }
                            (out, busy, wt0.elapsed().as_nanos() as u64)
                        })
                    })
                    .collect();
                for h in handles {
                    let (items, busy, wall) = h.join().expect("campaign unit worker panicked");
                    fresh.extend(items);
                    worker_times.push((busy, wall));
                }
            });
            for (orig, v) in fresh {
                done.insert(orig, v);
            }
            if streaming && done.len() == n_units {
                let busy: u64 = worker_times.iter().map(|&(b, _)| b).sum();
                let idle: u64 = worker_times.iter().map(|&(b, w)| w.saturating_sub(b)).sum();
                stream::emit(&ProgressEvent::Done {
                    units: n_todo as u64,
                    elapsed_ns: t0.elapsed().as_nanos() as u64,
                    workers: workers.max(1) as u64,
                    busy_ns: busy,
                    idle_ns: idle,
                    merge_wait_ns: 0,
                });
            }
            if rjam_obs::enabled() {
                depth_gauge.set(0);
            }
        }
        if done.len() != n_units {
            return None;
        }
        let map = std::mem::take(done);
        let mut out = Vec::with_capacity(n_units);
        for (expect, (i, v)) in map.into_iter().enumerate() {
            assert_eq!(i, expect, "checkpoint covers every unit exactly once");
            out.push(v);
        }
        Some(out)
    }

    /// Publishes engine activity to the obs registry (no-op without `obs`).
    fn note_run(&self, plan: &ShardPlan, workers: usize) {
        if rjam_obs::enabled() {
            rjam_obs::registry::counter("core.engine_campaigns").inc();
            rjam_obs::registry::counter("core.engine_units").add(plan.n_units() as u64);
            rjam_obs::registry::counter("core.engine_shards").add(plan.n_shards() as u64);
            // The *last* campaign's worker count, not a lifetime max —
            // `rjamctl stats` reports what the most recent run actually used.
            rjam_obs::registry::gauge("core.engine_threads").set(workers as u64);
        }
    }
}

impl Default for CampaignEngine {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Releases campaign-level stream ownership on drop, so a panicking unit
/// cannot leave the process-wide guard stuck and silence every later
/// campaign.
struct StreamOwnership(bool);

impl Drop for StreamOwnership {
    fn drop(&mut self) {
        if self.0 {
            stream::end_campaign();
        }
    }
}

/// One worker's raw timing log, turned into [`WorkerStats`] after the run.
struct WorkerLog {
    worker: usize,
    units: u64,
    busy_ns: u64,
    wall_ns: u64,
    merge_wait_ns: u64,
    finished: Option<Instant>,
    unit_ns: Vec<(usize, u64)>,
}

impl WorkerLog {
    fn new(worker: usize) -> Self {
        WorkerLog {
            worker,
            units: 0,
            busy_ns: 0,
            wall_ns: 0,
            merge_wait_ns: 0,
            finished: None,
            unit_ns: Vec::new(),
        }
    }
}

/// Assembles and publishes a finished campaign's [`EngineProfile`]:
/// per-worker buckets, the unit-latency histogram (per kind and as the
/// `core.engine_unit_ns` registry aggregate), stragglers (flagged into the
/// flight recorder with their unit index and worker, reproducible via
/// `shard_seed`), and — when this run owns the progress stream — the
/// terminal `campaign_done` event.
fn publish_run_telemetry(
    kind: &str,
    seed: u64,
    plan: &ShardPlan,
    t0: Instant,
    logs: Vec<WorkerLog>,
    streaming: bool,
) {
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let mut hist = rjam_obs::LogHistogram::new();
    let mut durations: Vec<(usize, usize, u64)> = Vec::new();
    for log in &logs {
        for &(unit, d) in &log.unit_ns {
            hist.record(d);
            durations.push((unit, log.worker, d));
        }
    }
    // Exact median (the histogram's p50 carries bucket error; the
    // straggler threshold should not).
    let median = {
        let mut ds: Vec<u64> = durations.iter().map(|&(_, _, d)| d).collect();
        ds.sort_unstable();
        if ds.is_empty() {
            0
        } else {
            ds[ds.len() / 2]
        }
    };
    let mut stragglers: Vec<Straggler> = durations
        .iter()
        .filter(|&&(_, _, d)| median > 0 && d > telemetry::STRAGGLER_FACTOR * median)
        .map(|&(unit, worker, duration_ns)| Straggler {
            unit,
            worker,
            seed: shard_seed(seed, unit as u64),
            duration_ns,
        })
        .collect();
    stragglers.sort_by(|a, b| b.duration_ns.cmp(&a.duration_ns).then(a.unit.cmp(&b.unit)));
    stragglers.truncate(telemetry::MAX_STRAGGLERS);
    for s in &stragglers {
        rjam_obs::recorder::record_event(
            s.duration_ns,
            "engine_straggler",
            s.unit as i64,
            s.worker as i64,
        );
    }
    let busy: u64 = logs.iter().map(|l| l.busy_ns).sum();
    let idle: u64 = logs
        .iter()
        .map(|l| l.wall_ns.saturating_sub(l.busy_ns))
        .sum();
    let merge: u64 = logs.iter().map(|l| l.merge_wait_ns).sum();
    rjam_obs::registry::counter("core.engine_busy_ns").add(busy);
    rjam_obs::registry::counter("core.engine_idle_ns").add(idle);
    rjam_obs::registry::counter("core.engine_merge_wait_ns").add(merge);
    rjam_obs::registry::counter("core.engine_stragglers").add(stragglers.len() as u64);
    rjam_obs::registry::gauge("core.engine_queue_depth").set(0);
    rjam_obs::registry::histogram("core.engine_unit_ns").absorb(&hist);
    let workers: Vec<WorkerStats> = logs
        .iter()
        .map(|l| WorkerStats {
            worker: l.worker,
            units: l.units,
            busy_ns: l.busy_ns,
            idle_ns: l.wall_ns.saturating_sub(l.busy_ns),
            merge_wait_ns: l.merge_wait_ns,
        })
        .collect();
    if streaming {
        stream::emit(&ProgressEvent::Done {
            units: plan.n_units() as u64,
            elapsed_ns: wall_ns,
            workers: workers.len() as u64,
            busy_ns: busy,
            idle_ns: idle,
            merge_wait_ns: merge,
        });
    }
    telemetry::publish(
        EngineProfile {
            kind: kind.to_string(),
            units: plan.n_units() as u64,
            shards: plan.n_shards() as u64,
            wall_ns,
            workers,
            unit_ns: hist.summary(),
            median_unit_ns: median,
            stragglers,
        },
        &hist,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_shard_order_for_any_thread_count() {
        for threads in [1, 2, 3, 7, 16] {
            let engine = CampaignEngine::with_threads(threads);
            let got = engine.run_shards(33, 0xABCD, |ctx| ctx.index);
            assert_eq!(got, (0..33).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn shard_seeds_are_stable_and_thread_independent() {
        let serial = CampaignEngine::serial().run_shards(17, 99, |ctx| ctx.seed);
        for threads in [2, 7] {
            let sharded = CampaignEngine::with_threads(threads).run_shards(17, 99, |ctx| ctx.seed);
            assert_eq!(serial, sharded, "threads={threads}");
        }
        // And they match the free derivation function.
        for (i, &s) in serial.iter().enumerate() {
            assert_eq!(s, shard_seed(99, i as u64));
        }
    }

    #[test]
    fn shard_seed_never_collides_within_a_campaign() {
        use std::collections::HashSet;
        for campaign_seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let mut seen = HashSet::new();
            for shard in 0..4096u64 {
                assert!(
                    seen.insert(shard_seed(campaign_seed, shard)),
                    "collision at campaign={campaign_seed:#x} shard={shard}"
                );
            }
        }
    }

    #[test]
    fn shard_seed_separates_campaigns() {
        // Different campaign seeds must not map shard 0 onto one stream.
        assert_ne!(shard_seed(1, 0), shard_seed(2, 0));
        assert_ne!(shard_seed(0, 0), shard_seed(0, 1));
        // A shard seed is not the campaign seed itself (streams split).
        assert_ne!(shard_seed(7, 0), 7);
    }

    #[test]
    fn plan_covers_every_unit_exactly_once_in_order() {
        for n_units in [0usize, 1, 2, 7, 8, 33, 100, 257] {
            for workers in [1usize, 2, 3, 4, 7, 64] {
                let plan = ShardPlan::new(n_units, workers);
                let covered: Vec<usize> = plan.ranges().iter().cloned().flatten().collect();
                assert_eq!(
                    covered,
                    (0..n_units).collect::<Vec<_>>(),
                    "n_units={n_units} workers={workers}"
                );
                assert_eq!(plan.n_units(), n_units);
            }
        }
    }

    #[test]
    fn plan_overshards_and_balances() {
        // Enough units: at least OVERSHARD ranges per worker, sizes within 1.
        let plan = ShardPlan::new(1000, 4);
        assert_eq!(plan.n_shards(), 4 * OVERSHARD);
        let sizes: Vec<usize> = plan.ranges().iter().map(|r| r.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
        // Fewer units than the target: one unit per range, never empty.
        let tiny = ShardPlan::new(3, 4);
        assert_eq!(tiny.n_shards(), 3);
        assert!(tiny.ranges().iter().all(|r| r.len() == 1));
    }

    #[test]
    fn pooled_units_match_run_shards() {
        // The pool must not leak into results: a counting pool changes
        // nothing, and run_units == run_shards for the same closure.
        let plain = CampaignEngine::serial().run_shards(50, 7, |ctx| ctx.seed ^ ctx.index as u64);
        for threads in [1usize, 2, 7, 64] {
            let pooled = CampaignEngine::with_threads(threads).run_units(
                50,
                7,
                || 0u64,
                |scratch, ctx| {
                    *scratch += 1; // worker-local, must not affect output
                    ctx.seed ^ ctx.index as u64
                },
            );
            assert_eq!(pooled, plain, "threads={threads}");
        }
    }

    #[test]
    fn workers_exceeding_shards_degrade_gracefully() {
        // 64 workers, 3 units: the plan has 3 single-unit ranges and the
        // extra workers find the cursor exhausted.
        let got = CampaignEngine::with_threads(64).run_units(3, 9, || (), |_, ctx| ctx.index);
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn parse_threads_contract() {
        assert_eq!(parse_threads(None), Ok(None));
        assert_eq!(parse_threads(Some("")), Ok(None));
        assert_eq!(parse_threads(Some("  ")), Ok(None));
        assert_eq!(parse_threads(Some("1")), Ok(Some(1)));
        assert_eq!(parse_threads(Some(" 8 ")), Ok(Some(8)));
        // 0 parses; with_threads clamps it to 1 — consistent with the
        // explicit API instead of silently fanning out to every core.
        assert_eq!(parse_threads(Some("0")), Ok(Some(0)));
        assert_eq!(CampaignEngine::with_threads(0).threads(), 1);
        for garbage in ["four", "-2", "3.5", "0x4", "4 threads"] {
            assert!(parse_threads(Some(garbage)).is_err(), "{garbage:?}");
        }
    }

    #[test]
    fn zero_shards_and_zero_threads_are_safe() {
        let engine = CampaignEngine::with_threads(0);
        assert_eq!(engine.threads(), 1);
        let empty: Vec<u64> = engine.run_shards(0, 5, |ctx| ctx.seed);
        assert!(empty.is_empty());
        // More workers than shards degrades gracefully.
        let one = CampaignEngine::with_threads(64).run_shards(1, 5, |ctx| ctx.index);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn shards_actually_run_concurrently_when_asked() {
        // Not a timing assertion — just that the pool path (workers > 1)
        // covers all shards exactly once under contention.
        use std::sync::atomic::AtomicU64;
        let hits = AtomicU64::new(0);
        let n = 257;
        let r = CampaignEngine::with_threads(7).run_shards(n, 1, |ctx| {
            hits.fetch_add(1, Ordering::Relaxed);
            ctx.index as u64
        });
        assert_eq!(hits.load(Ordering::Relaxed), n as u64);
        assert_eq!(r, (0..n as u64).collect::<Vec<_>>());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn engine_activity_reaches_registry() {
        use rjam_obs::registry::counter_value;
        let before = counter_value("core.engine_units");
        CampaignEngine::with_threads(2).run_shards(5, 3, |ctx| ctx.index);
        assert!(counter_value("core.engine_units") >= before + 5);
    }

    #[test]
    fn ckpt_with_no_token_and_empty_checkpoint_is_the_plain_path() {
        let plain = CampaignEngine::with_threads(2).run_units(40, 11, || (), |_, ctx| ctx.seed ^ 1);
        let mut done = BTreeMap::new();
        let got = CampaignEngine::with_threads(2)
            .run_units_ckpt("t", 40, 11, &mut done, None, || (), |_, ctx| ctx.seed ^ 1)
            .expect("uncancelled run completes");
        assert_eq!(got, plain);
        assert!(done.is_empty(), "checkpoint drained on completion");
    }

    #[test]
    fn resume_matches_uninterrupted_at_every_thread_count() {
        let unit = |_: &mut (), ctx: ShardCtx| ctx.seed.wrapping_mul(ctx.index as u64 + 1);
        let plain = CampaignEngine::serial().run_units(61, 4242, || (), unit);
        for threads in [1usize, 2, 7] {
            let engine = CampaignEngine::with_threads(threads);
            // Cancel after a fixed number of units so partial checkpoints of
            // every size (including empty and nearly-full) get exercised.
            for cancel_after in [0u64, 1, 5, 30, 60] {
                let token = CancelToken::new();
                let ran = std::sync::atomic::AtomicU64::new(0);
                let mut done = BTreeMap::new();
                let first = engine.run_units_ckpt(
                    "t",
                    61,
                    4242,
                    &mut done,
                    Some(&token),
                    || (),
                    |p, ctx| {
                        if ran.fetch_add(1, Ordering::Relaxed) + 1 >= cancel_after {
                            token.cancel();
                        }
                        unit(p, ctx)
                    },
                );
                if let Some(full) = first {
                    // The token tripped too late to interrupt anything.
                    assert_eq!(full, plain, "threads={threads} after={cancel_after}");
                    continue;
                }
                assert!(done.len() < 61, "interrupted run left a partial checkpoint");
                // Every checkpointed value matches the uninterrupted run.
                for (&i, &v) in &done {
                    assert_eq!(v, plain[i], "threads={threads} unit={i}");
                }
                let resumed = engine.run_units_ckpt(
                    "t",
                    61,
                    4242,
                    &mut done,
                    Some(&token.clone()),
                    || (),
                    unit,
                );
                // A still-tripped token blocks the resume entirely.
                assert!(resumed.is_none(), "cancelled token must not run units");
                let fresh = CancelToken::new();
                let resumed = engine
                    .run_units_ckpt("t", 61, 4242, &mut done, Some(&fresh), || (), unit)
                    .expect("resume with a fresh token completes");
                assert_eq!(resumed, plain, "threads={threads} after={cancel_after}");
                assert!(done.is_empty());
            }
        }
    }

    #[test]
    fn ckpt_runs_only_the_missing_units() {
        use std::sync::atomic::AtomicU64;
        let mut done: BTreeMap<usize, u64> = (0..20)
            .filter(|i| i % 3 != 0)
            .map(|i| (i, shard_seed(9, i as u64)))
            .collect();
        let hits = AtomicU64::new(0);
        let got = CampaignEngine::with_threads(2)
            .run_units_ckpt(
                "t",
                20,
                9,
                &mut done,
                None,
                || (),
                |_, ctx| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    ctx.seed
                },
            )
            .expect("completes");
        assert_eq!(hits.load(Ordering::Relaxed), 7, "only units 0,3,..,18 ran");
        let plain: Vec<u64> = (0..20).map(|i| shard_seed(9, i as u64)).collect();
        assert_eq!(got, plain);
    }
}
