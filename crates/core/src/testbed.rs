//! Link-budget arithmetic over the wired testbed (paper Fig. 9 / §4.1-4.2).
//!
//! Everything the MAC simulator needs — SNRs, SIRs, CCA margins, detection
//! SNR at the jammer — follows from transmit powers, the Table 1 insertion
//! losses, the 20 dB pads and the variable attenuator. This module walks
//! those paths so experiment code can sweep "jammer TX power and stacked
//! attenuators" exactly as the paper does and plot against the same SIR
//! axis.

use rjam_channel::{FivePortNetwork, Port};

/// Absolute-power configuration of the testbed.
///
/// Power levels are calibration constants (the paper does not publish
/// them); defaults are chosen so the no-jamming link supports 54 Mb/s and
/// the continuous jammer's CCA kill point lands near the paper's
/// 33.85 dB SIR (see EXPERIMENTS.md).
#[derive(Clone, Debug)]
pub struct TestbedBudget {
    /// The interconnect network.
    pub net: FivePortNetwork,
    /// Client transmit power, dBm.
    pub client_tx_dbm: f64,
    /// AP transmit power (ACKs/beacons), dBm.
    pub ap_tx_dbm: f64,
    /// Jammer transmit power at the radio connector, dBm.
    pub jammer_tx_dbm: f64,
    /// Pad on the AP port, dB.
    pub ap_pad_db: f64,
    /// Pad on the client port, dB.
    pub client_pad_db: f64,
    /// Variable attenuator setting on the jammer TX port, dB.
    pub jammer_atten_db: f64,
    /// Receiver noise floor, dBm (over the 20 MHz channel).
    pub noise_floor_dbm: f64,
    /// Effective carrier-sense threshold for the jammer's wideband WGN at
    /// the client, dBm. Calibrated near the thermal floor: consumer 802.11g
    /// radios defer once in-band interference raises the apparent noise
    /// floor, long before the -62 dBm energy-detect point, and this is the
    /// mechanism that reproduces the paper's continuous-jammer kill at
    /// ~34 dB SIR (see EXPERIMENTS.md).
    pub cca_threshold_dbm: f64,
}

impl Default for TestbedBudget {
    fn default() -> Self {
        TestbedBudget {
            net: FivePortNetwork::paper_table1(),
            client_tx_dbm: 18.0,
            ap_tx_dbm: 18.0,
            jammer_tx_dbm: 10.0,
            ap_pad_db: 20.0,
            client_pad_db: 20.0,
            jammer_atten_db: 0.0,
            noise_floor_dbm: -101.0,
            cca_threshold_dbm: -100.0,
        }
    }
}

impl TestbedBudget {
    /// Received client-signal power at the AP connector, dBm.
    pub fn signal_at_ap_dbm(&self) -> f64 {
        self.client_tx_dbm
            - self.client_pad_db
            - self.net.insertion_loss_db(Port::Client, Port::Ap)
            - self.ap_pad_db
    }

    /// Received AP-signal power at the client connector, dBm.
    pub fn signal_at_client_dbm(&self) -> f64 {
        self.ap_tx_dbm
            - self.ap_pad_db
            - self.net.insertion_loss_db(Port::Ap, Port::Client)
            - self.client_pad_db
    }

    /// Received jammer power at the AP connector, dBm.
    pub fn jam_at_ap_dbm(&self) -> f64 {
        self.jammer_tx_dbm
            - self.jammer_atten_db
            - self.net.insertion_loss_db(Port::JammerTx, Port::Ap)
            - self.ap_pad_db
    }

    /// Received jammer power at the client connector, dBm.
    pub fn jam_at_client_dbm(&self) -> f64 {
        self.jammer_tx_dbm
            - self.jammer_atten_db
            - self.net.insertion_loss_db(Port::JammerTx, Port::Client)
            - self.client_pad_db
    }

    /// Received client-signal power at the jammer's receive port, dBm (what
    /// the detector works with).
    pub fn signal_at_jammer_rx_dbm(&self) -> f64 {
        self.client_tx_dbm
            - self.client_pad_db
            - self.net.insertion_loss_db(Port::Client, Port::JammerRx)
    }

    /// Data SNR at the AP, dB.
    pub fn snr_ap_db(&self) -> f64 {
        self.signal_at_ap_dbm() - self.noise_floor_dbm
    }

    /// ACK/beacon SNR at the client, dB.
    pub fn snr_client_db(&self) -> f64 {
        self.signal_at_client_dbm() - self.noise_floor_dbm
    }

    /// Detection SNR at the jammer's receiver, dB.
    pub fn snr_jammer_rx_db(&self) -> f64 {
        self.signal_at_jammer_rx_dbm() - self.noise_floor_dbm
    }

    /// SIR at the AP while the jammer transmits, dB — the paper's x-axis
    /// ("measured received SIR at access point").
    pub fn sir_ap_db(&self) -> f64 {
        self.signal_at_ap_dbm() - self.jam_at_ap_dbm()
    }

    /// SIR at the client while the jammer transmits, dB.
    pub fn sir_client_db(&self) -> f64 {
        self.signal_at_client_dbm() - self.jam_at_client_dbm()
    }

    /// Probability a backoff slot at the client is deferred by jammer
    /// energy: a soft CCA decision, 50 % at the threshold with a ~6 dB
    /// transition (hardware CCA is specified loosely; a sigmoid models the
    /// comparator's dither across WGN envelope fluctuation and produces the
    /// gradual bandwidth decline of Fig. 10 before the hard kill).
    pub fn cca_defer_prob(&self) -> f64 {
        let margin = self.jam_at_client_dbm() - self.cca_threshold_dbm;
        1.0 / (1.0 + (-margin / 3.0).exp())
    }

    /// Sets the jammer drive (TX power minus attenuator) so the SIR at the
    /// AP equals `sir_db`, returning the implied jammer TX power with the
    /// current attenuator setting.
    pub fn set_sir_ap_db(&mut self, sir_db: f64) -> f64 {
        // sir = signal_at_ap - (tx - atten - loss - pad)
        let loss = self.net.insertion_loss_db(Port::JammerTx, Port::Ap) + self.ap_pad_db;
        self.jammer_tx_dbm = self.signal_at_ap_dbm() - sir_db + loss + self.jammer_atten_db;
        self.jammer_tx_dbm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_path_arithmetic() {
        let b = TestbedBudget::default();
        // 18 dBm - 20 - 51.0 - 20 = -73 dBm.
        assert!((b.signal_at_ap_dbm() + 73.0).abs() < 1e-9);
        assert!((b.snr_ap_db() - 28.0).abs() < 1e-9);
    }

    #[test]
    fn jammer_paths_differ_by_table1() {
        let b = TestbedBudget::default();
        // Jam at AP: 10 - 0 - 38.4 - 20 = -48.4; at client: 10 - 32.0 - 20 = -42.
        assert!((b.jam_at_ap_dbm() + 48.4).abs() < 1e-9);
        assert!((b.jam_at_client_dbm() + 42.0).abs() < 1e-9);
    }

    #[test]
    fn sir_setter_roundtrips() {
        let mut b = TestbedBudget::default();
        for target in [33.85, 15.94, 2.79, 0.0, 50.0] {
            b.set_sir_ap_db(target);
            assert!((b.sir_ap_db() - target).abs() < 1e-9, "target {target}");
        }
    }

    #[test]
    fn attenuator_trades_against_tx_power() {
        let mut b = TestbedBudget::default();
        b.set_sir_ap_db(20.0);
        let p0 = b.jammer_tx_dbm;
        b.jammer_atten_db = 10.0;
        b.set_sir_ap_db(20.0);
        assert!((b.jammer_tx_dbm - (p0 + 10.0)).abs() < 1e-9);
        assert!((b.sir_ap_db() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cca_defer_probability_sigmoid() {
        // Weak jammer: margin very negative, defer ~ 0.
        let mut b = TestbedBudget {
            jammer_tx_dbm: -70.0,
            ..Default::default()
        };
        assert!(b.cca_defer_prob() < 0.01);
        // Strong jammer: margin positive, defer ~ 1.
        b.jammer_tx_dbm = -20.0;
        assert!(b.cca_defer_prob() > 0.99);
        // Mid transition near the calibrated threshold.
        b.jammer_tx_dbm = -48.0; // jam_at_client = -100 dBm = threshold
        assert!((b.cca_defer_prob() - 0.5).abs() < 0.05);
    }

    #[test]
    fn jammer_rx_snr_reasonable() {
        let b = TestbedBudget::default();
        // 18 - 20 - 32.8 = -34.8 dBm at the jammer RX; SNR ~ 60 dB: the
        // detector sees the client loud and clear, as in the paper.
        assert!((b.signal_at_jammer_rx_dbm() + 34.8).abs() < 1e-9);
        assert!(b.snr_jammer_rx_db() > 50.0);
    }

    #[test]
    fn sir_difference_between_ap_and_client_fixed_by_network() {
        let mut b = TestbedBudget::default();
        b.set_sir_ap_db(20.0);
        let d1 = b.sir_ap_db() - b.sir_client_db();
        b.set_sir_ap_db(5.0);
        let d2 = b.sir_ap_db() - b.sir_client_db();
        assert!((d1 - d2).abs() < 1e-9, "offset is a network constant");
    }
}
