//! Experiment campaign runners — one per figure of the paper.
//!
//! Every campaign is described by a [`CampaignSpec`] builder and executed
//! by a [`CampaignEngine`]: the spec decides *what* to measure (preset,
//! emission, SNR grid, trial count, seed), the engine decides *how many
//! worker threads* run the independent shards. Output is bit-identical for
//! any thread count — see the [`crate::engine`] module docs for the
//! determinism contract.
//!
//! The `rjam-bench` figure binaries print the returned rows in the paper's
//! format.

use crate::engine::{CampaignEngine, CancelToken};
use crate::jammer::{BlockScratch, ReactiveJammer, DEFAULT_LOCKOUT};
use crate::presets::{build_config, DetectionPreset, JammerPreset};
use crate::testbed::TestbedBudget;
use rjam_channel::monitor::ScopeTrace;
use rjam_channel::noise::NoiseSource;
use rjam_fpga::{CoreEvent, DspLaneBank, LaneBankScratch};
use rjam_mac::model::{JammerKind, Scenario};
use rjam_mac::{run_scenario, IperfReport, MacObsDelta, ScenarioRun};
use rjam_sdr::complex::{Cf64, IqI16};
use rjam_sdr::power::{db_to_lin, mean_power, scale_to_power};
use rjam_sdr::resample::{fractional_delay, to_usrp_rate};
use rjam_sdr::rng::Rng;
use std::collections::BTreeMap;

/// One point of a detection-probability sweep (Figs 6-8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectionPoint {
    /// SNR at the detector's receiver, dB.
    pub snr_db: f64,
    /// Fraction of frames that produced at least one detection.
    pub p_detect: f64,
    /// Mean detections per frame (Fig. 8's "multiple detections" band shows
    /// up here as values above 1).
    pub triggers_per_frame: f64,
}

/// What the WiFi transmitter emits during a detection sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WifiEmission {
    /// Complete frames (10 STS, 2 LTS, SIGNAL, payload).
    FullFrames {
        /// PSDU length in bytes.
        psdu_len: usize,
    },
    /// A pseudo-frame with a single 16-sample short training symbol.
    SingleShortPreamble,
    /// A pseudo-frame with a single 64-sample long training symbol.
    SingleLongPreamble,
}

/// Mean RX signal power (relative to full scale) the sweeps calibrate to.
const RX_LEVEL: f64 = 0.02;
/// Noise lead-in before each frame, 25 MSPS samples (detector warm-up).
const LEAD_IN: usize = 256;
/// Noise tail after each frame.
const TAIL: usize = 128;
/// Frames per detection-sweep work unit: each SNR point splits into
/// `(snr, seed-block)` cells of this many frames, so the engine has far
/// more units than workers to balance. Unit boundaries are a pure function
/// of the spec, never of the thread count.
const DETECTION_FRAMES_PER_UNIT: usize = 8;
/// Noise samples per false-alarm work unit. Unit boundaries are a pure
/// function of the requested sample count, never of the thread count.
const FA_UNIT_SAMPLES: usize = 1 << 18;
/// Block size the false-alarm measurement streams noise in.
const FA_CHUNK: usize = 65_536;
/// Downlink frames per WiMAX work unit.
const WIMAX_FRAMES_PER_UNIT: usize = 4;

/// Builds the 25 MSPS emission waveform for one trial. Each frame gets a
/// random fractional sampling phase — transmitter and receiver clocks are
/// unsynchronized, which is a first-order contributor to the paper's
/// measured (sub-ideal) detection rates.
fn emission_waveform(kind: WifiEmission, rate: rjam_phy80211::Rate, rng: &mut Rng) -> Vec<Cf64> {
    let native = match kind {
        WifiEmission::FullFrames { psdu_len } => {
            let mut psdu = vec![0u8; psdu_len];
            rng.fill_bytes(&mut psdu);
            rjam_phy80211::tx::modulate_frame(&rjam_phy80211::tx::Frame::new(rate, psdu))
        }
        WifiEmission::SingleShortPreamble => rjam_phy80211::tx::single_short_preamble(),
        WifiEmission::SingleLongPreamble => rjam_phy80211::tx::single_long_preamble(),
    };
    let up = to_usrp_rate(&native, rjam_sdr::WIFI_SAMPLE_RATE);
    fractional_delay(&up, rng.uniform() * 0.999)
}

/// Counts detections whose sample index falls inside `[lo, hi)`.
fn count_in_window(events: &[CoreEvent], lo: u64, hi: u64, energy: bool) -> usize {
    events
        .iter()
        .filter(|e| {
            let s = e.sample();
            let kind_ok = if energy {
                matches!(e, CoreEvent::EnergyHigh { .. })
            } else {
                matches!(e, CoreEvent::XcorrDetection { .. })
            };
            kind_ok && s >= lo && s < hi
        })
        .count()
}

/// Builds a [`DspLaneBank`] with one lane per preset: the preset's
/// correlator template plus the `xcorr_threshold` its compiled monitor
/// config would carry, all at the same lockout the single-core sweeps use.
/// Returns `None` when any preset is energy-only (no template) or the
/// grid exceeds the bank capacity — callers fall back to the per-preset
/// paths in that case.
fn lane_bank_for(presets: &[DetectionPreset], lockout: u64) -> Option<DspLaneBank> {
    if presets.is_empty() || presets.len() > rjam_fpga::lanes::MAX_LANES {
        return None;
    }
    let mut bank = DspLaneBank::new();
    for preset in presets {
        let t = preset.template()?;
        let threshold = build_config(preset, &JammerPreset::Monitor, lockout).xcorr_threshold;
        bank.add_lane(&t.coeff_i, &t.coeff_q, threshold, lockout);
    }
    Some(bank)
}

/// The false-alarm measurement of [`FalseAlarmSpec::run_counts`] evaluated
/// for N correlator presets in one streaming pass: identical unit
/// boundaries, identical per-unit noise streams (`shard_seed(seed, index)`),
/// identical quantization — but every threshold rides one lane of a shared
/// [`DspLaneBank`], so the sign-bit popcount pass is paid once per distinct
/// template instead of once per preset. Returns one `(triggers, samples)`
/// pair per preset, each bit-identical to a dedicated `run_counts` run of
/// that preset at the same seed. `None` when the presets don't fit a bank.
fn false_alarm_lane_counts(
    engine: &CampaignEngine,
    presets: &[DetectionPreset],
    samples: usize,
    seed: u64,
    kind: &'static str,
) -> Option<Vec<(u64, u64)>> {
    struct FaLanePool {
        bank: DspLaneBank,
        quant: Vec<IqI16>,
    }
    lane_bank_for(presets, DEFAULT_LOCKOUT)?;
    let n_units = samples.div_ceil(FA_UNIT_SAMPLES);
    let counts = engine.run_units_kind(
        kind,
        n_units,
        seed,
        || FaLanePool {
            bank: lane_bank_for(presets, DEFAULT_LOCKOUT).expect("presets checked above"),
            quant: Vec::new(),
        },
        |pool, ctx| {
            let lo = ctx.index * FA_UNIT_SAMPLES;
            let n = FA_UNIT_SAMPLES.min(samples - lo);
            pool.bank.reset();
            // A terminated input still shows the receiver noise floor —
            // the same stream FalseAlarmSpec::run_counts derives.
            let mut noise = NoiseSource::new(RX_LEVEL / db_to_lin(20.0), Rng::seed_from(ctx.seed));
            let mut done = 0usize;
            while done < n {
                let m = FA_CHUNK.min(n - done);
                pool.quant.clear();
                for _ in 0..m {
                    pool.quant.push(IqI16::from_cf64(noise.next_sample()));
                }
                pool.bank.process_block(&pool.quant);
                done += m;
            }
            (pool.bank.trigger_counts(), n as u64)
        },
    );
    let mut out = vec![(0u64, 0u64); presets.len()];
    for (lane_triggers, n) in &counts {
        for (lane, &t) in lane_triggers.iter().enumerate() {
            out[lane].0 += t;
            out[lane].1 += n;
        }
    }
    if rjam_obs::enabled() {
        use rjam_obs::registry::counter;
        // Truthful accounting: the noise was streamed once, not once per
        // preset; triggers sum across lanes.
        counter("core.fa_samples").add(samples as u64);
        counter("core.fa_triggers").add(out.iter().map(|&(t, _)| t).sum());
    }
    Some(out)
}

/// The detection half of [`WifiDetectionSpec::run`] at one SNR, evaluated
/// for N correlator presets over one shared emission stream: identical
/// `(seed-block)` unit boundaries and per-unit frame/noise streams, with
/// every preset's threshold on its own lane. Returns detected-frame counts
/// per preset, each bit-identical to a dedicated single-preset sweep at
/// the same seed. `None` when the presets don't fit a bank.
fn detection_lane_counts(
    engine: &CampaignEngine,
    presets: &[DetectionPreset],
    emission: WifiEmission,
    snr_db: f64,
    frames_per_point: usize,
    seed: u64,
    kind: &'static str,
) -> Option<Vec<usize>> {
    struct DetLanePool {
        bank: DspLaneBank,
        stream: Vec<Cf64>,
        quant: Vec<IqI16>,
        scratch: LaneBankScratch,
    }
    lane_bank_for(presets, DEFAULT_LOCKOUT)?;
    let blocks_per_point = frames_per_point.div_ceil(DETECTION_FRAMES_PER_UNIT).max(1);
    let cells = engine.run_units_kind(
        kind,
        blocks_per_point,
        seed,
        || DetLanePool {
            bank: lane_bank_for(presets, DEFAULT_LOCKOUT).expect("presets checked above"),
            stream: Vec::new(),
            quant: Vec::new(),
            scratch: LaneBankScratch::default(),
        },
        |pool, ctx| {
            let lo = ctx.index * DETECTION_FRAMES_PER_UNIT;
            let frames = DETECTION_FRAMES_PER_UNIT.min(frames_per_point - lo);
            let mut rng = Rng::seed_from(ctx.seed);
            pool.bank.reset();
            let noise_power = RX_LEVEL / db_to_lin(snr_db);
            let mut noise = NoiseSource::new(noise_power, rng.fork());
            let mut detected = vec![0usize; presets.len()];
            for _ in 0..frames {
                let mut wave = emission_waveform(emission, rjam_phy80211::Rate::R12, &mut rng);
                scale_to_power(&mut wave, RX_LEVEL);
                pool.stream.clear();
                for _ in 0..LEAD_IN {
                    pool.stream.push(noise.next_sample());
                }
                let frame_lo = pool.stream.len() as u64;
                pool.stream
                    .extend(wave.iter().map(|&s| s + noise.next_sample()));
                let frame_hi = pool.stream.len() as u64 + 64; // allow pipeline lag
                for _ in 0..TAIL {
                    pool.stream.push(noise.next_sample());
                }
                let base = pool.bank.samples_processed();
                pool.quant.clear();
                pool.quant
                    .extend(pool.stream.iter().map(|&s| IqI16::from_cf64(s)));
                pool.scratch.clear();
                pool.bank.process_block_into(&pool.quant, &mut pool.scratch);
                for (lane, hits) in pool.scratch.triggers.iter().take(presets.len()).enumerate() {
                    if hits
                        .iter()
                        .any(|&s| s >= base + frame_lo && s < base + frame_hi)
                    {
                        detected[lane] += 1;
                    }
                }
            }
            detected
        },
    );
    let mut out = vec![0usize; presets.len()];
    for cell in &cells {
        for (lane, &d) in cell.iter().enumerate() {
            out[lane] += d;
        }
    }
    if rjam_obs::enabled() {
        use rjam_obs::registry::counter;
        counter("core.sweep_frames").add(frames_per_point as u64);
        counter("core.sweep_detections").add(out.iter().map(|&d| d as u64).sum());
    }
    Some(out)
}

/// Channel model for detection sweeps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChannelModel {
    /// Pure AWGN — the paper's conducted testbed.
    Awgn,
    /// Rayleigh multipath with an exponential power-delay profile (over-the-
    /// air extension): a fresh realization per frame.
    Rayleigh {
        /// Number of channel taps at 25 MSPS.
        taps: usize,
        /// RMS delay spread in samples.
        rms: f64,
    },
}

/// Entry point to the campaign vocabulary: each constructor returns a
/// typed builder whose `run(&engine)` executes the experiment sharded.
///
/// ```no_run
/// use rjam_core::campaign::{CampaignSpec, WifiEmission};
/// use rjam_core::engine::CampaignEngine;
/// use rjam_core::presets::DetectionPreset;
///
/// let engine = CampaignEngine::from_env();
/// let points = CampaignSpec::wifi_detection(&DetectionPreset::WifiShortPreamble {
///     threshold: 0.3,
/// })
/// .emission(WifiEmission::FullFrames { psdu_len: 60 })
/// .snr_range(-9.0, 12.0, 3.0)
/// .trials(100)
/// .seed(7)
/// .run(&engine);
/// assert!(!points.is_empty());
/// ```
pub struct CampaignSpec;

impl CampaignSpec {
    /// A WiFi detection-probability sweep (methodology of Figs 6-8).
    ///
    /// Default campaign sizes are calibrated to the fine-grained engine:
    /// 400 frames per point keeps the binomial error bars under ~2.5 %
    /// and still finishes faster than the old 40-frame default did before
    /// worker pools (shard setup used to dominate).
    pub fn wifi_detection(preset: &DetectionPreset) -> WifiDetectionSpec {
        WifiDetectionSpec {
            preset: preset.clone(),
            emission: WifiEmission::FullFrames { psdu_len: 60 },
            channel: ChannelModel::Awgn,
            snrs_db: Vec::new(),
            frames_per_point: 400,
            seed: 0,
        }
    }

    /// A noise-only false-alarm measurement.
    pub fn false_alarm(preset: &DetectionPreset) -> FalseAlarmSpec {
        FalseAlarmSpec {
            preset: preset.clone(),
            samples: 10_000_000,
            seed: 0,
        }
    }

    /// A receiver-operating-characteristic sweep over thresholds.
    pub fn roc(make_preset: &(dyn Fn(f64) -> DetectionPreset + Sync)) -> RocSpec<'_> {
        RocSpec {
            make_preset,
            emission: WifiEmission::FullFrames { psdu_len: 60 },
            snr_db: 0.0,
            thresholds: Vec::new(),
            frames_per_point: 200,
            fa_samples: 1_500_000,
            seed: 0,
        }
    }

    /// The WiMAX downlink detection/jamming correspondence experiment
    /// (Fig. 12).
    pub fn wimax_detection() -> WimaxDetectionSpec {
        WimaxDetectionSpec {
            fused: true,
            frames: 48,
            snr_db: 20.0,
            xcorr_threshold: 0.45,
            seed: 0,
        }
    }

    /// A Fig. 10/11 iperf jamming sweep for one jammer variant.
    pub fn jamming(jammer: JammerUnderTest) -> JammingSweepSpec {
        JammingSweepSpec {
            jammer,
            sirs_db: Vec::new(),
            duration_s: 3.0,
            seed: 0,
        }
    }

    /// A time-to-detect sweep for the online health monitor: jammer
    /// variant (duty cycle) × SIR grid, measuring frames from jam onset
    /// to the first raised alarm and the clean-run false-alarm count.
    pub fn health_time_to_detect() -> HealthSweepSpec {
        HealthSweepSpec {
            jammers: vec![
                JammerUnderTest::Off,
                JammerUnderTest::ReactiveShort,
                JammerUnderTest::ReactiveLong,
                JammerUnderTest::Continuous,
            ],
            sirs_db: vec![1.0, 14.0, 25.0],
            duration_s: 1.0,
            cadence: 16,
            seed: 0,
        }
    }
}

/// Builder for WiFi detection sweeps — see [`CampaignSpec::wifi_detection`].
#[derive(Clone, Debug)]
pub struct WifiDetectionSpec {
    preset: DetectionPreset,
    emission: WifiEmission,
    channel: ChannelModel,
    snrs_db: Vec<f64>,
    frames_per_point: usize,
    seed: u64,
}

impl WifiDetectionSpec {
    /// What the transmitter emits each trial.
    pub fn emission(mut self, emission: WifiEmission) -> Self {
        self.emission = emission;
        self
    }

    /// Channel model between transmitter and detector.
    pub fn channel(mut self, channel: ChannelModel) -> Self {
        self.channel = channel;
        self
    }

    /// Explicit SNR grid in dB.
    pub fn snrs(mut self, snrs_db: &[f64]) -> Self {
        self.snrs_db = snrs_db.to_vec();
        self
    }

    /// Inclusive SNR range `lo..=hi` in `step`-dB increments.
    pub fn snr_range(mut self, lo_db: f64, hi_db: f64, step_db: f64) -> Self {
        assert!(step_db > 0.0, "snr_range needs a positive step");
        self.snrs_db.clear();
        let mut snr = lo_db;
        while snr <= hi_db + 1e-9 {
            self.snrs_db.push(snr);
            snr += step_db;
        }
        self
    }

    /// Frames emitted per SNR point.
    pub fn trials(mut self, frames_per_point: usize) -> Self {
        self.frames_per_point = frames_per_point;
        self
    }

    /// Campaign seed; every shard derives its own stream from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the sweep over fine-grained `(snr, seed-block)` cells: each
    /// SNR point splits into `DETECTION_FRAMES_PER_UNIT`-frame units, so
    /// the engine always has many more units than workers. Each worker
    /// owns one pooled detector core, scratch and stream buffer
    /// ([`ReactiveJammer::reset`] between units instead of a rebuild);
    /// every unit derives its frames and noise from its own
    /// [`crate::engine::ShardCtx`] seed and per-point results are summed
    /// in unit order, so output is bit-identical at any thread count.
    pub fn run(&self, engine: &CampaignEngine) -> Vec<DetectionPoint> {
        self.run_ckpt(engine, &mut BTreeMap::new(), None)
            .expect("uncancelled campaign always completes")
    }

    /// Number of engine work units this spec runs — the checkpoint keyspace
    /// for [`WifiDetectionSpec::run_ckpt`].
    pub fn n_units(&self) -> usize {
        let blocks_per_point = self
            .frames_per_point
            .div_ceil(DETECTION_FRAMES_PER_UNIT)
            .max(1);
        self.snrs_db.len() * blocks_per_point
    }

    /// Checkpointed, cancellable [`WifiDetectionSpec::run`]: `done` carries
    /// per-unit `(detected_frames, total_triggers)` cells across
    /// interruptions and `cancel` stops the sweep between units. Returns
    /// `None` when interrupted (completed cells stay in `done`); a later
    /// call with the same spec and checkpoint resumes and produces the
    /// **bit-identical** points an uninterrupted run would have — unit
    /// seeds derive from original unit indices, and the per-point
    /// reduction sums integers in unit order. With an empty checkpoint and
    /// no token this is exactly `run`.
    pub fn run_ckpt(
        &self,
        engine: &CampaignEngine,
        done: &mut BTreeMap<usize, (usize, usize)>,
        cancel: Option<&CancelToken>,
    ) -> Option<Vec<DetectionPoint>> {
        struct DetectionPool {
            jammer: ReactiveJammer,
            scratch: BlockScratch,
            stream: Vec<Cf64>,
        }
        let energy_detector = matches!(self.preset, DetectionPreset::EnergyRise { .. });
        let blocks_per_point = self
            .frames_per_point
            .div_ceil(DETECTION_FRAMES_PER_UNIT)
            .max(1);
        let cells = engine.run_units_ckpt(
            "wifi_detection",
            self.snrs_db.len() * blocks_per_point,
            self.seed,
            done,
            cancel,
            || DetectionPool {
                // Correlation sweeps use a lockout so the 10 STS
                // repetitions count as one detection; the energy sweep
                // counts raw rise triggers (the paper reports "multiple
                // detections per frame" in the mid-SNR band).
                jammer: ReactiveJammer::from_presets(
                    &self.preset,
                    &JammerPreset::Monitor,
                    if energy_detector { 0 } else { DEFAULT_LOCKOUT },
                ),
                scratch: BlockScratch::new(),
                stream: Vec::new(),
            },
            |pool, ctx| {
                let snr_db = self.snrs_db[ctx.index / blocks_per_point];
                let lo = (ctx.index % blocks_per_point) * DETECTION_FRAMES_PER_UNIT;
                let frames = DETECTION_FRAMES_PER_UNIT.min(self.frames_per_point - lo);
                let mut rng = Rng::seed_from(ctx.seed);
                pool.jammer.reset();
                let noise_power = RX_LEVEL / db_to_lin(snr_db);
                let mut noise = NoiseSource::new(noise_power, rng.fork());
                let mut detected_frames = 0usize;
                let mut total_triggers = 0usize;
                for _ in 0..frames {
                    let mut wave =
                        emission_waveform(self.emission, rjam_phy80211::Rate::R12, &mut rng);
                    if let ChannelModel::Rayleigh { taps, rms } = self.channel {
                        let ch = rjam_channel::MultipathChannel::rayleigh(taps, rms, &mut rng);
                        wave = ch.apply(&wave);
                    }
                    scale_to_power(&mut wave, RX_LEVEL);
                    pool.stream.clear();
                    for _ in 0..LEAD_IN {
                        pool.stream.push(noise.next_sample());
                    }
                    let frame_lo = pool.stream.len() as u64;
                    pool.stream
                        .extend(wave.iter().map(|&s| s + noise.next_sample()));
                    let frame_hi = pool.stream.len() as u64 + 64; // allow pipeline lag
                    for _ in 0..TAIL {
                        pool.stream.push(noise.next_sample());
                    }
                    let base = pool.jammer.core_mut().samples_processed();
                    pool.jammer
                        .process_block_into(&pool.stream, &mut pool.scratch);
                    let n = count_in_window(
                        pool.jammer.events(),
                        base + frame_lo,
                        base + frame_hi,
                        energy_detector,
                    );
                    if n > 0 {
                        detected_frames += 1;
                    }
                    total_triggers += n;
                }
                (detected_frames, total_triggers)
            },
        )?;
        // Per-point reduction in unit order: integer sums, so the merged
        // ratios are bit-identical regardless of how units were grouped.
        let points: Vec<DetectionPoint> = self
            .snrs_db
            .iter()
            .enumerate()
            .map(|(p, &snr_db)| {
                let (detected, triggers) = cells[p * blocks_per_point..(p + 1) * blocks_per_point]
                    .iter()
                    .fold((0usize, 0usize), |(d, t), &(cd, ct)| (d + cd, t + ct));
                DetectionPoint {
                    snr_db,
                    p_detect: detected as f64 / self.frames_per_point as f64,
                    triggers_per_frame: triggers as f64 / self.frames_per_point as f64,
                }
            })
            .collect();
        if rjam_obs::enabled() {
            use rjam_obs::registry::counter;
            let frames = (self.snrs_db.len() * self.frames_per_point) as u64;
            let detected: f64 = points
                .iter()
                .map(|p| p.p_detect * self.frames_per_point as f64)
                .sum();
            counter("core.sweep_frames").add(frames);
            counter("core.sweep_detections").add(detected.round() as u64);
        }
        Some(points)
    }
}

/// Builder for false-alarm measurements — see [`CampaignSpec::false_alarm`].
#[derive(Clone, Debug)]
pub struct FalseAlarmSpec {
    preset: DetectionPreset,
    samples: usize,
    seed: u64,
}

impl FalseAlarmSpec {
    /// Total noise samples to stream.
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Campaign seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Measures the detector's false-alarm rate on noise alone,
    /// extrapolated to triggers per second (the paper terminates the
    /// receiver input and counts for 30 minutes; we process `samples`
    /// noise samples and scale). See [`FalseAlarmSpec::run_counts`] for
    /// the sharding and the raw numerator/denominator.
    pub fn run(&self, engine: &CampaignEngine) -> f64 {
        let (triggers, samples) = self.run_counts(engine);
        if samples == 0 {
            return 0.0;
        }
        triggers as f64 / (samples as f64 / rjam_sdr::USRP_SAMPLE_RATE)
    }

    /// Runs the measurement and returns `(triggers, samples)` — the raw
    /// trigger count and the noise samples actually streamed. The
    /// denominator always equals the requested sample count: the campaign
    /// splits into fixed-size (`FA_UNIT_SAMPLES`, 2^18) sample units whose
    /// boundaries depend only on the request, and the final unit processes
    /// exactly the remainder. Each worker pools one detector core and
    /// scratch buffers (reset between units); per-unit counts are summed
    /// in unit order.
    pub fn run_counts(&self, engine: &CampaignEngine) -> (u64, u64) {
        self.run_counts_ckpt(engine, &mut BTreeMap::new(), None)
            .expect("uncancelled campaign always completes")
    }

    /// Number of engine work units this spec runs — the checkpoint keyspace
    /// for [`FalseAlarmSpec::run_counts_ckpt`].
    pub fn n_units(&self) -> usize {
        self.samples.div_ceil(FA_UNIT_SAMPLES)
    }

    /// Checkpointed, cancellable [`FalseAlarmSpec::run_counts`]: `done`
    /// carries per-unit `(triggers, samples)` pairs across interruptions,
    /// `cancel` stops the measurement between units. Returns `None` when
    /// interrupted; resuming with the same spec and checkpoint yields the
    /// bit-identical totals of an uninterrupted run.
    pub fn run_counts_ckpt(
        &self,
        engine: &CampaignEngine,
        done: &mut BTreeMap<usize, (u64, u64)>,
        cancel: Option<&CancelToken>,
    ) -> Option<(u64, u64)> {
        struct FaPool {
            jammer: ReactiveJammer,
            scratch: BlockScratch,
            block: Vec<Cf64>,
        }
        let energy_detector = matches!(self.preset, DetectionPreset::EnergyRise { .. });
        let n_units = self.samples.div_ceil(FA_UNIT_SAMPLES);
        let counts = engine.run_units_ckpt(
            "false_alarm",
            n_units,
            self.seed,
            done,
            cancel,
            || FaPool {
                jammer: ReactiveJammer::from_presets(
                    &self.preset,
                    &JammerPreset::Monitor,
                    DEFAULT_LOCKOUT,
                ),
                scratch: BlockScratch::new(),
                block: Vec::new(),
            },
            |pool, ctx| {
                let lo = ctx.index * FA_UNIT_SAMPLES;
                let n = FA_UNIT_SAMPLES.min(self.samples - lo);
                pool.jammer.reset();
                // A terminated input still shows the receiver noise floor.
                let mut noise =
                    NoiseSource::new(RX_LEVEL / db_to_lin(20.0), Rng::seed_from(ctx.seed));
                let mut done = 0usize;
                while done < n {
                    let m = FA_CHUNK.min(n - done);
                    pool.block.clear();
                    for _ in 0..m {
                        pool.block.push(noise.next_sample());
                    }
                    pool.jammer
                        .process_block_into(&pool.block, &mut pool.scratch);
                    done += m;
                }
                let triggers = pool
                    .jammer
                    .events()
                    .iter()
                    .filter(|e| {
                        if energy_detector {
                            matches!(e, CoreEvent::EnergyHigh { .. })
                        } else {
                            matches!(e, CoreEvent::XcorrDetection { .. })
                        }
                    })
                    .count();
                (triggers as u64, n as u64)
            },
        )?;
        let (triggers, samples) = counts
            .iter()
            .fold((0u64, 0u64), |(t, s), &(ct, cs)| (t + ct, s + cs));
        if rjam_obs::enabled() {
            use rjam_obs::registry::counter;
            counter("core.fa_samples").add(samples);
            counter("core.fa_triggers").add(triggers);
        }
        Some((triggers, samples))
    }

    /// Sweeps a grid of correlation-threshold fractions in **one** noise
    /// pass: every fraction becomes a [`DspLaneBank`] lane over the base
    /// preset's template, so the sign-bit popcount pass is paid once per
    /// sample instead of once per grid point. Unit boundaries, per-unit
    /// noise streams and quantization are exactly those of
    /// [`FalseAlarmSpec::run_counts`], so the `k`-th `(triggers, samples)`
    /// pair is bit-identical to running
    /// `self.preset.with_xcorr_fraction(fractions[k])` through
    /// `run_counts` at the same seed — just without re-streaming the noise
    /// per point.
    ///
    /// # Panics
    /// Panics if `fractions` is empty, exceeds
    /// [`rjam_fpga::lanes::MAX_LANES`], or the preset is energy-only
    /// (energy thresholds are in dB, not peak fractions — see
    /// [`DetectionPreset::with_xcorr_fraction`]).
    pub fn run_grid_counts(&self, engine: &CampaignEngine, fractions: &[f64]) -> Vec<(u64, u64)> {
        assert!(!fractions.is_empty(), "threshold grid is empty");
        assert!(
            fractions.len() <= rjam_fpga::lanes::MAX_LANES,
            "threshold grid exceeds the {}-lane bank capacity",
            rjam_fpga::lanes::MAX_LANES
        );
        let presets: Vec<DetectionPreset> = fractions
            .iter()
            .map(|&f| {
                self.preset.with_xcorr_fraction(f).expect(
                    "threshold grids need a correlator preset \
                     (energy thresholds are in dB, not peak fractions)",
                )
            })
            .collect();
        false_alarm_lane_counts(engine, &presets, self.samples, self.seed, "fa_grid")
            .expect("correlator presets always fit a lane bank")
    }
}

/// One point of a receiver-operating-characteristic sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RocPoint {
    /// Correlation threshold as a fraction of the template's ideal peak.
    pub threshold: f64,
    /// Measured false-alarm rate on noise-only input, triggers/second.
    pub fa_per_s: f64,
    /// Detection probability at the probe SNR.
    pub p_detect: f64,
}

/// Builder for ROC sweeps — see [`CampaignSpec::roc`].
pub struct RocSpec<'a> {
    make_preset: &'a (dyn Fn(f64) -> DetectionPreset + Sync),
    emission: WifiEmission,
    snr_db: f64,
    thresholds: Vec<f64>,
    frames_per_point: usize,
    fa_samples: usize,
    seed: u64,
}

impl RocSpec<'_> {
    /// What the transmitter emits for the detection half of each point.
    pub fn emission(mut self, emission: WifiEmission) -> Self {
        self.emission = emission;
        self
    }

    /// Probe SNR for the detection measurement, dB.
    pub fn snr_db(mut self, snr_db: f64) -> Self {
        self.snr_db = snr_db;
        self
    }

    /// Threshold fractions to sweep.
    pub fn thresholds(mut self, thresholds: &[f64]) -> Self {
        self.thresholds = thresholds.to_vec();
        self
    }

    /// Frames per threshold for the detection half.
    pub fn trials(mut self, frames_per_point: usize) -> Self {
        self.frames_per_point = frames_per_point;
        self
    }

    /// Noise samples per threshold for the false-alarm half.
    pub fn fa_samples(mut self, fa_samples: usize) -> Self {
        self.fa_samples = fa_samples;
        self
    }

    /// Campaign seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sweeps the correlation threshold to trace the detector's ROC at one
    /// SNR: the quantitative form of Fig. 6's two-operating-point
    /// comparison ("aiming for a lower false alarm rate generally
    /// decreases the probability of detection"). Every threshold's
    /// false-alarm half reuses the *same* derived noise stream and its
    /// detection half the *same* derived emission stream, so both ROC axes
    /// are monotone in the threshold by construction — a stricter threshold
    /// sees the identical air and can only lose triggers, never gain them.
    ///
    /// For correlator presets the sweep runs on a [`DspLaneBank`]: all
    /// thresholds become lanes of one bank, the shared noise and emission
    /// streams are synthesized and sign-sliced **once**, and every
    /// threshold's comparator rides the same popcount pass. The produced
    /// points are bit-identical to the per-threshold nested path (the unit
    /// seeds, streams, quantization and the final float divisions all
    /// match), which remains as the fallback for energy presets and
    /// oversized grids.
    pub fn run(&self, engine: &CampaignEngine) -> Vec<RocPoint> {
        // Shared streams across thresholds: one for the FA half, one for
        // the detection half.
        let fa_seed = self.seed ^ 0xFA;
        let det_seed = self.seed ^ 0xD7;
        let presets: Vec<DetectionPreset> = self
            .thresholds
            .iter()
            .map(|&t| (self.make_preset)(t))
            .collect();
        if let Some(fa) =
            false_alarm_lane_counts(engine, &presets, self.fa_samples, fa_seed, "roc_fa")
        {
            let det = detection_lane_counts(
                engine,
                &presets,
                self.emission,
                self.snr_db,
                self.frames_per_point,
                det_seed,
                "roc_detect",
            )
            .expect("lane applicability is identical for both halves");
            return self
                .thresholds
                .iter()
                .enumerate()
                .map(|(k, &thr)| {
                    let (triggers, samples) = fa[k];
                    RocPoint {
                        threshold: thr,
                        fa_per_s: if samples == 0 {
                            0.0
                        } else {
                            triggers as f64 / (samples as f64 / rjam_sdr::USRP_SAMPLE_RATE)
                        },
                        p_detect: det[k] as f64 / self.frames_per_point as f64,
                    }
                })
                .collect();
        }
        self.run_nested(engine)
    }

    /// The pre-lane-bank path: one shard per threshold, each running its
    /// own serial false-alarm and detection sub-campaigns. Kept as the
    /// fallback for presets a lane bank cannot express (energy detectors)
    /// and as the reference the lane path is byte-compared against.
    fn run_nested(&self, engine: &CampaignEngine) -> Vec<RocPoint> {
        let fa_seed = self.seed ^ 0xFA;
        let det_seed = self.seed ^ 0xD7;
        engine.run_shards_kind("roc", self.thresholds.len(), self.seed, |ctx| {
            let thr = self.thresholds[ctx.index];
            let preset = (self.make_preset)(thr);
            let fa = CampaignSpec::false_alarm(&preset)
                .samples(self.fa_samples)
                .seed(fa_seed)
                .run(&CampaignEngine::serial());
            let det = CampaignSpec::wifi_detection(&preset)
                .emission(self.emission)
                .snrs(&[self.snr_db])
                .trials(self.frames_per_point)
                .seed(det_seed)
                .run(&CampaignEngine::serial());
            RocPoint {
                threshold: thr,
                fa_per_s: fa,
                p_detect: det[0].p_detect,
            }
        })
    }
}

/// Result of the WiMAX detection experiment (Fig. 12 / §5).
#[derive(Clone, Debug)]
pub struct WimaxResult {
    /// Fraction of downlink frames detected.
    pub detect_fraction: f64,
    /// Mean response latency from frame start, microseconds.
    pub mean_latency_us: f64,
    /// Scope-style trace with `frame` and `jam` markers.
    pub scope: ScopeTrace,
    /// One-to-one frame/jam correspondence held over the whole capture.
    pub one_to_one: bool,
}

/// Builder for the WiMAX experiment — see [`CampaignSpec::wimax_detection`].
#[derive(Clone, Debug)]
pub struct WimaxDetectionSpec {
    fused: bool,
    frames: usize,
    snr_db: f64,
    xcorr_threshold: f64,
    seed: u64,
}

impl WimaxDetectionSpec {
    /// Use the fused correlator+energy detector (vs the correlator alone).
    pub fn fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Number of TDD downlink frames to receive.
    pub fn frames(mut self, frames: usize) -> Self {
        self.frames = frames;
        self
    }

    /// Receive SNR, dB.
    pub fn snr_db(mut self, snr_db: f64) -> Self {
        self.snr_db = snr_db;
        self
    }

    /// Correlation threshold as a fraction of the template's ideal peak
    /// (0.45 keeps false alarms near zero; the paper's partially-detected
    /// operating point corresponds to stricter settings — our host-side
    /// templates are resampled to 25 MSPS before quantization, which
    /// recovers most of the detection the paper's rate-mismatched
    /// correlation lost; see EXPERIMENTS.md).
    pub fn threshold(mut self, xcorr_threshold: f64) -> Self {
        self.xcorr_threshold = xcorr_threshold;
        self
    }

    /// Campaign seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the WiMAX downlink detection/jamming experiment: `frames` TDD
    /// frames from the modeled Air4G base station, received at 25 MSPS
    /// with AWGN at `snr_db`, against either the correlator alone or the
    /// fused correlator+energy detector. Split into
    /// `WIMAX_FRAMES_PER_UNIT`-frame (4-frame) work units, each with its
    /// own base station, noise stream and scope; workers pool one jammer
    /// core and scratch (reset between units). Unit scopes are merged back
    /// onto one timeline with [`ScopeTrace::append_shifted`] and the
    /// Fig. 12 one-to-one correspondence is evaluated on the merged
    /// capture.
    pub fn run(&self, engine: &CampaignEngine) -> WimaxResult {
        self.run_cancellable(engine, None)
            .expect("uncancelled campaign always completes")
    }

    /// Number of engine work units this spec runs.
    pub fn n_units(&self) -> usize {
        self.frames.div_ceil(WIMAX_FRAMES_PER_UNIT)
    }

    /// Cancellable [`WimaxDetectionSpec::run`]: the token stops the
    /// experiment between work units and the call returns `None`. Unit
    /// results hold merged scope traces, which are not checkpointable — a
    /// cancelled WiMAX job re-runs from scratch on resume, which is still
    /// byte-identical by the engine's determinism contract.
    pub fn run_cancellable(
        &self,
        engine: &CampaignEngine,
        cancel: Option<&CancelToken>,
    ) -> Option<WimaxResult> {
        struct WimaxUnit {
            scope: ScopeTrace,
            detected: usize,
            latency_acc: f64,
        }
        struct WimaxPool {
            jammer: ReactiveJammer,
            scratch: BlockScratch,
        }
        let detection = if self.fused {
            DetectionPreset::WimaxFused {
                id_cell: 1,
                segment: 0,
                threshold: self.xcorr_threshold,
                energy_db: 10.0,
            }
        } else {
            DetectionPreset::WimaxPreamble {
                id_cell: 1,
                segment: 0,
                threshold: self.xcorr_threshold,
            }
        };
        let frame_samples_25 = (rjam_phy80216::FRAME_SAMPLES as f64 * 25.0 / 11.4).round() as u64;
        let n_units = self.frames.div_ceil(WIMAX_FRAMES_PER_UNIT);
        let units = engine.run_units_ckpt(
            "wimax",
            n_units,
            self.seed,
            &mut BTreeMap::new(),
            cancel,
            || WimaxPool {
                // One lockout per frame: suppress retriggers (correlator
                // false triggers on payload symbols, energy re-rises)
                // across the whole 5 ms frame (125 000 samples at
                // 25 MSPS), re-arming before the next preamble.
                jammer: ReactiveJammer::from_presets(
                    &detection,
                    &JammerPreset::Reactive {
                        uptime_s: 100e-6,
                        waveform: rjam_fpga::JamWaveform::Wgn,
                    },
                    100_000,
                ),
                scratch: BlockScratch::new(),
            },
            |pool, ctx| {
                let lo = ctx.index * WIMAX_FRAMES_PER_UNIT;
                let n = WIMAX_FRAMES_PER_UNIT.min(self.frames - lo);
                pool.jammer.reset();
                let mut gen =
                    rjam_phy80216::DownlinkGenerator::new(rjam_phy80216::DownlinkConfig {
                        seed: ctx.seed,
                        ..rjam_phy80216::DownlinkConfig::default()
                    });
                let mut rng = Rng::seed_from(ctx.seed ^ 0x16e);
                let noise_power = RX_LEVEL / db_to_lin(self.snr_db);
                let mut noise = NoiseSource::new(noise_power, rng.fork());
                let mut scope = ScopeTrace::new(rjam_sdr::USRP_SAMPLE_RATE);
                let mut detected = 0usize;
                let mut latency_acc = 0.0f64;
                for _ in 0..n {
                    let native = gen.next_frame();
                    let up = to_usrp_rate(&native, rjam_sdr::WIMAX_SAMPLE_RATE);
                    // Random per-frame sampling phase (unsynchronized clocks).
                    let mut wave = fractional_delay(&up, rng.uniform() * 0.999);
                    // Scale relative to the active subframe power.
                    let active = (gen.dl_subframe_samples() as f64 * 25.0 / 11.4) as usize;
                    let p = mean_power(&wave[..active.min(wave.len())]);
                    let k_scale = (RX_LEVEL / p).sqrt();
                    for s in wave.iter_mut() {
                        *s = s.scale(k_scale);
                    }
                    for s in wave.iter_mut() {
                        *s += noise.next_sample();
                    }
                    let base = pool.jammer.core_mut().samples_processed();
                    pool.jammer.process_block_into(&wave, &mut pool.scratch);
                    scope.capture(&wave);
                    // Mark the frame at its actual position in the receive
                    // stream (the per-frame fractional resample makes
                    // frames a sample or two short of the nominal
                    // 125 000-sample spacing).
                    scope.mark(base as usize, "frame");
                    if let Some(first_jam) = pool.scratch.active().iter().position(|&a| a) {
                        scope.mark((base + first_jam as u64) as usize, "jam");
                        detected += 1;
                        latency_acc += first_jam as f64 / 25.0; // us at 25 MSPS
                    }
                }
                WimaxUnit {
                    scope,
                    detected,
                    latency_acc,
                }
            },
        )?;
        // Ordered merge: unit k lands at the cumulative sample count of
        // units 0..k, reproducing one continuous scope timeline.
        let mut scope = ScopeTrace::new(rjam_sdr::USRP_SAMPLE_RATE);
        let mut detected = 0usize;
        let mut latency_acc = 0.0f64;
        for u in &units {
            let offset = scope.len();
            scope.append_shifted(&u.scope, offset);
            detected += u.detected;
            latency_acc += u.latency_acc;
        }
        let one_to_one = scope
            .correspondence("frame", "jam", frame_samples_25 as usize / 4)
            .is_ok();
        if rjam_obs::enabled() {
            use rjam_obs::registry::counter;
            counter("core.wimax_frames").add(self.frames as u64);
            counter("core.wimax_detections").add(detected as u64);
            if !one_to_one {
                // A Fig.-12 correspondence break is exactly the kind of
                // anomaly the flight recorder exists for.
                counter("core.wimax_correspondence_breaks").inc();
                rjam_obs::recorder::record_event(
                    scope.len() as u64,
                    "wimax_corr_break",
                    detected as i64,
                    self.frames as i64,
                );
            }
        }
        Some(WimaxResult {
            detect_fraction: detected as f64 / self.frames as f64,
            mean_latency_us: if detected > 0 {
                latency_acc / detected as f64
            } else {
                f64::NAN
            },
            scope,
            one_to_one,
        })
    }
}

/// One row of the Fig. 10/11 jamming sweep.
#[derive(Clone, Debug)]
pub struct JammingPoint {
    /// SIR at the AP, dB (paper x-axis).
    pub sir_ap_db: f64,
    /// iperf results at this operating point.
    pub report: IperfReport,
}

/// The jammer variants compared in Figs 10-11.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JammerUnderTest {
    /// No jammer (the dashed ceiling line).
    Off,
    /// Continuous WGN.
    Continuous,
    /// Reactive, 0.1 ms uptime.
    ReactiveLong,
    /// Reactive, 0.01 ms uptime.
    ReactiveShort,
}

impl JammerUnderTest {
    /// Human-readable label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            JammerUnderTest::Off => "Jammer Off",
            JammerUnderTest::Continuous => "Continuous Jammer",
            JammerUnderTest::ReactiveLong => "Reactive Jammer 0.1ms Uptime",
            JammerUnderTest::ReactiveShort => "Reactive Jammer 0.01ms Uptime",
        }
    }
}

/// Builder for jamming sweeps — see [`CampaignSpec::jamming`].
#[derive(Clone, Debug)]
pub struct JammingSweepSpec {
    jammer: JammerUnderTest,
    sirs_db: Vec<f64>,
    duration_s: f64,
    seed: u64,
}

impl JammingSweepSpec {
    /// SIR grid at the AP, dB.
    pub fn sirs(mut self, sirs_db: &[f64]) -> Self {
        self.sirs_db = sirs_db.to_vec();
        self
    }

    /// iperf run duration per point, seconds.
    pub fn duration_s(mut self, duration_s: f64) -> Self {
        self.duration_s = duration_s;
        self
    }

    /// Campaign seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the Fig. 10/11 sweep for one jammer variant across SIR
    /// points, one shard per point. Each shard runs its scenario with a
    /// deferred [`MacObsDelta`]; the deltas are merged in shard order and
    /// published once at join, so the obs registry sees the same totals
    /// as a serial run.
    pub fn run(&self, engine: &CampaignEngine) -> Vec<JammingPoint> {
        self.run_cancellable(engine, None)
            .expect("uncancelled campaign always completes")
    }

    /// Number of engine work units this spec runs (one per SIR point).
    pub fn n_units(&self) -> usize {
        self.sirs_db.len()
    }

    /// Cancellable [`JammingSweepSpec::run`]: the token stops the sweep
    /// between SIR points and the call returns `None` without publishing
    /// any obs deltas. Points are whole-scenario runs and are not
    /// checkpointed — a cancelled sweep re-runs from scratch on resume
    /// (byte-identical by determinism).
    pub fn run_cancellable(
        &self,
        engine: &CampaignEngine,
        cancel: Option<&CancelToken>,
    ) -> Option<Vec<JammingPoint>> {
        let results = engine.run_units_ckpt(
            "jamming",
            self.sirs_db.len(),
            self.seed,
            &mut BTreeMap::new(),
            cancel,
            || (),
            |_, ctx| {
                let sir = self.sirs_db[ctx.index];
                let sc = scenario_for(self.jammer, sir, self.duration_s, ctx.seed);
                let mut delta = MacObsDelta::new();
                let report = ScenarioRun::new(&sc).obs_into(&mut delta).run();
                (
                    JammingPoint {
                        sir_ap_db: sir,
                        report,
                    },
                    delta,
                )
            },
        )?;
        let mut merged = MacObsDelta::new();
        let mut out = Vec::with_capacity(results.len());
        for (pt, delta) in results {
            merged.absorb(delta);
            out.push(pt);
        }
        merged.publish();
        if rjam_obs::enabled() {
            rjam_obs::registry::counter("core.jamming_sweep_points").add(self.sirs_db.len() as u64);
        }
        Some(out)
    }
}

/// One operating point of the health-monitor time-to-detect sweep.
#[derive(Clone, Copy, Debug)]
pub struct TimeToDetectPoint {
    /// Jammer variant under test (duty-cycle axis).
    pub jammer: JammerUnderTest,
    /// SIR at the AP, dB.
    pub sir_ap_db: f64,
    /// Datagrams the scenario emitted.
    pub frames: u64,
    /// Frames from run start (= jam onset; the jammer is live from the
    /// first sample) to the first raised alarm, or `None` if the monitor
    /// never alarmed.
    pub frames_to_alarm: Option<u64>,
    /// Total alarms raised over the run (clean points count false alarms).
    pub alarms: u64,
    /// Packet reception ratio over the run, percent.
    pub prr_percent: f64,
}

/// Builder for health time-to-detect sweeps — see
/// [`CampaignSpec::health_time_to_detect`].
#[derive(Clone, Debug)]
pub struct HealthSweepSpec {
    jammers: Vec<JammerUnderTest>,
    sirs_db: Vec<f64>,
    duration_s: f64,
    cadence: u64,
    seed: u64,
}

impl HealthSweepSpec {
    /// Jammer variants to sweep (the duty-cycle axis).
    pub fn jammers(mut self, jammers: &[JammerUnderTest]) -> Self {
        self.jammers = jammers.to_vec();
        self
    }

    /// SIR grid at the AP, dB.
    pub fn sirs(mut self, sirs_db: &[f64]) -> Self {
        self.sirs_db = sirs_db.to_vec();
        self
    }

    /// Scenario duration per point, seconds.
    pub fn duration_s(mut self, duration_s: f64) -> Self {
        self.duration_s = duration_s;
        self
    }

    /// Monitor evaluation cadence, frames per window.
    pub fn cadence(mut self, frames: u64) -> Self {
        self.cadence = frames;
        self
    }

    /// Campaign seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the sweep on the sharded engine, one shard per (jammer, SIR)
    /// cell. Each shard attaches a fresh [`rjam_obs::HealthMonitor`] to
    /// its scenario run and reports how many frames the monitor needed to
    /// judge the link dead — the observability analogue of the paper's
    /// reaction-time measurement. MAC obs deltas merge exactly like the
    /// jamming sweep's.
    pub fn run(&self, engine: &CampaignEngine) -> Vec<TimeToDetectPoint> {
        let grid: Vec<(JammerUnderTest, f64)> = self
            .jammers
            .iter()
            .flat_map(|&j| self.sirs_db.iter().map(move |&s| (j, s)))
            .collect();
        let results = engine.run_shards_kind("health_ttd", grid.len(), self.seed, |ctx| {
            let (jut, sir) = grid[ctx.index];
            let sc = scenario_for(jut, sir, self.duration_s, ctx.seed);
            let mut delta = MacObsDelta::new();
            let mut mon =
                rjam_obs::HealthMonitor::new(rjam_obs::HealthConfig::with_cadence(self.cadence));
            let report = ScenarioRun::new(&sc)
                .obs_into(&mut delta)
                .health(&mut mon)
                .run();
            let frames_to_alarm = mon.frames_to_first_alarm();
            let verdict = mon.finish();
            (
                TimeToDetectPoint {
                    jammer: jut,
                    sir_ap_db: sir,
                    frames: verdict.frames,
                    frames_to_alarm,
                    alarms: verdict.alarms_raised,
                    prr_percent: report.prr_percent,
                },
                delta,
            )
        });
        let mut merged = MacObsDelta::new();
        let mut out = Vec::with_capacity(results.len());
        for (pt, delta) in results {
            merged.absorb(delta);
            out.push(pt);
        }
        merged.publish();
        if rjam_obs::enabled() {
            rjam_obs::registry::counter("core.health_ttd_points").add(grid.len() as u64);
        }
        out
    }
}

/// Detection probability the reactive jammer achieves per frame, taken from
/// the short-preamble characterization (Fig. 7: above 99 % for SNR >= 3 dB;
/// the jammer's receive SNR in this testbed is ~60 dB).
pub fn reactive_detect_prob(snr_jammer_rx_db: f64) -> f64 {
    if snr_jammer_rx_db >= 3.0 {
        0.995
    } else if snr_jammer_rx_db >= -3.0 {
        0.9
    } else {
        0.3
    }
}

/// Builds the MAC scenario for a jammer variant at a target SIR.
pub fn scenario_for(jut: JammerUnderTest, sir_ap_db: f64, duration_s: f64, seed: u64) -> Scenario {
    let mut budget = TestbedBudget::default();
    budget.set_sir_ap_db(sir_ap_db);
    let jammer = match jut {
        JammerUnderTest::Off => JammerKind::Off,
        JammerUnderTest::Continuous => JammerKind::Continuous,
        JammerUnderTest::ReactiveLong => JammerKind::Reactive {
            uptime_us: 100.0,
            response_us: 2.64,
            delay_us: 0.0,
            detect_prob: reactive_detect_prob(budget.snr_jammer_rx_db()),
        },
        JammerUnderTest::ReactiveShort => JammerKind::Reactive {
            uptime_us: 10.0,
            response_us: 2.64,
            delay_us: 0.0,
            detect_prob: reactive_detect_prob(budget.snr_jammer_rx_db()),
        },
    };
    Scenario {
        snr_ap_db: budget.snr_ap_db(),
        snr_client_db: budget.snr_client_db(),
        sir_ap_db,
        sir_client_db: budget.sir_client_db(),
        cca_defer_prob: budget.cca_defer_prob(),
        jammer,
        duration_s,
        seed,
        ..Scenario::default()
    }
}

/// Energy ledger for one jammer operating point (the paper's motivating
/// claim: "adversaries can significantly reduce network throughput using
/// little energy").
#[derive(Clone, Debug)]
pub struct EnergyPoint {
    /// Jammer variant.
    pub jammer: JammerUnderTest,
    /// SIR at the AP during active transmission, dB.
    pub sir_ap_db: f64,
    /// Jammer transmit power while on, dBm (from the testbed budget).
    pub tx_power_dbm: f64,
    /// RF-on duty cycle over the run, percent.
    pub duty_percent: f64,
    /// Total transmit energy over the run, joules.
    pub energy_joules: f64,
    /// Damage achieved: goodput relative to the clean ceiling, percent.
    pub residual_bandwidth_percent: f64,
}

/// Measures the energy each jammer spends to reach a given level of damage
/// at one SIR point.
pub fn energy_at_operating_point(
    jut: JammerUnderTest,
    sir_ap_db: f64,
    duration_s: f64,
    ceiling_kbps: f64,
    seed: u64,
) -> EnergyPoint {
    let mut budget = TestbedBudget::default();
    let tx_power_dbm = budget.set_sir_ap_db(sir_ap_db);
    let sc = scenario_for(jut, sir_ap_db, duration_s, seed);
    let report = run_scenario(&sc);
    let duty = report.jam_duty_percent(duration_s);
    let tx_watts = 10f64.powf((tx_power_dbm - 30.0) / 10.0);
    EnergyPoint {
        jammer: jut,
        sir_ap_db,
        tx_power_dbm,
        duty_percent: duty,
        energy_joules: tx_watts * report.jam_airtime_us * 1e-6,
        residual_bandwidth_percent: 100.0 * report.bandwidth_kbps / ceiling_kbps.max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> CampaignEngine {
        CampaignEngine::serial()
    }

    #[test]
    fn short_preamble_detection_high_at_good_snr() {
        let pts =
            CampaignSpec::wifi_detection(&DetectionPreset::WifiShortPreamble { threshold: 0.25 })
                .snrs(&[10.0])
                .trials(40)
                .seed(7)
                .run(&serial());
        assert!(pts[0].p_detect > 0.9, "p={}", pts[0].p_detect);
    }

    #[test]
    fn long_preamble_detection_suboptimal() {
        // The 20->25 MSPS mismatch caps single-LTS detection well below 1
        // even at high SNR (paper: ~50 %).
        let pts =
            CampaignSpec::wifi_detection(&DetectionPreset::WifiLongPreamble { threshold: 0.30 })
                .emission(WifiEmission::SingleLongPreamble)
                .snrs(&[15.0])
                .trials(40)
                .seed(8)
                .run(&serial());
        assert!(
            pts[0].p_detect < 0.95,
            "single-LTS detection should be degraded, got {}",
            pts[0].p_detect
        );
    }

    #[test]
    fn detection_improves_with_snr() {
        let pts =
            CampaignSpec::wifi_detection(&DetectionPreset::WifiShortPreamble { threshold: 0.30 })
                .snrs(&[-9.0, 3.0])
                .trials(30)
                .seed(9)
                .run(&serial());
        assert!(pts[1].p_detect >= pts[0].p_detect, "{pts:?}");
    }

    #[test]
    fn snr_range_builds_inclusive_grid() {
        let spec =
            CampaignSpec::wifi_detection(&DetectionPreset::EnergyRise { threshold_db: 10.0 })
                .snr_range(-9.0, 12.0, 3.0);
        assert_eq!(
            spec.snrs_db,
            vec![-9.0, -6.0, -3.0, 0.0, 3.0, 6.0, 9.0, 12.0]
        );
    }

    #[test]
    fn energy_detector_single_trigger_at_high_snr() {
        let pts = CampaignSpec::wifi_detection(&DetectionPreset::EnergyRise { threshold_db: 10.0 })
            .snrs(&[20.0])
            .trials(30)
            .seed(10)
            .run(&serial());
        assert!(pts[0].p_detect > 0.95, "p={}", pts[0].p_detect);
        assert!(
            pts[0].triggers_per_frame < 1.5,
            "triggers={}",
            pts[0].triggers_per_frame
        );
    }

    #[test]
    fn energy_detector_silent_below_noise() {
        let pts = CampaignSpec::wifi_detection(&DetectionPreset::EnergyRise { threshold_db: 10.0 })
            .snrs(&[-10.0])
            .trials(20)
            .seed(11)
            .run(&serial());
        assert!(pts[0].p_detect < 0.2, "p={}", pts[0].p_detect);
    }

    #[test]
    fn false_alarm_rate_scales_with_threshold() {
        let loose =
            CampaignSpec::false_alarm(&DetectionPreset::WifiLongPreamble { threshold: 0.08 })
                .samples(400_000)
                .seed(12)
                .run(&serial());
        let strict =
            CampaignSpec::false_alarm(&DetectionPreset::WifiLongPreamble { threshold: 0.6 })
                .samples(400_000)
                .seed(12)
                .run(&serial());
        assert!(loose > strict, "loose {loose}/s vs strict {strict}/s");
        assert_eq!(strict, 0.0, "a high threshold must not fire on noise");
    }

    #[test]
    fn fa_denominator_matches_requested_samples() {
        // Regression: with a sample count that is NOT a multiple of the
        // unit size, the final unit must process exactly the remainder —
        // the exported rate's denominator is the requested count, not a
        // rounded-up unit multiple.
        let preset = DetectionPreset::WifiLongPreamble { threshold: 0.30 };
        let samples = 2 * FA_UNIT_SAMPLES + 12_345;
        let spec = CampaignSpec::false_alarm(&preset).samples(samples).seed(5);
        let (t1, n1) = spec.run_counts(&serial());
        assert_eq!(n1, samples as u64, "denominator must equal the request");
        let (t3, n3) = spec.run_counts(&CampaignEngine::with_threads(3));
        assert_eq!((t1, n1), (t3, n3), "counts must be thread-invariant");
        // And the rate is derived from exactly those counts.
        let rate = spec.run(&serial());
        let expect = t1 as f64 / (samples as f64 / rjam_sdr::USRP_SAMPLE_RATE);
        assert_eq!(rate.to_bits(), expect.to_bits());
    }

    #[test]
    fn wimax_fusion_reaches_full_detection() {
        let alone = CampaignSpec::wimax_detection()
            .fused(false)
            .frames(12)
            .seed(13)
            .run(&serial());
        let fused = CampaignSpec::wimax_detection()
            .fused(true)
            .frames(12)
            .seed(13)
            .run(&serial());
        assert!(
            fused.detect_fraction >= alone.detect_fraction,
            "fused {} vs alone {}",
            fused.detect_fraction,
            alone.detect_fraction
        );
        assert!(
            (fused.detect_fraction - 1.0).abs() < 1e-9,
            "fusion must catch every frame, got {}",
            fused.detect_fraction
        );
        assert!(fused.one_to_one, "jam bursts must correspond 1:1 to frames");
    }

    #[test]
    fn jamming_sweep_shapes() {
        let sirs = [40.0, 4.0];
        let clean = CampaignSpec::jamming(JammerUnderTest::Off)
            .sirs(&[40.0])
            .seed(14)
            .run(&serial());
        let cont = CampaignSpec::jamming(JammerUnderTest::Continuous)
            .sirs(&sirs)
            .seed(14)
            .run(&serial());
        // Weak jamming: near the clean ceiling; strong: dead or nearly so.
        assert!(cont[0].report.bandwidth_kbps > 0.5 * clean[0].report.bandwidth_kbps);
        assert!(cont[1].report.bandwidth_kbps < 0.1 * clean[0].report.bandwidth_kbps);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn health_sweep_detects_jam_and_stays_quiet_on_clean() {
        let pts = CampaignSpec::health_time_to_detect()
            .jammers(&[JammerUnderTest::Off, JammerUnderTest::ReactiveLong])
            .sirs(&[1.0])
            .duration_s(1.0)
            .seed(14)
            .run(&serial());
        assert_eq!(pts.len(), 2);
        let clean = &pts[0];
        let jammed = &pts[1];
        assert_eq!(clean.jammer, JammerUnderTest::Off);
        assert_eq!(clean.alarms, 0, "clean run must raise no alarms");
        assert!(clean.frames_to_alarm.is_none());
        assert_eq!(jammed.jammer, JammerUnderTest::ReactiveLong);
        assert!(jammed.alarms >= 1, "jammed run must alarm");
        // Jam is live from the first sample: the 32-frame acceptance
        // budget from jam onset applies from frame zero.
        assert!(
            jammed.frames_to_alarm.is_some_and(|f| f <= 32),
            "time-to-detect {:?} exceeds the 32-frame budget",
            jammed.frames_to_alarm
        );
    }

    #[test]
    fn health_sweep_is_thread_count_invariant() {
        let spec = CampaignSpec::health_time_to_detect()
            .jammers(&[JammerUnderTest::Off, JammerUnderTest::ReactiveLong])
            .sirs(&[1.0, 14.0])
            .duration_s(0.25)
            .seed(7);
        let serial_pts = spec.run(&serial());
        let parallel_pts = spec.run(&CampaignEngine::with_threads(4));
        assert_eq!(serial_pts.len(), parallel_pts.len());
        for (a, b) in serial_pts.iter().zip(&parallel_pts) {
            assert_eq!(a.jammer, b.jammer);
            assert_eq!(a.frames, b.frames);
            assert_eq!(a.frames_to_alarm, b.frames_to_alarm);
            assert_eq!(a.alarms, b.alarms);
            assert!((a.prr_percent - b.prr_percent).abs() < 1e-12);
        }
    }

    #[test]
    fn scenario_wiring_uses_budget() {
        let sc = scenario_for(JammerUnderTest::ReactiveLong, 15.94, 1.0, 1);
        assert!((sc.sir_ap_db - 15.94).abs() < 1e-9);
        assert!((sc.snr_ap_db - 28.0).abs() < 1e-9);
        match sc.jammer {
            JammerKind::Reactive {
                uptime_us,
                detect_prob,
                ..
            } => {
                assert_eq!(uptime_us, 100.0);
                assert!(detect_prob > 0.99);
            }
            _ => panic!("wrong jammer kind"),
        }
    }

    #[test]
    fn fading_degrades_detection_but_not_to_zero() {
        let preset = DetectionPreset::WifiShortPreamble { threshold: 0.30 };
        let awgn = CampaignSpec::wifi_detection(&preset)
            .snrs(&[8.0])
            .trials(40)
            .seed(31)
            .run(&serial());
        let faded = CampaignSpec::wifi_detection(&preset)
            .channel(ChannelModel::Rayleigh { taps: 8, rms: 2.0 })
            .snrs(&[8.0])
            .trials(40)
            .seed(31)
            .run(&serial());
        assert!(
            faded[0].p_detect <= awgn[0].p_detect + 0.05,
            "{faded:?} vs {awgn:?}"
        );
        assert!(
            faded[0].p_detect > 0.3,
            "fading must not kill detection: {faded:?}"
        );
    }

    #[test]
    fn roc_tradeoff_monotone() {
        let pts = CampaignSpec::roc(&|t| DetectionPreset::WifiShortPreamble { threshold: t })
            .snr_db(-3.0)
            .thresholds(&[0.22, 0.34, 0.50])
            .trials(30)
            .fa_samples(300_000)
            .seed(21)
            .run(&serial());
        // Raising the threshold must not raise either FA or detection.
        for w in pts.windows(2) {
            assert!(w[1].fa_per_s <= w[0].fa_per_s + 1e-9, "{pts:?}");
            assert!(w[1].p_detect <= w[0].p_detect + 1e-9, "{pts:?}");
        }
    }

    #[test]
    fn roc_lane_path_byte_identical_to_nested_path() {
        // The tentpole acceptance criterion: the lane-bank ROC export must
        // be byte-identical to the pre-lane-bank nested path — same unit
        // seeds, same streams, same quantization, same float divisions.
        let make = |t: f64| DetectionPreset::WifiShortPreamble { threshold: t };
        let spec = CampaignSpec::roc(&make)
            .snr_db(-3.0)
            .thresholds(&[0.22, 0.34, 0.50])
            .trials(30)
            .fa_samples(300_000)
            .seed(21);
        let lane = spec.run(&serial());
        let nested = spec.run_nested(&serial());
        assert_eq!(
            crate::export::roc_csv(&lane),
            crate::export::roc_csv(&nested)
        );
        // Raw bits, not just the rounded CSV.
        for (a, b) in lane.iter().zip(&nested) {
            assert_eq!(a.fa_per_s.to_bits(), b.fa_per_s.to_bits());
            assert_eq!(a.p_detect.to_bits(), b.p_detect.to_bits());
        }
        // And the lane path itself is thread-count invariant.
        for threads in [2, 7] {
            let sharded = spec.run(&CampaignEngine::with_threads(threads));
            assert_eq!(
                crate::export::roc_csv(&lane),
                crate::export::roc_csv(&sharded),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn roc_energy_preset_falls_back_to_nested_path() {
        // Energy presets have no correlator template: the lane path must
        // decline and the nested path must produce the points.
        let make = |_t: f64| DetectionPreset::EnergyRise { threshold_db: 10.0 };
        let spec = CampaignSpec::roc(&make)
            .snr_db(5.0)
            .thresholds(&[0.3, 0.5])
            .trials(8)
            .fa_samples(100_000)
            .seed(22);
        let pts = spec.run(&serial());
        assert_eq!(pts.len(), 2);
        assert_eq!(
            crate::export::roc_csv(&pts),
            crate::export::roc_csv(&spec.run_nested(&serial()))
        );
    }

    #[test]
    fn fa_grid_matches_individual_runs() {
        // Each lane of the grid sweep must reproduce a dedicated
        // run_counts run of the re-thresholded preset, bit for bit.
        let preset = DetectionPreset::WifiLongPreamble { threshold: 0.30 };
        let samples = FA_UNIT_SAMPLES + 12_345; // exercise the remainder unit
        let spec = CampaignSpec::false_alarm(&preset).samples(samples).seed(33);
        let grid = [0.08, 0.30, 0.60];
        let swept = spec.run_grid_counts(&serial(), &grid);
        assert_eq!(swept.len(), grid.len());
        for (k, &f) in grid.iter().enumerate() {
            let single = CampaignSpec::false_alarm(&preset.with_xcorr_fraction(f).unwrap())
                .samples(samples)
                .seed(33)
                .run_counts(&serial());
            assert_eq!(swept[k], single, "fraction {f}");
            assert_eq!(swept[k].1, samples as u64, "denominator is the request");
        }
        // Looser thresholds can only gain triggers on the identical noise.
        assert!(
            swept[0].0 >= swept[1].0 && swept[1].0 >= swept[2].0,
            "{swept:?}"
        );
    }

    #[test]
    fn fa_grid_lane_order_and_thread_count_invariant() {
        // Shuffling the lane order and resharding must permute, never
        // change, the per-fraction counts.
        let preset = DetectionPreset::WifiShortPreamble { threshold: 0.30 };
        let spec = CampaignSpec::false_alarm(&preset)
            .samples(FA_UNIT_SAMPLES + 999)
            .seed(34);
        let a = spec.run_grid_counts(&serial(), &[0.08, 0.22, 0.34]);
        for threads in [1usize, 2, 7] {
            let b =
                spec.run_grid_counts(&CampaignEngine::with_threads(threads), &[0.34, 0.08, 0.22]);
            assert_eq!(a[0], b[1], "threads={threads}");
            assert_eq!(a[1], b[2], "threads={threads}");
            assert_eq!(a[2], b[0], "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "energy thresholds are in dB")]
    fn fa_grid_rejects_energy_presets() {
        let spec = CampaignSpec::false_alarm(&DetectionPreset::EnergyRise { threshold_db: 10.0 })
            .samples(1000);
        let _ = spec.run_grid_counts(&serial(), &[0.3]);
    }

    #[test]
    fn sweeps_are_thread_count_invariant() {
        // The determinism contract, asserted at the data level: detection,
        // FA, WiMAX and jamming campaigns all produce identical results
        // serially and sharded.
        let preset = DetectionPreset::WifiShortPreamble { threshold: 0.30 };
        let spec = CampaignSpec::wifi_detection(&preset)
            .snrs(&[-3.0, 3.0, 9.0])
            .trials(10)
            .seed(40);
        let a = spec.run(&CampaignEngine::serial());
        let b = spec.run(&CampaignEngine::with_threads(3));
        assert_eq!(a, b);

        let fa_spec = CampaignSpec::false_alarm(&preset)
            .samples(3 * FA_UNIT_SAMPLES / 2)
            .seed(41);
        assert_eq!(
            fa_spec.run(&CampaignEngine::serial()),
            fa_spec.run(&CampaignEngine::with_threads(2)),
        );

        let wx = CampaignSpec::wimax_detection().frames(6).seed(42);
        let wa = wx.run(&CampaignEngine::serial());
        let wb = wx.run(&CampaignEngine::with_threads(4));
        assert_eq!(wa.detect_fraction, wb.detect_fraction);
        assert_eq!(wa.mean_latency_us, wb.mean_latency_us);
        assert_eq!(wa.one_to_one, wb.one_to_one);
        assert_eq!(wa.scope.to_markers_json(), wb.scope.to_markers_json());

        let jm = CampaignSpec::jamming(JammerUnderTest::ReactiveLong)
            .sirs(&[30.0, 10.0])
            .duration_s(1.0)
            .seed(43);
        let ja = jm.run(&CampaignEngine::serial());
        let jb = jm.run(&CampaignEngine::with_threads(2));
        assert_eq!(ja.len(), jb.len());
        for (x, y) in ja.iter().zip(&jb) {
            assert_eq!(x.sir_ap_db, y.sir_ap_db);
            assert_eq!(x.report.sent, y.report.sent);
            assert_eq!(x.report.received, y.report.received);
        }
    }

    #[test]
    fn default_emission_is_full_frames() {
        // The builder's default emission must stay FullFrames{psdu_len:60}:
        // it replaced the positional wrappers' hard-coded argument, and the
        // serialisable CampaignRequest relies on the same default.
        let preset = DetectionPreset::WifiShortPreamble { threshold: 0.30 };
        let explicit = CampaignSpec::wifi_detection(&preset)
            .emission(WifiEmission::FullFrames { psdu_len: 60 })
            .snrs(&[5.0])
            .trials(10)
            .seed(50)
            .run(&CampaignEngine::from_env());
        let defaulted = CampaignSpec::wifi_detection(&preset)
            .snrs(&[5.0])
            .trials(10)
            .seed(50)
            .run(&CampaignEngine::from_env());
        assert_eq!(explicit, defaulted);
    }

    #[test]
    fn labels() {
        assert_eq!(JammerUnderTest::Continuous.label(), "Continuous Jammer");
        assert!(JammerUnderTest::ReactiveShort.label().contains("0.01ms"));
    }
}
