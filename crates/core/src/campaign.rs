//! Experiment campaign runners — one per figure of the paper.
//!
//! Each runner reproduces a figure's methodology end to end in the
//! simulated testbed and returns plain data rows; the `rjam-bench` figure
//! binaries print them in the paper's format.

use crate::jammer::ReactiveJammer;
use crate::presets::{DetectionPreset, JammerPreset};
use crate::testbed::TestbedBudget;
use rjam_channel::monitor::ScopeTrace;
use rjam_channel::noise::NoiseSource;
use rjam_fpga::CoreEvent;
use rjam_mac::model::{JammerKind, Scenario};
use rjam_mac::{run_scenario, IperfReport};
use rjam_sdr::complex::Cf64;
use rjam_sdr::power::{db_to_lin, mean_power, scale_to_power};
use rjam_sdr::resample::{fractional_delay, to_usrp_rate};
use rjam_sdr::rng::Rng;

/// One point of a detection-probability sweep (Figs 6-8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectionPoint {
    /// SNR at the detector's receiver, dB.
    pub snr_db: f64,
    /// Fraction of frames that produced at least one detection.
    pub p_detect: f64,
    /// Mean detections per frame (Fig. 8's "multiple detections" band shows
    /// up here as values above 1).
    pub triggers_per_frame: f64,
}

/// What the WiFi transmitter emits during a detection sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WifiEmission {
    /// Complete frames (10 STS, 2 LTS, SIGNAL, payload).
    FullFrames {
        /// PSDU length in bytes.
        psdu_len: usize,
    },
    /// A pseudo-frame with a single 16-sample short training symbol.
    SingleShortPreamble,
    /// A pseudo-frame with a single 64-sample long training symbol.
    SingleLongPreamble,
}

/// Mean RX signal power (relative to full scale) the sweeps calibrate to.
const RX_LEVEL: f64 = 0.02;
/// Noise lead-in before each frame, 25 MSPS samples (detector warm-up).
const LEAD_IN: usize = 256;
/// Noise tail after each frame.
const TAIL: usize = 128;

/// Builds the 25 MSPS emission waveform for one trial. Each frame gets a
/// random fractional sampling phase — transmitter and receiver clocks are
/// unsynchronized, which is a first-order contributor to the paper's
/// measured (sub-ideal) detection rates.
fn emission_waveform(kind: WifiEmission, rate: rjam_phy80211::Rate, rng: &mut Rng) -> Vec<Cf64> {
    let native = match kind {
        WifiEmission::FullFrames { psdu_len } => {
            let mut psdu = vec![0u8; psdu_len];
            rng.fill_bytes(&mut psdu);
            rjam_phy80211::tx::modulate_frame(&rjam_phy80211::tx::Frame::new(rate, psdu))
        }
        WifiEmission::SingleShortPreamble => rjam_phy80211::tx::single_short_preamble(),
        WifiEmission::SingleLongPreamble => rjam_phy80211::tx::single_long_preamble(),
    };
    let up = to_usrp_rate(&native, rjam_sdr::WIFI_SAMPLE_RATE);
    fractional_delay(&up, rng.uniform() * 0.999)
}

/// Counts detections whose sample index falls inside `[lo, hi)`.
fn count_in_window(events: &[CoreEvent], lo: u64, hi: u64, energy: bool) -> usize {
    events
        .iter()
        .filter(|e| {
            let s = e.sample();
            let kind_ok = if energy {
                matches!(e, CoreEvent::EnergyHigh { .. })
            } else {
                matches!(e, CoreEvent::XcorrDetection { .. })
            };
            kind_ok && s >= lo && s < hi
        })
        .count()
}

/// Channel model for detection sweeps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChannelModel {
    /// Pure AWGN — the paper's conducted testbed.
    Awgn,
    /// Rayleigh multipath with an exponential power-delay profile (over-the-
    /// air extension): a fresh realization per frame.
    Rayleigh {
        /// Number of channel taps at 25 MSPS.
        taps: usize,
        /// RMS delay spread in samples.
        rms: f64,
    },
}

/// Runs a WiFi detection-probability sweep (the methodology of Figs 6-8):
/// `frames_per_point` emissions per SNR value, each embedded in AWGN at the
/// requested SNR, streamed through the detector; detections are counted in
/// the frame's occupancy window.
///
/// Set `energy_detector` when the preset under test is the energy
/// differentiator (counts energy-rise triggers instead of correlation
/// triggers).
pub fn wifi_detection_sweep(
    preset: &DetectionPreset,
    kind: WifiEmission,
    snrs_db: &[f64],
    frames_per_point: usize,
    seed: u64,
) -> Vec<DetectionPoint> {
    wifi_detection_sweep_in_channel(
        preset,
        kind,
        ChannelModel::Awgn,
        snrs_db,
        frames_per_point,
        seed,
    )
}

/// [`wifi_detection_sweep`] under an explicit channel model — the
/// over-the-air question the paper's conducted setup deliberately avoids:
/// how much detection the correlator loses to frequency-selective fading.
pub fn wifi_detection_sweep_in_channel(
    preset: &DetectionPreset,
    kind: WifiEmission,
    channel: ChannelModel,
    snrs_db: &[f64],
    frames_per_point: usize,
    seed: u64,
) -> Vec<DetectionPoint> {
    let energy_detector = matches!(preset, DetectionPreset::EnergyRise { .. });
    let mut points = vec![
        DetectionPoint {
            snr_db: 0.0,
            p_detect: 0.0,
            triggers_per_frame: 0.0
        };
        snrs_db.len()
    ];
    // SNR points are independent; fan them out across threads.
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (idx, &snr_db) in snrs_db.iter().enumerate() {
            let preset = preset.clone();
            handles.push((
                idx,
                scope.spawn(move || {
                    let mut rng = Rng::seed_from(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9));
                    let mut jammer = ReactiveJammer::new(preset, JammerPreset::Monitor);
                    // Correlation sweeps use a lockout so the 10 STS repetitions
                    // count as one detection; the energy sweep counts raw rise
                    // triggers (the paper reports "multiple detections per
                    // frame" in the mid-SNR band).
                    jammer.set_lockout(if energy_detector {
                        0
                    } else {
                        crate::jammer::DEFAULT_LOCKOUT
                    });
                    let noise_power = RX_LEVEL / db_to_lin(snr_db);
                    let mut noise = NoiseSource::new(noise_power, rng.fork());
                    let mut detected_frames = 0usize;
                    let mut total_triggers = 0usize;
                    for _ in 0..frames_per_point {
                        let mut wave = emission_waveform(kind, rjam_phy80211::Rate::R12, &mut rng);
                        if let ChannelModel::Rayleigh { taps, rms } = channel {
                            let ch = rjam_channel::MultipathChannel::rayleigh(taps, rms, &mut rng);
                            wave = ch.apply(&wave);
                        }
                        scale_to_power(&mut wave, RX_LEVEL);
                        let mut stream = noise.block(LEAD_IN);
                        let frame_lo = stream.len() as u64;
                        stream.extend(wave.iter().map(|&s| s + noise.next_sample()));
                        let frame_hi = stream.len() as u64 + 64; // allow pipeline lag
                        stream.extend(noise.block(TAIL));
                        let base = jammer.core_mut().samples_processed();
                        jammer.process_block(&stream);
                        let n = count_in_window(
                            jammer.events(),
                            base + frame_lo,
                            base + frame_hi,
                            energy_detector,
                        );
                        if n > 0 {
                            detected_frames += 1;
                        }
                        total_triggers += n;
                    }
                    DetectionPoint {
                        snr_db,
                        p_detect: detected_frames as f64 / frames_per_point as f64,
                        triggers_per_frame: total_triggers as f64 / frames_per_point as f64,
                    }
                }),
            ));
        }
        for (idx, h) in handles {
            points[idx] = h.join().expect("sweep worker");
        }
    });
    if rjam_obs::enabled() {
        use rjam_obs::registry::counter;
        let frames = (snrs_db.len() * frames_per_point) as u64;
        let detected: f64 = points
            .iter()
            .map(|p| p.p_detect * frames_per_point as f64)
            .sum();
        counter("core.sweep_frames").add(frames);
        counter("core.sweep_detections").add(detected.round() as u64);
    }
    points
}

/// Measures the detector's false-alarm rate on noise alone, extrapolated to
/// triggers per second (the paper terminates the receiver input and counts
/// for 30 minutes; we process `samples` noise samples and scale).
pub fn false_alarm_rate(preset: &DetectionPreset, samples: usize, seed: u64) -> f64 {
    let energy_detector = matches!(preset, DetectionPreset::EnergyRise { .. });
    let mut jammer = ReactiveJammer::new(preset.clone(), JammerPreset::Monitor);
    // A terminated input still shows the receiver noise floor.
    let mut noise = NoiseSource::new(RX_LEVEL / db_to_lin(20.0), Rng::seed_from(seed));
    let chunk = 65_536;
    let mut done = 0usize;
    while done < samples {
        let n = chunk.min(samples - done);
        jammer.process_block(&noise.block(n));
        done += n;
    }
    let triggers = jammer
        .events()
        .iter()
        .filter(|e| {
            if energy_detector {
                matches!(e, CoreEvent::EnergyHigh { .. })
            } else {
                matches!(e, CoreEvent::XcorrDetection { .. })
            }
        })
        .count();
    if rjam_obs::enabled() {
        use rjam_obs::registry::counter;
        counter("core.fa_samples").add(samples as u64);
        counter("core.fa_triggers").add(triggers as u64);
    }
    triggers as f64 / (samples as f64 / rjam_sdr::USRP_SAMPLE_RATE)
}

/// One point of a receiver-operating-characteristic sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RocPoint {
    /// Correlation threshold as a fraction of the template's ideal peak.
    pub threshold: f64,
    /// Measured false-alarm rate on noise-only input, triggers/second.
    pub fa_per_s: f64,
    /// Detection probability at the probe SNR.
    pub p_detect: f64,
}

/// Sweeps the correlation threshold to trace the detector's ROC at one SNR:
/// the quantitative form of Fig. 6's two-operating-point comparison
/// ("aiming for a lower false alarm rate generally decreases the
/// probability of detection").
///
/// `make_preset` builds the detection preset for a given threshold fraction
/// (so the same sweep works for any template).
pub fn roc_curve(
    make_preset: &(dyn Fn(f64) -> DetectionPreset + Sync),
    kind: WifiEmission,
    snr_db: f64,
    thresholds: &[f64],
    frames_per_point: usize,
    fa_samples: usize,
    seed: u64,
) -> Vec<RocPoint> {
    let mut out = vec![
        RocPoint {
            threshold: 0.0,
            fa_per_s: 0.0,
            p_detect: 0.0
        };
        thresholds.len()
    ];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (idx, &thr) in thresholds.iter().enumerate() {
            handles.push((
                idx,
                scope.spawn(move || {
                    let preset = make_preset(thr);
                    let fa = false_alarm_rate(&preset, fa_samples, seed ^ 0xFA);
                    let det = wifi_detection_sweep(
                        &preset,
                        kind,
                        &[snr_db],
                        frames_per_point,
                        seed ^ idx as u64,
                    );
                    RocPoint {
                        threshold: thr,
                        fa_per_s: fa,
                        p_detect: det[0].p_detect,
                    }
                }),
            ));
        }
        for (idx, h) in handles {
            out[idx] = h.join().expect("roc worker");
        }
    });
    out
}

/// Result of the WiMAX detection experiment (Fig. 12 / §5).
#[derive(Clone, Debug)]
pub struct WimaxResult {
    /// Fraction of downlink frames detected.
    pub detect_fraction: f64,
    /// Mean response latency from frame start, microseconds.
    pub mean_latency_us: f64,
    /// Scope-style trace with `frame` and `jam` markers.
    pub scope: ScopeTrace,
    /// One-to-one frame/jam correspondence held over the whole capture.
    pub one_to_one: bool,
}

/// Runs the WiMAX downlink detection/jamming experiment: `n_frames` TDD
/// frames from the modeled Air4G base station, received at 25 MSPS with
/// AWGN at `snr_db`, against either the correlator alone or the fused
/// correlator+energy detector.
///
/// `xcorr_threshold` is the correlation threshold as a fraction of the
/// template's ideal peak (0.45 keeps false alarms near zero; the paper's
/// partially-detected operating point corresponds to stricter settings —
/// our host-side templates are resampled to 25 MSPS before quantization,
/// which recovers most of the detection the paper's rate-mismatched
/// correlation lost; see EXPERIMENTS.md).
pub fn wimax_detection(
    fused: bool,
    n_frames: usize,
    snr_db: f64,
    xcorr_threshold: f64,
    seed: u64,
) -> WimaxResult {
    let detection = if fused {
        DetectionPreset::WimaxFused {
            id_cell: 1,
            segment: 0,
            threshold: xcorr_threshold,
            energy_db: 10.0,
        }
    } else {
        DetectionPreset::WimaxPreamble {
            id_cell: 1,
            segment: 0,
            threshold: xcorr_threshold,
        }
    };
    let mut jammer = ReactiveJammer::new(
        detection,
        JammerPreset::Reactive {
            uptime_s: 100e-6,
            waveform: rjam_fpga::JamWaveform::Wgn,
        },
    );
    // One lockout per frame: suppress retriggers (correlator false triggers
    // on payload symbols, energy re-rises) across the whole 5 ms frame
    // (125 000 samples at 25 MSPS), re-arming before the next preamble.
    jammer.set_lockout(100_000);

    let mut gen = rjam_phy80216::DownlinkGenerator::new(rjam_phy80216::DownlinkConfig {
        seed,
        ..rjam_phy80216::DownlinkConfig::default()
    });
    let mut rng = Rng::seed_from(seed ^ 0x16e);
    let noise_power = RX_LEVEL / db_to_lin(snr_db);
    let mut noise = NoiseSource::new(noise_power, rng.fork());
    let mut scope = ScopeTrace::new(rjam_sdr::USRP_SAMPLE_RATE);

    let mut detected = 0usize;
    let mut latency_acc = 0.0f64;
    let frame_samples_25 = (rjam_phy80216::FRAME_SAMPLES as f64 * 25.0 / 11.4).round() as u64;
    for k in 0..n_frames {
        let native = gen.next_frame();
        let up = to_usrp_rate(&native, rjam_sdr::WIMAX_SAMPLE_RATE);
        // Random per-frame sampling phase (unsynchronized clocks).
        let mut wave = fractional_delay(&up, rng.uniform() * 0.999);
        // Scale relative to the active subframe power.
        let active = (gen.dl_subframe_samples() as f64 * 25.0 / 11.4) as usize;
        let p = mean_power(&wave[..active.min(wave.len())]);
        let k_scale = (RX_LEVEL / p).sqrt();
        for s in wave.iter_mut() {
            *s = s.scale(k_scale);
        }
        for s in wave.iter_mut() {
            *s += noise.next_sample();
        }
        let base = jammer.core_mut().samples_processed();
        let (_tx, activity) = jammer.process_block(&wave);
        scope.capture(&wave);
        // Mark the frame at its actual position in the receive stream (the
        // per-frame fractional resample makes frames a sample or two short
        // of the nominal 125 000-sample spacing).
        scope.mark(base as usize, "frame");
        let _ = k;
        if let Some(first_jam) = activity.iter().position(|&a| a) {
            scope.mark((base + first_jam as u64) as usize, "jam");
            detected += 1;
            latency_acc += first_jam as f64 / 25.0; // us at 25 MSPS
        }
    }
    let one_to_one = scope
        .correspondence("frame", "jam", frame_samples_25 as usize / 4)
        .is_ok();
    if rjam_obs::enabled() {
        use rjam_obs::registry::counter;
        counter("core.wimax_frames").add(n_frames as u64);
        counter("core.wimax_detections").add(detected as u64);
        if !one_to_one {
            // A Fig.-12 correspondence break is exactly the kind of anomaly
            // the flight recorder exists for.
            counter("core.wimax_correspondence_breaks").inc();
            rjam_obs::recorder::record_event(
                jammer.core_mut().samples_processed(),
                "wimax_corr_break",
                detected as i64,
                n_frames as i64,
            );
        }
    }
    WimaxResult {
        detect_fraction: detected as f64 / n_frames as f64,
        mean_latency_us: if detected > 0 {
            latency_acc / detected as f64
        } else {
            f64::NAN
        },
        scope,
        one_to_one,
    }
}

/// One row of the Fig. 10/11 jamming sweep.
#[derive(Clone, Debug)]
pub struct JammingPoint {
    /// SIR at the AP, dB (paper x-axis).
    pub sir_ap_db: f64,
    /// iperf results at this operating point.
    pub report: IperfReport,
}

/// The jammer variants compared in Figs 10-11.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JammerUnderTest {
    /// No jammer (the dashed ceiling line).
    Off,
    /// Continuous WGN.
    Continuous,
    /// Reactive, 0.1 ms uptime.
    ReactiveLong,
    /// Reactive, 0.01 ms uptime.
    ReactiveShort,
}

impl JammerUnderTest {
    /// Human-readable label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            JammerUnderTest::Off => "Jammer Off",
            JammerUnderTest::Continuous => "Continuous Jammer",
            JammerUnderTest::ReactiveLong => "Reactive Jammer 0.1ms Uptime",
            JammerUnderTest::ReactiveShort => "Reactive Jammer 0.01ms Uptime",
        }
    }
}

/// Detection probability the reactive jammer achieves per frame, taken from
/// the short-preamble characterization (Fig. 7: above 99 % for SNR >= 3 dB;
/// the jammer's receive SNR in this testbed is ~60 dB).
pub fn reactive_detect_prob(snr_jammer_rx_db: f64) -> f64 {
    if snr_jammer_rx_db >= 3.0 {
        0.995
    } else if snr_jammer_rx_db >= -3.0 {
        0.9
    } else {
        0.3
    }
}

/// Builds the MAC scenario for a jammer variant at a target SIR.
pub fn scenario_for(jut: JammerUnderTest, sir_ap_db: f64, duration_s: f64, seed: u64) -> Scenario {
    let mut budget = TestbedBudget::default();
    budget.set_sir_ap_db(sir_ap_db);
    let jammer = match jut {
        JammerUnderTest::Off => JammerKind::Off,
        JammerUnderTest::Continuous => JammerKind::Continuous,
        JammerUnderTest::ReactiveLong => JammerKind::Reactive {
            uptime_us: 100.0,
            response_us: 2.64,
            delay_us: 0.0,
            detect_prob: reactive_detect_prob(budget.snr_jammer_rx_db()),
        },
        JammerUnderTest::ReactiveShort => JammerKind::Reactive {
            uptime_us: 10.0,
            response_us: 2.64,
            delay_us: 0.0,
            detect_prob: reactive_detect_prob(budget.snr_jammer_rx_db()),
        },
    };
    Scenario {
        snr_ap_db: budget.snr_ap_db(),
        snr_client_db: budget.snr_client_db(),
        sir_ap_db,
        sir_client_db: budget.sir_client_db(),
        cca_defer_prob: budget.cca_defer_prob(),
        jammer,
        duration_s,
        seed,
        ..Scenario::default()
    }
}

/// Energy ledger for one jammer operating point (the paper's motivating
/// claim: "adversaries can significantly reduce network throughput using
/// little energy").
#[derive(Clone, Debug)]
pub struct EnergyPoint {
    /// Jammer variant.
    pub jammer: JammerUnderTest,
    /// SIR at the AP during active transmission, dB.
    pub sir_ap_db: f64,
    /// Jammer transmit power while on, dBm (from the testbed budget).
    pub tx_power_dbm: f64,
    /// RF-on duty cycle over the run, percent.
    pub duty_percent: f64,
    /// Total transmit energy over the run, joules.
    pub energy_joules: f64,
    /// Damage achieved: goodput relative to the clean ceiling, percent.
    pub residual_bandwidth_percent: f64,
}

/// Measures the energy each jammer spends to reach a given level of damage
/// at one SIR point.
pub fn energy_at_operating_point(
    jut: JammerUnderTest,
    sir_ap_db: f64,
    duration_s: f64,
    ceiling_kbps: f64,
    seed: u64,
) -> EnergyPoint {
    let mut budget = TestbedBudget::default();
    let tx_power_dbm = budget.set_sir_ap_db(sir_ap_db);
    let sc = scenario_for(jut, sir_ap_db, duration_s, seed);
    let report = run_scenario(&sc);
    let duty = report.jam_duty_percent(duration_s);
    let tx_watts = 10f64.powf((tx_power_dbm - 30.0) / 10.0);
    EnergyPoint {
        jammer: jut,
        sir_ap_db,
        tx_power_dbm,
        duty_percent: duty,
        energy_joules: tx_watts * report.jam_airtime_us * 1e-6,
        residual_bandwidth_percent: 100.0 * report.bandwidth_kbps / ceiling_kbps.max(1.0),
    }
}

/// Runs the Fig. 10/11 sweep for one jammer variant across SIR points.
pub fn jamming_sweep(
    jut: JammerUnderTest,
    sirs_db: &[f64],
    duration_s: f64,
    seed: u64,
) -> Vec<JammingPoint> {
    let mut out = vec![
        JammingPoint {
            sir_ap_db: 0.0,
            report: IperfReport::default()
        };
        sirs_db.len()
    ];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (idx, &sir) in sirs_db.iter().enumerate() {
            handles.push((
                idx,
                scope.spawn(move || {
                    let sc = scenario_for(jut, sir, duration_s, seed ^ idx as u64);
                    JammingPoint {
                        sir_ap_db: sir,
                        report: run_scenario(&sc),
                    }
                }),
            ));
        }
        for (idx, h) in handles {
            out[idx] = h.join().expect("sweep worker");
        }
    });
    if rjam_obs::enabled() {
        rjam_obs::registry::counter("core.jamming_sweep_points").add(sirs_db.len() as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_preamble_detection_high_at_good_snr() {
        let pts = wifi_detection_sweep(
            &DetectionPreset::WifiShortPreamble { threshold: 0.25 },
            WifiEmission::FullFrames { psdu_len: 60 },
            &[10.0],
            40,
            7,
        );
        assert!(pts[0].p_detect > 0.9, "p={}", pts[0].p_detect);
    }

    #[test]
    fn long_preamble_detection_suboptimal() {
        // The 20->25 MSPS mismatch caps single-LTS detection well below 1
        // even at high SNR (paper: ~50 %).
        let pts = wifi_detection_sweep(
            &DetectionPreset::WifiLongPreamble { threshold: 0.30 },
            WifiEmission::SingleLongPreamble,
            &[15.0],
            40,
            8,
        );
        assert!(
            pts[0].p_detect < 0.95,
            "single-LTS detection should be degraded, got {}",
            pts[0].p_detect
        );
    }

    #[test]
    fn detection_improves_with_snr() {
        let pts = wifi_detection_sweep(
            &DetectionPreset::WifiShortPreamble { threshold: 0.30 },
            WifiEmission::FullFrames { psdu_len: 60 },
            &[-9.0, 3.0],
            30,
            9,
        );
        assert!(pts[1].p_detect >= pts[0].p_detect, "{pts:?}");
    }

    #[test]
    fn energy_detector_single_trigger_at_high_snr() {
        let pts = wifi_detection_sweep(
            &DetectionPreset::EnergyRise { threshold_db: 10.0 },
            WifiEmission::FullFrames { psdu_len: 60 },
            &[20.0],
            30,
            10,
        );
        assert!(pts[0].p_detect > 0.95, "p={}", pts[0].p_detect);
        assert!(
            pts[0].triggers_per_frame < 1.5,
            "triggers={}",
            pts[0].triggers_per_frame
        );
    }

    #[test]
    fn energy_detector_silent_below_noise() {
        let pts = wifi_detection_sweep(
            &DetectionPreset::EnergyRise { threshold_db: 10.0 },
            WifiEmission::FullFrames { psdu_len: 60 },
            &[-10.0],
            20,
            11,
        );
        assert!(pts[0].p_detect < 0.2, "p={}", pts[0].p_detect);
    }

    #[test]
    fn false_alarm_rate_scales_with_threshold() {
        let loose = false_alarm_rate(
            &DetectionPreset::WifiLongPreamble { threshold: 0.08 },
            400_000,
            12,
        );
        let strict = false_alarm_rate(
            &DetectionPreset::WifiLongPreamble { threshold: 0.6 },
            400_000,
            12,
        );
        assert!(loose > strict, "loose {loose}/s vs strict {strict}/s");
        assert_eq!(strict, 0.0, "a high threshold must not fire on noise");
    }

    #[test]
    fn wimax_fusion_reaches_full_detection() {
        let alone = wimax_detection(false, 12, 20.0, 0.45, 13);
        let fused = wimax_detection(true, 12, 20.0, 0.45, 13);
        assert!(
            fused.detect_fraction >= alone.detect_fraction,
            "fused {} vs alone {}",
            fused.detect_fraction,
            alone.detect_fraction
        );
        assert!(
            (fused.detect_fraction - 1.0).abs() < 1e-9,
            "fusion must catch every frame, got {}",
            fused.detect_fraction
        );
        assert!(fused.one_to_one, "jam bursts must correspond 1:1 to frames");
    }

    #[test]
    fn jamming_sweep_shapes() {
        let sirs = [40.0, 4.0];
        let clean = jamming_sweep(JammerUnderTest::Off, &[40.0], 3.0, 14);
        let cont = jamming_sweep(JammerUnderTest::Continuous, &sirs, 3.0, 14);
        // Weak jamming: near the clean ceiling; strong: dead or nearly so.
        assert!(cont[0].report.bandwidth_kbps > 0.5 * clean[0].report.bandwidth_kbps);
        assert!(cont[1].report.bandwidth_kbps < 0.1 * clean[0].report.bandwidth_kbps);
    }

    #[test]
    fn scenario_wiring_uses_budget() {
        let sc = scenario_for(JammerUnderTest::ReactiveLong, 15.94, 1.0, 1);
        assert!((sc.sir_ap_db - 15.94).abs() < 1e-9);
        assert!((sc.snr_ap_db - 28.0).abs() < 1e-9);
        match sc.jammer {
            JammerKind::Reactive {
                uptime_us,
                detect_prob,
                ..
            } => {
                assert_eq!(uptime_us, 100.0);
                assert!(detect_prob > 0.99);
            }
            _ => panic!("wrong jammer kind"),
        }
    }

    #[test]
    fn fading_degrades_detection_but_not_to_zero() {
        let preset = DetectionPreset::WifiShortPreamble { threshold: 0.30 };
        let awgn = wifi_detection_sweep_in_channel(
            &preset,
            WifiEmission::FullFrames { psdu_len: 60 },
            ChannelModel::Awgn,
            &[8.0],
            40,
            31,
        );
        let faded = wifi_detection_sweep_in_channel(
            &preset,
            WifiEmission::FullFrames { psdu_len: 60 },
            ChannelModel::Rayleigh { taps: 8, rms: 2.0 },
            &[8.0],
            40,
            31,
        );
        assert!(
            faded[0].p_detect <= awgn[0].p_detect + 0.05,
            "{faded:?} vs {awgn:?}"
        );
        assert!(
            faded[0].p_detect > 0.3,
            "fading must not kill detection: {faded:?}"
        );
    }

    #[test]
    fn roc_tradeoff_monotone() {
        let pts = roc_curve(
            &|t| DetectionPreset::WifiShortPreamble { threshold: t },
            WifiEmission::FullFrames { psdu_len: 60 },
            -3.0,
            &[0.22, 0.34, 0.50],
            30,
            300_000,
            21,
        );
        // Raising the threshold must not raise either FA or detection.
        for w in pts.windows(2) {
            assert!(w[1].fa_per_s <= w[0].fa_per_s + 1e-9, "{pts:?}");
            assert!(w[1].p_detect <= w[0].p_detect + 1e-9, "{pts:?}");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(JammerUnderTest::Continuous.label(), "Continuous Jammer");
        assert!(JammerUnderTest::ReactiveShort.label().contains("0.01ms"));
    }
}
