//! # rjam-core — the host-side reactive jamming framework
//!
//! This crate is the paper's contribution proper: the software that turns
//! the FPGA detection/response fabric ([`rjam_fpga`]) into a *protocol-aware
//! reactive jammer*. It plays the role of the GNU Radio host application
//! and Python GUI of paper §2.5:
//!
//! * [`coeff`] — offline generation of the 64-tap 3-bit correlator
//!   templates from standard preambles (WiFi short/long, WiMAX carrier
//!   sets), including the 20->25 MSPS resampling that defines the paper's
//!   operating conditions;
//! * [`presets`] — detection and jamming "personalities" (continuous,
//!   reactive with uptime, surgical with delay) that map onto register
//!   programming;
//! * [`jammer`] — [`jammer::ReactiveJammer`], the top-level handle that owns
//!   a [`rjam_fpga::DspCore`], applies presets at run time, streams samples
//!   and reads back events — the programmatic equivalent of the paper's
//!   run-time GUI;
//! * [`timeline`] — the Fig. 5 timing analysis (T_en_det, T_xcorr_det,
//!   T_init, T_resp) both statically and as measured from core event logs;
//! * [`testbed`] — link-budget arithmetic over the 5-port network: SNR/SIR
//!   at every port from transmit powers, pads and the variable attenuator;
//! * [`campaign`] — the experiment runners that regenerate every figure:
//!   detection-probability sweeps (Figs 6-8), false-alarm calibration,
//!   iperf jamming sweeps (Figs 10-11) and the WiMAX detection/jamming
//!   correspondence experiment (Fig 12), all described by [`campaign::CampaignSpec`];
//! * [`engine`] — the deterministic sharded campaign engine: splits every
//!   campaign into seed-split shards, runs them on scoped worker threads
//!   (`RJAM_THREADS`) and merges in shard order, so output is bit-identical
//!   to the serial path at any thread count;
//! * [`trace`] — traced jam episodes: every frame gets a correlation ID at
//!   MAC emission and a causal chain (PHY → channel → FPGA → jam → outcome)
//!   in one exportable [`rjam_obs::trace::TraceDoc`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autonomous;
pub mod campaign;
pub mod coeff;
pub mod engine;
pub mod export;
pub mod jammer;
pub mod presets;
pub mod spec;
pub mod testbed;
pub mod timeline;
pub mod trace;

pub use autonomous::AutonomousJammer;
pub use engine::{CampaignEngine, CancelToken, ShardCtx};
pub use jammer::{BlockScratch, ReactiveJammer};
pub use presets::{DetectionPreset, JammerPreset};
pub use spec::{CampaignRequest, JobCheckpoint, SpecError};
pub use testbed::TestbedBudget;
