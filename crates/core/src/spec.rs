//! Serializable campaign requests — the job vocabulary of `rjamd`.
//!
//! [`crate::campaign::CampaignSpec`] builders are ordinary Rust values;
//! a campaign *service* needs the same vocabulary as data. This module
//! defines [`CampaignRequest`], a typed, validated, JSON-round-trippable
//! description of every campaign a job can run, plus [`JobCheckpoint`],
//! the persisted shard progress that makes cancel + resume possible.
//!
//! The boundary contract is **reject-before-enqueue**: a request is parsed
//! into typed fields and [`CampaignRequest::validate`]d before any work is
//! scheduled, so a malformed job never occupies a queue slot. Validation
//! errors are typed ([`SpecError`]) and name the offending field.
//!
//! Determinism: [`CampaignRequest::run_to_export`] drives the same
//! checkpointable campaign runners the direct API uses, so a job's export
//! bytes are identical to calling the [`crate::campaign`] builders in
//! process — interrupted-and-resumed or not, at any thread count.

use crate::campaign::{CampaignSpec, ChannelModel, JammerUnderTest, WifiEmission};
use crate::engine::{CampaignEngine, CancelToken};
use crate::export;
use crate::presets::DetectionPreset;
use rjam_obs::json::{self, Value};
use rjam_obs::ParseError;
use std::collections::BTreeMap;
use std::fmt;

/// Boundary error for campaign requests: either the JSON didn't parse
/// into the expected shape, or a typed field failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The request text/value was not a well-formed request object.
    Parse(ParseError),
    /// A field parsed but failed validation.
    Field {
        /// Dotted path of the rejected field (e.g. `"preset.threshold"`).
        field: &'static str,
        /// Human-readable constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "{e}"),
            SpecError::Field { field, reason } => write!(f, "invalid '{field}': {reason}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Parse(e) => Some(e),
            SpecError::Field { .. } => None,
        }
    }
}

impl From<ParseError> for SpecError {
    fn from(e: ParseError) -> Self {
        SpecError::Parse(e)
    }
}

fn field_err(field: &'static str, reason: impl Into<String>) -> SpecError {
    SpecError::Field {
        field,
        reason: reason.into(),
    }
}

/// A campaign a job can run, as data.
///
/// Mirrors the [`CampaignSpec`] builders one-to-one for every campaign
/// whose description is plain data. ROC sweeps are deliberately absent:
/// [`crate::campaign::RocSpec`] borrows a preset-factory closure, which
/// has no serialized form — run those in process.
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignRequest {
    /// A WiFi detection-probability sweep (Figs 6-8) exporting the
    /// detection CSV.
    WifiDetection {
        /// Detector personality.
        preset: DetectionPreset,
        /// What the transmitter emits each trial.
        emission: WifiEmission,
        /// Channel model between transmitter and detector.
        channel: ChannelModel,
        /// SNR grid in dB.
        snrs_db: Vec<f64>,
        /// Frames per SNR point.
        frames_per_point: usize,
        /// Campaign seed.
        seed: u64,
    },
    /// A noise-only false-alarm measurement exporting the rate JSON.
    FalseAlarm {
        /// Detector personality.
        preset: DetectionPreset,
        /// Total noise samples to stream.
        samples: usize,
        /// Campaign seed.
        seed: u64,
    },
    /// The WiMAX downlink detection/jamming experiment (Fig. 12)
    /// exporting the result JSON.
    Wimax {
        /// Fused correlator+energy detector (vs correlator alone).
        fused: bool,
        /// TDD downlink frames to receive.
        frames: usize,
        /// Receive SNR in dB.
        snr_db: f64,
        /// Correlation threshold fraction.
        threshold: f64,
        /// Campaign seed.
        seed: u64,
    },
    /// A Fig. 10/11 iperf jamming sweep exporting the jamming CSV.
    Jamming {
        /// Jammer variant under test.
        jammer: JammerUnderTest,
        /// SIR grid at the AP, dB.
        sirs_db: Vec<f64>,
        /// iperf duration per point, seconds.
        duration_s: f64,
        /// Campaign seed.
        seed: u64,
    },
}

impl CampaignRequest {
    /// The campaign kind tag used on the wire and in telemetry.
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignRequest::WifiDetection { .. } => "wifi_detection",
            CampaignRequest::FalseAlarm { .. } => "false_alarm",
            CampaignRequest::Wimax { .. } => "wimax",
            CampaignRequest::Jamming { .. } => "jamming",
        }
    }

    /// Number of engine work units the request will run — the progress
    /// denominator a job reports.
    pub fn n_units(&self) -> usize {
        match self {
            CampaignRequest::WifiDetection {
                preset,
                emission,
                channel,
                snrs_db,
                frames_per_point,
                seed,
            } => CampaignSpec::wifi_detection(preset)
                .emission(*emission)
                .channel(*channel)
                .snrs(snrs_db)
                .trials(*frames_per_point)
                .seed(*seed)
                .n_units(),
            CampaignRequest::FalseAlarm {
                preset,
                samples,
                seed,
            } => CampaignSpec::false_alarm(preset)
                .samples(*samples)
                .seed(*seed)
                .n_units(),
            CampaignRequest::Wimax { frames, .. } => {
                CampaignSpec::wimax_detection().frames(*frames).n_units()
            }
            CampaignRequest::Jamming { sirs_db, .. } => sirs_db.len(),
        }
    }

    /// Checks every field against the constraints the builders and the
    /// detector hardware model impose, naming the first offender. A
    /// request that validates will run; this is the reject-before-enqueue
    /// gate the job queue relies on.
    pub fn validate(&self) -> Result<(), SpecError> {
        fn check_preset(preset: &DetectionPreset) -> Result<(), SpecError> {
            match preset {
                DetectionPreset::WifiShortPreamble { threshold }
                | DetectionPreset::WifiLongPreamble { threshold } => {
                    check_fraction("preset.threshold", *threshold)
                }
                DetectionPreset::WimaxPreamble {
                    id_cell,
                    segment,
                    threshold,
                } => {
                    check_cell(*id_cell, *segment)?;
                    check_fraction("preset.threshold", *threshold)
                }
                DetectionPreset::EnergyRise { threshold_db }
                | DetectionPreset::EnergyFall { threshold_db } => {
                    check_db("preset.threshold_db", *threshold_db)
                }
                DetectionPreset::WimaxFused {
                    id_cell,
                    segment,
                    threshold,
                    energy_db,
                } => {
                    check_cell(*id_cell, *segment)?;
                    check_fraction("preset.threshold", *threshold)?;
                    check_db("preset.energy_db", *energy_db)
                }
            }
        }
        fn check_fraction(field: &'static str, v: f64) -> Result<(), SpecError> {
            if v.is_finite() && v > 0.0 && v <= 1.0 {
                Ok(())
            } else {
                Err(field_err(field, format!("{v} is not in (0, 1]")))
            }
        }
        fn check_db(field: &'static str, v: f64) -> Result<(), SpecError> {
            if v.is_finite() && (3.0..=30.0).contains(&v) {
                Ok(())
            } else {
                Err(field_err(field, format!("{v} dB is not in [3, 30]")))
            }
        }
        fn check_cell(id_cell: u8, segment: u8) -> Result<(), SpecError> {
            if id_cell > 31 {
                return Err(field_err("preset.id_cell", format!("{id_cell} exceeds 31")));
            }
            if segment > 2 {
                return Err(field_err("preset.segment", format!("{segment} exceeds 2")));
            }
            Ok(())
        }
        fn check_grid(field: &'static str, grid: &[f64]) -> Result<(), SpecError> {
            if grid.is_empty() {
                return Err(field_err(field, "grid is empty"));
            }
            if let Some(bad) = grid.iter().find(|v| !v.is_finite()) {
                return Err(field_err(field, format!("{bad} is not finite")));
            }
            Ok(())
        }

        match self {
            CampaignRequest::WifiDetection {
                preset,
                emission,
                channel,
                snrs_db,
                frames_per_point,
                ..
            } => {
                check_preset(preset)?;
                if let WifiEmission::FullFrames { psdu_len } = emission {
                    if *psdu_len == 0 || *psdu_len > 4095 {
                        return Err(field_err(
                            "emission.psdu_len",
                            format!("{psdu_len} is not in 1..=4095"),
                        ));
                    }
                }
                if let ChannelModel::Rayleigh { taps, rms } = channel {
                    if *taps == 0 {
                        return Err(field_err("channel.taps", "0 taps"));
                    }
                    if !rms.is_finite() || *rms <= 0.0 {
                        return Err(field_err("channel.rms", format!("{rms} is not positive")));
                    }
                }
                check_grid("snrs_db", snrs_db)?;
                if *frames_per_point == 0 {
                    return Err(field_err("trials", "0 frames per point"));
                }
                Ok(())
            }
            CampaignRequest::FalseAlarm {
                preset, samples, ..
            } => {
                check_preset(preset)?;
                if *samples == 0 {
                    return Err(field_err("samples", "0 noise samples"));
                }
                Ok(())
            }
            CampaignRequest::Wimax {
                frames,
                snr_db,
                threshold,
                ..
            } => {
                if *frames == 0 {
                    return Err(field_err("frames", "0 frames"));
                }
                if !snr_db.is_finite() {
                    return Err(field_err("snr_db", format!("{snr_db} is not finite")));
                }
                check_fraction("threshold", *threshold)
            }
            CampaignRequest::Jamming {
                sirs_db,
                duration_s,
                ..
            } => {
                check_grid("sirs_db", sirs_db)?;
                if !duration_s.is_finite() || *duration_s <= 0.0 {
                    return Err(field_err(
                        "duration_s",
                        format!("{duration_s} is not positive"),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Runs the campaign to its canonical export bytes — exactly the
    /// string the corresponding [`crate::export`] function produces from a
    /// direct [`CampaignSpec`] run with the same parameters.
    ///
    /// `ckpt` persists completed shard work across interruptions for the
    /// checkpointable kinds (`wifi_detection`, `false_alarm`); `cancel`
    /// stops the run between units, returning `None`. WiMAX and jamming
    /// campaigns carry no checkpoint — on resume they re-run from scratch,
    /// which is still byte-identical by the engine's determinism contract.
    pub fn run_to_export(
        &self,
        engine: &CampaignEngine,
        ckpt: &mut JobCheckpoint,
        cancel: Option<&CancelToken>,
    ) -> Option<String> {
        match self {
            CampaignRequest::WifiDetection {
                preset,
                emission,
                channel,
                snrs_db,
                frames_per_point,
                seed,
            } => {
                let done = ckpt.wifi_units();
                let points = CampaignSpec::wifi_detection(preset)
                    .emission(*emission)
                    .channel(*channel)
                    .snrs(snrs_db)
                    .trials(*frames_per_point)
                    .seed(*seed)
                    .run_ckpt(engine, done, cancel)?;
                Some(export::detection_csv(&points))
            }
            CampaignRequest::FalseAlarm {
                preset,
                samples,
                seed,
            } => {
                let done = ckpt.fa_units();
                let (triggers, streamed) = CampaignSpec::false_alarm(preset)
                    .samples(*samples)
                    .seed(*seed)
                    .run_counts_ckpt(engine, done, cancel)?;
                let rate = if streamed == 0 {
                    0.0
                } else {
                    triggers as f64 / (streamed as f64 / rjam_sdr::USRP_SAMPLE_RATE)
                };
                Some(export::false_alarm_json(rate))
            }
            CampaignRequest::Wimax {
                fused,
                frames,
                snr_db,
                threshold,
                seed,
            } => {
                let result = CampaignSpec::wimax_detection()
                    .fused(*fused)
                    .frames(*frames)
                    .snr_db(*snr_db)
                    .threshold(*threshold)
                    .seed(*seed)
                    .run_cancellable(engine, cancel)?;
                Some(export::wimax_json(&result))
            }
            CampaignRequest::Jamming {
                jammer,
                sirs_db,
                duration_s,
                seed,
            } => {
                let points = CampaignSpec::jamming(*jammer)
                    .sirs(sirs_db)
                    .duration_s(*duration_s)
                    .seed(*seed)
                    .run_cancellable(engine, cancel)?;
                Some(export::jamming_csv(&points))
            }
        }
    }

    /// Serializes to the request's canonical JSON object (the `spec`
    /// payload of an `rjam-job-v1` submit).
    pub fn to_value(&self) -> Value {
        let mut o = BTreeMap::new();
        o.insert("campaign".into(), Value::String(self.kind().into()));
        match self {
            CampaignRequest::WifiDetection {
                preset,
                emission,
                channel,
                snrs_db,
                frames_per_point,
                seed,
            } => {
                o.insert("preset".into(), preset_to_value(preset));
                o.insert("emission".into(), emission_to_value(emission));
                o.insert("channel".into(), channel_to_value(channel));
                o.insert("snrs_db".into(), grid_to_value(snrs_db));
                o.insert("trials".into(), Value::Number(*frames_per_point as f64));
                o.insert("seed".into(), Value::Number(*seed as f64));
            }
            CampaignRequest::FalseAlarm {
                preset,
                samples,
                seed,
            } => {
                o.insert("preset".into(), preset_to_value(preset));
                o.insert("samples".into(), Value::Number(*samples as f64));
                o.insert("seed".into(), Value::Number(*seed as f64));
            }
            CampaignRequest::Wimax {
                fused,
                frames,
                snr_db,
                threshold,
                seed,
            } => {
                o.insert("fused".into(), Value::Bool(*fused));
                o.insert("frames".into(), Value::Number(*frames as f64));
                o.insert("snr_db".into(), Value::Number(*snr_db));
                o.insert("threshold".into(), Value::Number(*threshold));
                o.insert("seed".into(), Value::Number(*seed as f64));
            }
            CampaignRequest::Jamming {
                jammer,
                sirs_db,
                duration_s,
                seed,
            } => {
                o.insert("jammer".into(), Value::String(jammer_id(*jammer).into()));
                o.insert("sirs_db".into(), grid_to_value(sirs_db));
                o.insert("duration_s".into(), Value::Number(*duration_s));
                o.insert("seed".into(), Value::Number(*seed as f64));
            }
        }
        Value::Object(o)
    }

    /// Parses a request from its JSON object form. Shape errors are
    /// [`SpecError::Parse`]; the result is **not** yet validated — callers
    /// decide when to apply [`CampaignRequest::validate`].
    pub fn from_value(v: &Value) -> Result<Self, SpecError> {
        let o = v.as_object().ok_or(ParseError::NotAnObject)?;
        let campaign = str_field(o, "campaign")?;
        match campaign {
            "wifi_detection" => Ok(CampaignRequest::WifiDetection {
                preset: preset_from(o)?,
                emission: emission_from(o)?,
                channel: channel_from(o)?,
                snrs_db: grid_from(o, "snrs_db")?,
                frames_per_point: usize_field(o, "trials")?,
                seed: u64_field(o, "seed")?,
            }),
            "false_alarm" => Ok(CampaignRequest::FalseAlarm {
                preset: preset_from(o)?,
                samples: usize_field(o, "samples")?,
                seed: u64_field(o, "seed")?,
            }),
            "wimax" => Ok(CampaignRequest::Wimax {
                fused: bool_field(o, "fused")?,
                frames: usize_field(o, "frames")?,
                snr_db: f64_field(o, "snr_db")?,
                threshold: f64_field(o, "threshold")?,
                seed: u64_field(o, "seed")?,
            }),
            "jamming" => Ok(CampaignRequest::Jamming {
                jammer: jammer_from_id(str_field(o, "jammer")?)?,
                sirs_db: grid_from(o, "sirs_db")?,
                duration_s: f64_field(o, "duration_s")?,
                seed: u64_field(o, "seed")?,
            }),
            other => Err(field_err(
                "campaign",
                format!(
                    "unknown campaign '{other}' \
                     (wifi_detection | false_alarm | wimax | jamming)"
                ),
            )),
        }
    }

    /// Parses and validates request text in one step — the full boundary
    /// gate.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let v = json::parse(text).map_err(ParseError::Json)?;
        let req = CampaignRequest::from_value(&v)?;
        req.validate()?;
        Ok(req)
    }

    /// Serializes to compact JSON text.
    pub fn to_json(&self) -> String {
        json::write_value(&self.to_value())
    }
}

fn grid_to_value(grid: &[f64]) -> Value {
    Value::Array(grid.iter().map(|&v| Value::Number(v)).collect())
}

fn preset_to_value(p: &DetectionPreset) -> Value {
    let mut o = BTreeMap::new();
    match p {
        DetectionPreset::WifiShortPreamble { threshold } => {
            o.insert("kind".into(), Value::String("wifi_short".into()));
            o.insert("threshold".into(), Value::Number(*threshold));
        }
        DetectionPreset::WifiLongPreamble { threshold } => {
            o.insert("kind".into(), Value::String("wifi_long".into()));
            o.insert("threshold".into(), Value::Number(*threshold));
        }
        DetectionPreset::WimaxPreamble {
            id_cell,
            segment,
            threshold,
        } => {
            o.insert("kind".into(), Value::String("wimax".into()));
            o.insert("id_cell".into(), Value::Number(*id_cell as f64));
            o.insert("segment".into(), Value::Number(*segment as f64));
            o.insert("threshold".into(), Value::Number(*threshold));
        }
        DetectionPreset::EnergyRise { threshold_db } => {
            o.insert("kind".into(), Value::String("energy_rise".into()));
            o.insert("threshold_db".into(), Value::Number(*threshold_db));
        }
        DetectionPreset::EnergyFall { threshold_db } => {
            o.insert("kind".into(), Value::String("energy_fall".into()));
            o.insert("threshold_db".into(), Value::Number(*threshold_db));
        }
        DetectionPreset::WimaxFused {
            id_cell,
            segment,
            threshold,
            energy_db,
        } => {
            o.insert("kind".into(), Value::String("wimax_fused".into()));
            o.insert("id_cell".into(), Value::Number(*id_cell as f64));
            o.insert("segment".into(), Value::Number(*segment as f64));
            o.insert("threshold".into(), Value::Number(*threshold));
            o.insert("energy_db".into(), Value::Number(*energy_db));
        }
    }
    Value::Object(o)
}

fn emission_to_value(e: &WifiEmission) -> Value {
    let mut o = BTreeMap::new();
    match e {
        WifiEmission::FullFrames { psdu_len } => {
            o.insert("kind".into(), Value::String("full_frames".into()));
            o.insert("psdu_len".into(), Value::Number(*psdu_len as f64));
        }
        WifiEmission::SingleShortPreamble => {
            o.insert("kind".into(), Value::String("single_short".into()));
        }
        WifiEmission::SingleLongPreamble => {
            o.insert("kind".into(), Value::String("single_long".into()));
        }
    }
    Value::Object(o)
}

fn channel_to_value(c: &ChannelModel) -> Value {
    let mut o = BTreeMap::new();
    match c {
        ChannelModel::Awgn => {
            o.insert("kind".into(), Value::String("awgn".into()));
        }
        ChannelModel::Rayleigh { taps, rms } => {
            o.insert("kind".into(), Value::String("rayleigh".into()));
            o.insert("taps".into(), Value::Number(*taps as f64));
            o.insert("rms".into(), Value::Number(*rms));
        }
    }
    Value::Object(o)
}

/// Wire identifier of a jammer variant.
pub fn jammer_id(j: JammerUnderTest) -> &'static str {
    match j {
        JammerUnderTest::Off => "off",
        JammerUnderTest::Continuous => "continuous",
        JammerUnderTest::ReactiveLong => "reactive_long",
        JammerUnderTest::ReactiveShort => "reactive_short",
    }
}

/// Inverse of [`jammer_id`].
pub fn jammer_from_id(id: &str) -> Result<JammerUnderTest, SpecError> {
    match id {
        "off" => Ok(JammerUnderTest::Off),
        "continuous" => Ok(JammerUnderTest::Continuous),
        "reactive_long" => Ok(JammerUnderTest::ReactiveLong),
        "reactive_short" => Ok(JammerUnderTest::ReactiveShort),
        other => Err(field_err(
            "jammer",
            format!("unknown jammer '{other}' (off | continuous | reactive_long | reactive_short)"),
        )),
    }
}

type Obj = BTreeMap<String, Value>;

fn str_field<'a>(o: &'a Obj, field: &'static str) -> Result<&'a str, ParseError> {
    o.get(field)
        .and_then(Value::as_str)
        .ok_or(ParseError::Field {
            field: field.to_string(),
            expected: "string",
        })
}

fn f64_field(o: &Obj, field: &'static str) -> Result<f64, ParseError> {
    o.get(field)
        .and_then(Value::as_f64)
        .ok_or(ParseError::Field {
            field: field.to_string(),
            expected: "number",
        })
}

fn u64_field(o: &Obj, field: &'static str) -> Result<u64, ParseError> {
    o.get(field)
        .and_then(Value::as_u64)
        .ok_or(ParseError::Field {
            field: field.to_string(),
            expected: "non-negative integer",
        })
}

fn usize_field(o: &Obj, field: &'static str) -> Result<usize, ParseError> {
    u64_field(o, field).map(|v| v as usize)
}

fn bool_field(o: &Obj, field: &'static str) -> Result<bool, ParseError> {
    match o.get(field) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(ParseError::Field {
            field: field.to_string(),
            expected: "boolean",
        }),
    }
}

fn obj_field<'a>(o: &'a Obj, field: &'static str) -> Result<&'a Obj, ParseError> {
    o.get(field)
        .and_then(Value::as_object)
        .ok_or(ParseError::Field {
            field: field.to_string(),
            expected: "object",
        })
}

fn grid_from(o: &Obj, field: &'static str) -> Result<Vec<f64>, SpecError> {
    let arr = o
        .get(field)
        .and_then(Value::as_array)
        .ok_or(ParseError::Field {
            field: field.to_string(),
            expected: "array of numbers",
        })?;
    arr.iter()
        .map(|v| {
            v.as_f64().ok_or_else(|| {
                ParseError::Field {
                    field: field.to_string(),
                    expected: "array of numbers",
                }
                .into()
            })
        })
        .collect()
}

fn preset_from(o: &Obj) -> Result<DetectionPreset, SpecError> {
    let p = obj_field(o, "preset")?;
    let kind = str_field(p, "kind")?;
    let u8_of = |field: &'static str| -> Result<u8, ParseError> {
        u64_field(p, field).map(|v| v.min(u8::MAX as u64) as u8)
    };
    match kind {
        "wifi_short" => Ok(DetectionPreset::WifiShortPreamble {
            threshold: f64_field(p, "threshold")?,
        }),
        "wifi_long" => Ok(DetectionPreset::WifiLongPreamble {
            threshold: f64_field(p, "threshold")?,
        }),
        "wimax" => Ok(DetectionPreset::WimaxPreamble {
            id_cell: u8_of("id_cell")?,
            segment: u8_of("segment")?,
            threshold: f64_field(p, "threshold")?,
        }),
        "energy_rise" => Ok(DetectionPreset::EnergyRise {
            threshold_db: f64_field(p, "threshold_db")?,
        }),
        "energy_fall" => Ok(DetectionPreset::EnergyFall {
            threshold_db: f64_field(p, "threshold_db")?,
        }),
        "wimax_fused" => Ok(DetectionPreset::WimaxFused {
            id_cell: u8_of("id_cell")?,
            segment: u8_of("segment")?,
            threshold: f64_field(p, "threshold")?,
            energy_db: f64_field(p, "energy_db")?,
        }),
        other => Err(field_err(
            "preset.kind",
            format!(
                "unknown preset '{other}' (wifi_short | wifi_long | wimax | \
                 energy_rise | energy_fall | wimax_fused)"
            ),
        )),
    }
}

fn emission_from(o: &Obj) -> Result<WifiEmission, SpecError> {
    let e = obj_field(o, "emission")?;
    match str_field(e, "kind")? {
        "full_frames" => Ok(WifiEmission::FullFrames {
            psdu_len: usize_field(e, "psdu_len")?,
        }),
        "single_short" => Ok(WifiEmission::SingleShortPreamble),
        "single_long" => Ok(WifiEmission::SingleLongPreamble),
        other => Err(field_err(
            "emission.kind",
            format!("unknown emission '{other}' (full_frames | single_short | single_long)"),
        )),
    }
}

fn channel_from(o: &Obj) -> Result<ChannelModel, SpecError> {
    let c = obj_field(o, "channel")?;
    match str_field(c, "kind")? {
        "awgn" => Ok(ChannelModel::Awgn),
        "rayleigh" => Ok(ChannelModel::Rayleigh {
            taps: usize_field(c, "taps")?,
            rms: f64_field(c, "rms")?,
        }),
        other => Err(field_err(
            "channel.kind",
            format!("unknown channel '{other}' (awgn | rayleigh)"),
        )),
    }
}

/// Persisted shard progress of a job — what survives a cancel.
///
/// The checkpointable campaigns store per-unit integer results keyed by
/// original unit index, exactly the `done` maps their `run_*_ckpt`
/// methods consume. WiMAX and jamming campaigns keep no checkpoint (their
/// unit results are not plain data) and restart from zero on resume.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobCheckpoint {
    wifi: BTreeMap<usize, (usize, usize)>,
    fa: BTreeMap<usize, (u64, u64)>,
}

impl JobCheckpoint {
    /// An empty checkpoint (no completed units).
    pub fn new() -> Self {
        JobCheckpoint::default()
    }

    /// Completed units recorded so far.
    pub fn units_done(&self) -> usize {
        self.wifi.len() + self.fa.len()
    }

    fn wifi_units(&mut self) -> &mut BTreeMap<usize, (usize, usize)> {
        &mut self.wifi
    }

    fn fa_units(&mut self) -> &mut BTreeMap<usize, (u64, u64)> {
        &mut self.fa
    }

    /// Serializes to a JSON object: `{"wifi": {"<unit>": [a, b], ...},
    /// "fa": {...}}`, omitting empty maps.
    pub fn to_value(&self) -> Value {
        fn pair(a: f64, b: f64) -> Value {
            Value::Array(vec![Value::Number(a), Value::Number(b)])
        }
        let mut o = BTreeMap::new();
        if !self.wifi.is_empty() {
            o.insert(
                "wifi".into(),
                Value::Object(
                    self.wifi
                        .iter()
                        .map(|(&k, &(a, b))| (k.to_string(), pair(a as f64, b as f64)))
                        .collect(),
                ),
            );
        }
        if !self.fa.is_empty() {
            o.insert(
                "fa".into(),
                Value::Object(
                    self.fa
                        .iter()
                        .map(|(&k, &(a, b))| (k.to_string(), pair(a as f64, b as f64)))
                        .collect(),
                ),
            );
        }
        Value::Object(o)
    }

    /// Inverse of [`JobCheckpoint::to_value`].
    pub fn from_value(v: &Value) -> Result<Self, SpecError> {
        let o = v.as_object().ok_or(ParseError::NotAnObject)?;
        let mut ckpt = JobCheckpoint::new();
        if let Some(w) = o.get("wifi") {
            for (k, pair) in parse_unit_map(w, "wifi")? {
                ckpt.wifi.insert(k, (pair.0 as usize, pair.1 as usize));
            }
        }
        if let Some(f) = o.get("fa") {
            for (k, pair) in parse_unit_map(f, "fa")? {
                ckpt.fa.insert(k, pair);
            }
        }
        Ok(ckpt)
    }
}

/// `(unit index, checkpointed pair)` rows parsed off the wire.
type UnitPairs = Vec<(usize, (u64, u64))>;

fn parse_unit_map(v: &Value, which: &'static str) -> Result<UnitPairs, SpecError> {
    let o = v.as_object().ok_or(ParseError::Field {
        field: which.to_string(),
        expected: "object",
    })?;
    let mut out = Vec::with_capacity(o.len());
    for (k, pair) in o {
        let unit: usize = k
            .parse()
            .map_err(|_| field_err(which, format!("unit key '{k}' is not an index")))?;
        let arr = pair.as_array().ok_or(ParseError::Field {
            field: which.to_string(),
            expected: "[a, b] pairs",
        })?;
        let (a, b) = match arr {
            [a, b] => (a.as_u64(), b.as_u64()),
            _ => (None, None),
        };
        let (a, b) = match (a, b) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(field_err(
                    which,
                    format!("unit {k}: not a pair of non-negative integers"),
                ))
            }
        };
        out.push((unit, (a, b)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wifi_request() -> CampaignRequest {
        CampaignRequest::WifiDetection {
            preset: DetectionPreset::WifiShortPreamble { threshold: 0.30 },
            emission: WifiEmission::FullFrames { psdu_len: 60 },
            channel: ChannelModel::Awgn,
            snrs_db: vec![-4.0, 0.0, 5.0],
            frames_per_point: 24,
            seed: 7,
        }
    }

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = [
            wifi_request(),
            CampaignRequest::FalseAlarm {
                preset: DetectionPreset::EnergyRise { threshold_db: 10.0 },
                samples: 1 << 19,
                seed: 3,
            },
            CampaignRequest::Wimax {
                fused: true,
                frames: 8,
                snr_db: 20.0,
                threshold: 0.45,
                seed: 1,
            },
            CampaignRequest::Jamming {
                jammer: JammerUnderTest::ReactiveShort,
                sirs_db: vec![0.0, 10.0],
                duration_s: 0.25,
                seed: 9,
            },
        ];
        for req in reqs {
            let text = req.to_json();
            let back = CampaignRequest::from_json(&text).expect("round trip");
            assert_eq!(back, req, "{text}");
        }
    }

    fn wifi_with(f: impl FnOnce(&mut CampaignRequest)) -> CampaignRequest {
        let mut req = wifi_request();
        f(&mut req);
        req
    }

    #[test]
    fn validation_rejects_before_enqueue() {
        let empty_grid = wifi_with(|r| {
            if let CampaignRequest::WifiDetection { snrs_db, .. } = r {
                snrs_db.clear();
            }
        });
        let zero_trials = wifi_with(|r| {
            if let CampaignRequest::WifiDetection {
                frames_per_point, ..
            } = r
            {
                *frames_per_point = 0;
            }
        });
        let bad_threshold = wifi_with(|r| {
            if let CampaignRequest::WifiDetection { preset, .. } = r {
                *preset = DetectionPreset::WifiShortPreamble { threshold: 1.5 };
            }
        });
        let cases: Vec<(CampaignRequest, &str)> = vec![
            (empty_grid, "snrs_db"),
            (zero_trials, "trials"),
            (bad_threshold, "preset.threshold"),
            (
                CampaignRequest::FalseAlarm {
                    preset: DetectionPreset::EnergyRise { threshold_db: 40.0 },
                    samples: 1,
                    seed: 0,
                },
                "preset.threshold_db",
            ),
            (
                CampaignRequest::Jamming {
                    jammer: JammerUnderTest::Off,
                    sirs_db: vec![1.0],
                    duration_s: 0.0,
                    seed: 0,
                },
                "duration_s",
            ),
        ];
        for (req, field) in cases {
            let err = req.validate().expect_err("must reject");
            assert!(err.to_string().contains(field), "{err} should name {field}");
        }
    }

    #[test]
    fn unknown_kinds_are_named_in_errors() {
        let err = CampaignRequest::from_json(r#"{"campaign":"roc"}"#).expect_err("rejects");
        assert!(err.to_string().contains("unknown campaign 'roc'"), "{err}");
        let err = CampaignRequest::from_json("not json").expect_err("rejects");
        assert!(matches!(err, SpecError::Parse(_)));
    }

    #[test]
    fn checkpoints_round_trip() {
        let mut ckpt = JobCheckpoint::new();
        ckpt.wifi_units().insert(0, (3, 5));
        ckpt.wifi_units().insert(7, (1, 2));
        let text = json::write_value(&ckpt.to_value());
        let back = JobCheckpoint::from_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ckpt);

        let mut fa = JobCheckpoint::new();
        fa.fa_units().insert(2, (11, 1 << 18));
        let back =
            JobCheckpoint::from_value(&json::parse(&json::write_value(&fa.to_value())).unwrap())
                .unwrap();
        assert_eq!(back, fa);
        assert_eq!(back.units_done(), 1);
    }

    #[test]
    fn cancelled_job_resumes_to_identical_export() {
        let engine = CampaignEngine::with_threads(2);
        let req = wifi_request();
        let direct = req
            .run_to_export(&engine, &mut JobCheckpoint::new(), None)
            .expect("uncancelled run completes");

        let token = CancelToken::new();
        token.cancel();
        let mut ckpt = JobCheckpoint::new();
        assert!(req
            .run_to_export(&engine, &mut ckpt, Some(&token))
            .is_none());

        let fresh = CancelToken::new();
        let resumed = req
            .run_to_export(&engine, &mut ckpt, Some(&fresh))
            .expect("resume completes");
        assert_eq!(resumed, direct, "resumed export must be byte-identical");
    }
}
