//! Offline correlator-template generation (paper §2.3).
//!
//! "These coefficients are generated offline on the host based on knowledge
//! of the wireless standards' preambles." The host takes a reference
//! waveform at its native rate, resamples it to the receiver's fixed
//! 25 MSPS, windows 64 samples and quantizes each rail to the hardware's
//! 3-bit signed range. The rate conversion is what creates the paper's
//! central operating condition: a 3.2 us long-training symbol becomes 80
//! samples at 25 MSPS, of which the 64-tap window covers only the first
//! 2.56 us.

use rjam_fpga::XCORR_LEN;
use rjam_sdr::complex::Cf64;
use rjam_sdr::resample::to_usrp_rate;

/// A pair of 64-tap 3-bit coefficient rails ready for the register bus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Template {
    /// I-rail coefficients, each in `-4..=3`.
    pub coeff_i: [i8; 64],
    /// Q-rail coefficients.
    pub coeff_q: [i8; 64],
}

impl Template {
    /// A recommended detection threshold for this template as a fraction of
    /// its ideal (noise-free, perfectly aligned) correlator peak.
    ///
    /// The ideal peak of the sign-bit correlator with matched input is
    /// `(sum |cI| + sum |cQ|)^2` (all sign decisions agree).
    pub fn threshold_at_fraction(&self, fraction: f64) -> u64 {
        let sum: i64 = self
            .coeff_i
            .iter()
            .chain(self.coeff_q.iter())
            .map(|&c| (c as i64).abs())
            .sum();
        (((sum * sum) as f64) * fraction.clamp(0.0, 1.0)) as u64
    }
}

/// Quantizes a 25 MSPS waveform window into a [`Template`].
///
/// The window is the **first** 64 samples; if the waveform is shorter it is
/// cyclically extended (the short-preamble case, where the 16-sample STS
/// repeats continuously on the air).
///
/// # Panics
/// Panics on an empty waveform.
pub fn quantize_template(wave_25msps: &[Cf64]) -> Template {
    assert!(
        !wave_25msps.is_empty(),
        "cannot build a template from nothing"
    );
    let window: Vec<Cf64> = (0..XCORR_LEN)
        .map(|k| wave_25msps[k % wave_25msps.len()])
        .collect();
    // Scale so the largest component magnitude maps to the 3-bit extreme.
    let peak = window
        .iter()
        .flat_map(|s| [s.re.abs(), s.im.abs()])
        .fold(0.0f64, f64::max)
        .max(1e-30);
    let q = |x: f64| -> i8 {
        let v = (x / peak * 3.5).round() as i32;
        v.clamp(-4, 3) as i8
    };
    let mut coeff_i = [0i8; 64];
    let mut coeff_q = [0i8; 64];
    for (k, s) in window.iter().enumerate() {
        coeff_i[k] = q(s.re);
        coeff_q[k] = q(s.im);
    }
    Template { coeff_i, coeff_q }
}

/// Builds a template from a waveform at its native sample rate: resample to
/// 25 MSPS, then window and quantize.
pub fn template_from_native(wave: &[Cf64], native_rate: f64) -> Template {
    let at_usrp = to_usrp_rate(wave, native_rate);
    quantize_template(&at_usrp)
}

/// Template for the 802.11 short training sequence: the 16-sample STS at
/// 20 MSPS becomes 20 samples at 25 MSPS, cyclically extended across the
/// 64-tap window (3.2 repetitions — valid because the STS repeats on air).
pub fn wifi_short_template() -> Template {
    let sts = rjam_phy80211::preamble::short_symbol();
    template_from_native(&sts, rjam_sdr::WIFI_SAMPLE_RATE)
}

/// Template for the 802.11 long training symbol: the 64-sample LTS at
/// 20 MSPS becomes 80 samples at 25 MSPS; the 64-tap window covers only the
/// first 2.56 us of the 3.2 us code — the paper's documented sub-optimal
/// operating condition.
pub fn wifi_long_template() -> Template {
    let lts = rjam_phy80211::preamble::long_symbol();
    template_from_native(&lts, rjam_sdr::WIFI_SAMPLE_RATE)
}

/// Quantizes an arbitrary-length window for the [`rjam_fpga::WideCorrelator`]
/// extension: resamples to 25 MSPS, cyclically extends if needed, windows
/// `len` samples and 3-bit-quantizes both rails (the same construction as
/// the 64-tap templates, without the hardware's length limit).
pub fn wide_template_from_native(
    wave: &[Cf64],
    native_rate: f64,
    len: usize,
) -> (Vec<rjam_fpga::Coeff3>, Vec<rjam_fpga::Coeff3>) {
    assert!(len > 0, "window length must be positive");
    let at_usrp = to_usrp_rate(wave, native_rate);
    assert!(!at_usrp.is_empty(), "cannot build a template from nothing");
    let window: Vec<Cf64> = (0..len).map(|k| at_usrp[k % at_usrp.len()]).collect();
    let peak = window
        .iter()
        .flat_map(|s| [s.re.abs(), s.im.abs()])
        .fold(1e-30f64, f64::max);
    let q = |x: f64| rjam_fpga::Coeff3::saturating((x / peak * 3.5).round() as i32);
    (
        window.iter().map(|s| q(s.re)).collect(),
        window.iter().map(|s| q(s.im)).collect(),
    )
}

/// Template for a WiMAX downlink preamble: the first 64 of the ~2245
/// samples the 11.4 MHz symbol occupies at 25 MSPS ("the 25 us orthogonal
/// code ... is being correlated across its first 2.56 us").
pub fn wimax_template(id_cell: u8, segment: u8) -> Template {
    let sym = rjam_phy80216::preamble_symbol(id_cell, segment);
    // Skip the cyclic prefix so the window starts on the code proper.
    let body = &sym[rjam_phy80216::CP_LEN..];
    template_from_native(body, rjam_sdr::WIMAX_SAMPLE_RATE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjam_fpga::xcorr::Coeff3;
    use rjam_fpga::CrossCorrelator;
    use rjam_sdr::complex::IqI16;

    fn load(xc: &mut CrossCorrelator, t: &Template) {
        let ci: Vec<Coeff3> = t.coeff_i.iter().map(|&c| Coeff3::new(c)).collect();
        let cq: Vec<Coeff3> = t.coeff_q.iter().map(|&c| Coeff3::new(c)).collect();
        xc.load_coeffs(&ci, &cq);
    }

    /// Feeds a 25 MSPS waveform through a correlator, returning the peak
    /// metric.
    fn peak_metric(t: &Template, wave: &[Cf64]) -> u64 {
        let mut xc = CrossCorrelator::new();
        load(&mut xc, t);
        let mut peak = 0;
        for &s in wave {
            let out = xc.push(IqI16::from_cf64(s.scale(0.5)));
            peak = peak.max(out.metric);
        }
        peak
    }

    #[test]
    fn coefficients_in_hardware_range() {
        for t in [
            wifi_short_template(),
            wifi_long_template(),
            wimax_template(1, 0),
        ] {
            assert!(t.coeff_i.iter().all(|&c| (-4..=3).contains(&c)));
            assert!(t.coeff_q.iter().all(|&c| (-4..=3).contains(&c)));
            // Non-degenerate: some large-magnitude taps on each rail.
            assert!(t.coeff_i.iter().any(|&c| c.abs() >= 2));
        }
    }

    #[test]
    fn long_template_peaks_on_matching_preamble() {
        let t = wifi_long_template();
        let lts = rjam_phy80211::preamble::long_symbol();
        let wave = rjam_sdr::resample::to_usrp_rate(&lts, 20.0e6);
        let peak = peak_metric(&t, &wave);
        let ideal = t.threshold_at_fraction(1.0);
        assert!(
            peak as f64 > 0.25 * ideal as f64,
            "peak {peak} vs ideal {ideal}"
        );
    }

    #[test]
    fn short_template_peaks_on_repeated_sts() {
        let t = wifi_short_template();
        let sp = rjam_phy80211::preamble::short_preamble();
        let wave = rjam_sdr::resample::to_usrp_rate(&sp, 20.0e6);
        let peak = peak_metric(&t, &wave);
        let ideal = t.threshold_at_fraction(1.0);
        assert!(
            peak as f64 > 0.3 * ideal as f64,
            "peak {peak} vs ideal {ideal}"
        );
    }

    #[test]
    fn template_rejects_other_standard() {
        // The WiFi long template must not fire strongly on WiMAX downlink.
        let t = wifi_long_template();
        let mut gen =
            rjam_phy80216::DownlinkGenerator::new(rjam_phy80216::DownlinkConfig::default());
        let frame = gen.next_frame();
        let wave = rjam_sdr::resample::to_usrp_rate(&frame[..20_000], 11.4e6);
        let cross_peak = peak_metric(&t, &wave);
        let lts = rjam_phy80211::preamble::long_symbol();
        let own_peak = peak_metric(&t, &rjam_sdr::resample::to_usrp_rate(&lts, 20.0e6));
        assert!(
            (cross_peak as f64) < 0.8 * own_peak as f64,
            "cross {cross_peak} vs own {own_peak}"
        );
    }

    #[test]
    fn wimax_template_matches_own_preamble() {
        let t = wimax_template(1, 0);
        let sym = rjam_phy80216::preamble_symbol(1, 0);
        let wave = rjam_sdr::resample::to_usrp_rate(&sym[rjam_phy80216::CP_LEN..], 11.4e6);
        let peak = peak_metric(&t, &wave);
        let other = wimax_template(5, 0);
        let peak_other = peak_metric(&other, &wave);
        assert!(peak > peak_other, "own {peak} vs other-cell {peak_other}");
    }

    #[test]
    fn threshold_fraction_scales() {
        let t = wifi_long_template();
        let full = t.threshold_at_fraction(1.0);
        let half = t.threshold_at_fraction(0.5);
        assert!(half * 2 <= full + 1);
        assert_eq!(t.threshold_at_fraction(2.0), full, "clamped above 1");
    }

    #[test]
    fn quantizer_uses_full_range() {
        let t = wifi_long_template();
        let max_i = t.coeff_i.iter().map(|&c| c.abs()).max().unwrap();
        assert!(max_i >= 3, "peak tap should reach the 3-bit extreme");
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn empty_waveform_rejected() {
        let _ = quantize_template(&[]);
    }

    #[test]
    fn wide_template_matches_64_tap_construction() {
        // At length 64 the wide builder must agree with the fixed builder.
        let lts = rjam_phy80211::preamble::long_symbol();
        let fixed = wifi_long_template();
        let (wi, wq) = wide_template_from_native(&lts, rjam_sdr::WIFI_SAMPLE_RATE, 64);
        for k in 0..64 {
            assert_eq!(wi[k].get(), fixed.coeff_i[k]);
            assert_eq!(wq[k].get(), fixed.coeff_q[k]);
        }
    }

    #[test]
    fn wide_template_drives_wide_correlator() {
        use rjam_fpga::WideCorrelator;
        let lts = rjam_phy80211::preamble::long_symbol();
        let (ci, cq) = wide_template_from_native(&lts, rjam_sdr::WIFI_SAMPLE_RATE, 80);
        let mut xc = WideCorrelator::new(&ci, &cq);
        let wave = rjam_sdr::resample::to_usrp_rate(&lts, rjam_sdr::WIFI_SAMPLE_RATE);
        let mut peak = 0u64;
        for &s in &wave {
            peak = peak.max(
                xc.push(rjam_sdr::complex::IqI16::from_cf64(s.scale(0.5)))
                    .metric,
            );
        }
        assert!(
            peak as f64 > 0.5 * xc.max_metric() as f64,
            "peak {peak} of ideal {}",
            xc.max_metric()
        );
    }
}
