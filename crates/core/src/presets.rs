//! Detection and jamming personalities.
//!
//! The paper's GUI lets an operator pick "detection types and desired
//! jamming reactions during run time"; these enums are the programmatic
//! form. A ([`DetectionPreset`], [`JammerPreset`]) pair compiles into a
//! complete [`rjam_fpga::CoreConfig`].

use crate::coeff::{self, Template};
use rjam_fpga::{CoreConfig, JamWaveform, TriggerMode, TriggerSource};

/// What to detect.
#[derive(Clone, Debug, PartialEq)]
pub enum DetectionPreset {
    /// Cross-correlate against the 802.11 short training sequence.
    WifiShortPreamble {
        /// Detection threshold as a fraction of the template's ideal peak.
        threshold: f64,
    },
    /// Cross-correlate against the 802.11 long training symbol.
    WifiLongPreamble {
        /// Detection threshold as a fraction of the template's ideal peak.
        threshold: f64,
    },
    /// Cross-correlate against a WiMAX downlink preamble.
    WimaxPreamble {
        /// Base-station Cell ID (0..=31).
        id_cell: u8,
        /// Segment (0..=2).
        segment: u8,
        /// Detection threshold fraction.
        threshold: f64,
    },
    /// Energy-rise detection only (protocol-agnostic).
    EnergyRise {
        /// Rise threshold in dB (3..=30).
        threshold_db: f64,
    },
    /// Energy-fall detection: trigger at the END of a transmission. With a
    /// SIFS-sized jam delay this implements the classic ACK-jamming attack
    /// (corrupt the acknowledgement instead of the long data frame — even
    /// less energy per kill than the paper's data-frame bursts).
    EnergyFall {
        /// Fall threshold in dB (3..=30).
        threshold_db: f64,
    },
    /// Cross-correlation OR energy rise — the fusion that reaches 100 %
    /// WiMAX frame detection in paper §5.
    WimaxFused {
        /// Base-station Cell ID.
        id_cell: u8,
        /// Segment.
        segment: u8,
        /// Correlation threshold fraction.
        threshold: f64,
        /// Energy-rise threshold in dB.
        energy_db: f64,
    },
}

impl DetectionPreset {
    /// The correlator template this preset loads, if any.
    pub fn template(&self) -> Option<Template> {
        match self {
            DetectionPreset::WifiShortPreamble { .. } => Some(coeff::wifi_short_template()),
            DetectionPreset::EnergyFall { .. } => None,
            DetectionPreset::WifiLongPreamble { .. } => Some(coeff::wifi_long_template()),
            DetectionPreset::WimaxPreamble {
                id_cell, segment, ..
            }
            | DetectionPreset::WimaxFused {
                id_cell, segment, ..
            } => Some(coeff::wimax_template(*id_cell, *segment)),
            DetectionPreset::EnergyRise { .. } => None,
        }
    }

    /// Returns a copy of this preset with its correlation-threshold
    /// fraction replaced by `fraction`, or `None` for energy-only presets
    /// (whose thresholds are in dB, not peak fractions). This is what lets
    /// threshold-grid sweeps derive one preset per lane from a base preset.
    pub fn with_xcorr_fraction(&self, fraction: f64) -> Option<DetectionPreset> {
        let mut preset = self.clone();
        match &mut preset {
            DetectionPreset::WifiShortPreamble { threshold }
            | DetectionPreset::WifiLongPreamble { threshold }
            | DetectionPreset::WimaxPreamble { threshold, .. }
            | DetectionPreset::WimaxFused { threshold, .. } => *threshold = fraction,
            DetectionPreset::EnergyRise { .. } | DetectionPreset::EnergyFall { .. } => return None,
        }
        Some(preset)
    }

    /// The trigger sources the preset enables.
    pub fn trigger_mode(&self) -> TriggerMode {
        match self {
            DetectionPreset::EnergyRise { .. } => TriggerMode::Any(vec![TriggerSource::EnergyHigh]),
            DetectionPreset::EnergyFall { .. } => TriggerMode::Any(vec![TriggerSource::EnergyLow]),
            DetectionPreset::WimaxFused { .. } => {
                TriggerMode::Any(vec![TriggerSource::Xcorr, TriggerSource::EnergyHigh])
            }
            _ => TriggerMode::Any(vec![TriggerSource::Xcorr]),
        }
    }

    /// The paper's end-to-end response budget for this preset, in ns.
    ///
    /// Derived from the platform constants, not a literal: presets that arm
    /// the correlator are bounded by the slower cross-correlation path
    /// (T_resp_xcorr); energy-only presets by the energy path
    /// (T_resp_energy).
    pub fn response_budget_ns(&self) -> f64 {
        let b = crate::timeline::TimelineBudget::paper();
        let uses_xcorr = match self.trigger_mode() {
            TriggerMode::Any(sources) => sources.contains(&TriggerSource::Xcorr),
            TriggerMode::Sequence { stages, .. } => stages.contains(&TriggerSource::Xcorr),
        };
        if uses_xcorr {
            b.t_resp_xcorr_ns
        } else {
            b.t_resp_energy_ns
        }
    }

    /// Applies the preset's detection fields onto a config.
    pub fn apply(&self, cfg: &mut CoreConfig) {
        if let Some(t) = self.template() {
            cfg.coeff_i = t.coeff_i;
            cfg.coeff_q = t.coeff_q;
            let frac = match self {
                DetectionPreset::WifiShortPreamble { threshold }
                | DetectionPreset::WifiLongPreamble { threshold }
                | DetectionPreset::WimaxPreamble { threshold, .. }
                | DetectionPreset::WimaxFused { threshold, .. } => *threshold,
                DetectionPreset::EnergyRise { .. } | DetectionPreset::EnergyFall { .. } => 1.0,
            };
            cfg.xcorr_threshold = t.threshold_at_fraction(frac);
        } else {
            cfg.xcorr_threshold = u64::MAX;
        }
        match self {
            DetectionPreset::EnergyRise { threshold_db } => {
                cfg.energy_high_db = *threshold_db;
            }
            DetectionPreset::EnergyFall { threshold_db } => {
                cfg.energy_low_db = *threshold_db;
            }
            DetectionPreset::WimaxFused { energy_db, .. } => {
                cfg.energy_high_db = *energy_db;
            }
            _ => {}
        }
        cfg.trigger_mode = self.trigger_mode();
    }
}

/// How to react.
#[derive(Clone, Debug, PartialEq)]
pub enum JammerPreset {
    /// Detection only — log events, transmit nothing.
    Monitor,
    /// Always-on wideband noise (the paper's baseline jammer).
    Continuous,
    /// Reactive burst of the given uptime after each trigger.
    Reactive {
        /// Burst length in seconds (40 ns .. ~172 s).
        uptime_s: f64,
        /// Waveform to transmit.
        waveform: JamWaveform,
    },
    /// Reactive burst placed at a delay after the trigger, to hit a chosen
    /// region of the packet ("surgical" jamming).
    Surgical {
        /// Burst length in seconds.
        uptime_s: f64,
        /// Trigger-to-burst delay in seconds.
        delay_s: f64,
        /// Waveform to transmit.
        waveform: JamWaveform,
    },
}

impl JammerPreset {
    /// Applies the preset's jammer fields onto a config.
    pub fn apply(&self, cfg: &mut CoreConfig) {
        let rate = rjam_sdr::USRP_SAMPLE_RATE;
        match self {
            JammerPreset::Monitor => {
                cfg.enabled = false;
                cfg.continuous = false;
            }
            JammerPreset::Continuous => {
                cfg.enabled = false;
                cfg.continuous = true;
                cfg.waveform = JamWaveform::Wgn;
            }
            JammerPreset::Reactive { uptime_s, waveform } => {
                cfg.enabled = true;
                cfg.continuous = false;
                cfg.uptime_samples = (uptime_s * rate).round().max(1.0) as u64;
                cfg.delay_samples = 0;
                cfg.waveform = waveform.clone();
            }
            JammerPreset::Surgical {
                uptime_s,
                delay_s,
                waveform,
            } => {
                cfg.enabled = true;
                cfg.continuous = false;
                cfg.uptime_samples = (uptime_s * rate).round().max(1.0) as u64;
                cfg.delay_samples = (delay_s * rate).round() as u64;
                cfg.waveform = waveform.clone();
            }
        }
    }
}

/// Compiles a detection/jamming pair into a complete core configuration.
pub fn build_config(det: &DetectionPreset, jam: &JammerPreset, lockout: u64) -> CoreConfig {
    let mut cfg = CoreConfig {
        lockout,
        ..CoreConfig::default()
    };
    det.apply(&mut cfg);
    jam.apply(&mut cfg);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_long_preset_compiles() {
        let cfg = build_config(
            &DetectionPreset::WifiLongPreamble { threshold: 0.5 },
            &JammerPreset::Reactive {
                uptime_s: 1e-4,
                waveform: JamWaveform::Wgn,
            },
            1000,
        );
        assert!(cfg.enabled);
        assert!(!cfg.continuous);
        assert_eq!(cfg.uptime_samples, 2500);
        assert!(cfg.xcorr_threshold < u64::MAX);
        assert_eq!(
            cfg.trigger_mode,
            TriggerMode::Any(vec![TriggerSource::Xcorr])
        );
    }

    #[test]
    fn energy_preset_disables_correlator() {
        let cfg = build_config(
            &DetectionPreset::EnergyRise { threshold_db: 10.0 },
            &JammerPreset::Monitor,
            0,
        );
        assert_eq!(cfg.xcorr_threshold, u64::MAX);
        assert_eq!(cfg.energy_high_db, 10.0);
        assert!(!cfg.enabled && !cfg.continuous);
    }

    #[test]
    fn fused_preset_enables_both_sources() {
        let cfg = build_config(
            &DetectionPreset::WimaxFused {
                id_cell: 1,
                segment: 0,
                threshold: 0.5,
                energy_db: 10.0,
            },
            &JammerPreset::Reactive {
                uptime_s: 4e-5,
                waveform: JamWaveform::Wgn,
            },
            0,
        );
        assert_eq!(
            cfg.trigger_mode,
            TriggerMode::Any(vec![TriggerSource::Xcorr, TriggerSource::EnergyHigh])
        );
    }

    #[test]
    fn energy_fall_preset_uses_low_trigger() {
        let cfg = build_config(
            &DetectionPreset::EnergyFall { threshold_db: 10.0 },
            &JammerPreset::Surgical {
                uptime_s: 30e-6,
                delay_s: 10e-6, // one SIFS: land on the ACK
                waveform: JamWaveform::Wgn,
            },
            0,
        );
        assert_eq!(cfg.energy_low_db, 10.0);
        assert_eq!(cfg.xcorr_threshold, u64::MAX);
        assert_eq!(
            cfg.trigger_mode,
            TriggerMode::Any(vec![TriggerSource::EnergyLow])
        );
        assert_eq!(cfg.delay_samples, 250);
    }

    #[test]
    fn continuous_preset() {
        let cfg = build_config(
            &DetectionPreset::EnergyRise { threshold_db: 10.0 },
            &JammerPreset::Continuous,
            0,
        );
        assert!(cfg.continuous);
        assert!(!cfg.enabled);
    }

    #[test]
    fn surgical_delay_in_samples() {
        let cfg = build_config(
            &DetectionPreset::WifiShortPreamble { threshold: 0.5 },
            &JammerPreset::Surgical {
                uptime_s: 1e-5,
                delay_s: 25e-6,
                waveform: JamWaveform::Replay,
            },
            0,
        );
        assert_eq!(cfg.delay_samples, 625); // 25 us at 25 MSPS
        assert_eq!(cfg.uptime_samples, 250);
        assert_eq!(cfg.waveform, JamWaveform::Replay);
    }

    #[test]
    fn response_budget_follows_trigger_path() {
        let b = crate::timeline::TimelineBudget::paper();
        let xcorr = DetectionPreset::WifiShortPreamble { threshold: 0.35 };
        assert_eq!(xcorr.response_budget_ns(), b.t_resp_xcorr_ns);
        let energy = DetectionPreset::EnergyRise { threshold_db: 10.0 };
        assert_eq!(energy.response_budget_ns(), b.t_resp_energy_ns);
        // Fusion arms the correlator, so the slower path bounds it.
        let fused = DetectionPreset::WimaxFused {
            id_cell: 1,
            segment: 0,
            threshold: 0.5,
            energy_db: 10.0,
        };
        assert_eq!(fused.response_budget_ns(), b.t_resp_xcorr_ns);
    }

    #[test]
    fn minimum_uptime_one_sample() {
        let cfg = build_config(
            &DetectionPreset::EnergyRise { threshold_db: 10.0 },
            &JammerPreset::Reactive {
                uptime_s: 1e-12,
                waveform: JamWaveform::Wgn,
            },
            0,
        );
        assert_eq!(cfg.uptime_samples, 1);
    }
}
