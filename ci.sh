#!/bin/sh
# Hermetic CI gate. Everything here runs offline — the workspace has zero
# external dependencies (see "Hermetic verification" in README.md), so a
# network failure can only mean a regression in the manifests.
set -eu

step() {
    echo
    echo "==== $* ===="
}

step "rustfmt (check only)"
cargo fmt --check

step "clippy, deny warnings, all targets"
cargo clippy --workspace --all-targets --offline -- -D warnings

step "release build"
cargo build --workspace --release --offline

step "tests (unit + integration + property)"
cargo test -q --workspace --offline

step "bench smoke run (reduced samples, JSON to the workspace root)"
# cargo runs bench binaries with cwd = the package dir, so pin the output
# directory explicitly.
RJAM_BENCH_SAMPLES=3 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
    RJAM_BENCH_OUT="$(pwd)" \
    cargo bench -q -p rjam-bench --offline --bench xcorr_throughput

step "bench report is valid JSON"
test -s BENCH_xcorr_throughput.json
cargo run -q --release --offline -p rjam-bench --bin check_bench_json -- BENCH_xcorr_throughput.json

echo
echo "ci.sh: all gates passed"
