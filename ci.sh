#!/bin/sh
# Hermetic CI gate. Everything here runs offline — the workspace has zero
# external dependencies (see "Hermetic verification" in README.md), so a
# network failure can only mean a regression in the manifests.
set -eu

step() {
    echo
    echo "==== $* ===="
}

step "rustfmt (check only)"
cargo fmt --check

step "clippy, deny warnings, all targets"
cargo clippy --workspace --all-targets --offline -- -D warnings

step "rustdoc, deny warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

step "release build"
cargo build --workspace --release --offline

step "tests (unit + integration + property)"
cargo test -q --workspace --offline

step "bench smoke run (reduced samples, JSON to the workspace root)"
# cargo runs bench binaries with cwd = the package dir, so pin the output
# directory explicitly.
RJAM_BENCH_SAMPLES=3 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
    RJAM_BENCH_OUT="$(pwd)" \
    cargo bench -q -p rjam-bench --offline --bench xcorr_throughput

step "bench report is valid JSON"
test -s BENCH_xcorr_throughput.json
cargo run -q --release --offline -p rjam-bench --bin check_bench_json -- BENCH_xcorr_throughput.json

step "lane bank bench smoke (lanes 1/4/16/64, block sizes, multi-template)"
RJAM_BENCH_SAMPLES=3 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
    RJAM_BENCH_OUT="$(pwd)" \
    cargo bench -q -p rjam-bench --offline --bench dsp_lanes
test -s BENCH_dsp_lanes.json
cargo run -q --release --offline -p rjam-bench --bin check_bench_json -- BENCH_dsp_lanes.json

step "lane bank scaling gate (lanes_16 vs lanes_1 aggregate throughput)"
# Fails the build if the bitsliced lane bank stops amortizing its popcount
# pass: 16 lanes sharing one template must deliver at least 4x the
# single-lane aggregate throughput (RJAM_LANE_SCALING_MIN). The speedup is
# instruction-level sharing on one core, so unlike the thread-scaling gate
# below there is no core-count escape hatch.
cargo run -q --release --offline -p rjam-bench --bin check_lane_scaling -- BENCH_dsp_lanes.json

step "campaign engine bench smoke (threads 1/2/4 + inline determinism cross-check)"
# The bench itself panics if any sharded run diverges bitwise from the
# serial reference, so a passing run doubles as a determinism gate.
RJAM_BENCH_SAMPLES=3 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
    RJAM_BENCH_OUT="$(pwd)" \
    cargo bench -q -p rjam-bench --offline --bench campaign_engine
test -s BENCH_campaign_engine.json
cargo run -q --release --offline -p rjam-bench --bin check_bench_json -- BENCH_campaign_engine.json

step "campaign engine scaling gate (threads_4 vs threads_1 medians)"
# Fails the build if the parallel engine regresses: on >= 4 cores the
# 4-thread median must be a real speedup (<= 0.7x serial); on smaller
# runners, where speedup is physically impossible, it must at least stay
# within scheduling-overhead range of serial (<= 1.15x). The old
# one-shard-per-point engine sat at 1.19x and would fail either bound.
cargo run -q --release --offline -p rjam-bench --bin check_scaling -- BENCH_campaign_engine.json

step "health monitor bench smoke (paired monitored/unmonitored slices + detector updates)"
# One process emits both suites: BENCH_health.json (monitored) and
# BENCH_health_unmonitored.json, interleaved per label so the pair shares
# CPU state. The overhead gate below compares them.
RJAM_BENCH_SAMPLES=5 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
    RJAM_BENCH_OUT="$(pwd)" \
    cargo bench -q -p rjam-bench --offline --bench health_monitor
test -s BENCH_health.json
test -s BENCH_health_unmonitored.json
cargo run -q --release --offline -p rjam-bench --bin check_bench_json -- \
    BENCH_health.json BENCH_health_unmonitored.json

step "health monitor overhead gate (monitored <= 1.02x unmonitored, paired mins)"
# The monitor's per-frame cost is one branch plus window arithmetic; the
# paired in-process blocks plus --stat min keep scheduler noise out of the
# 2 % bound (see benches/health_monitor.rs for the sizing rationale). A
# tripped run re-measures before failing: on an oversubscribed runner a
# single paired block can still drift a few tenths of a percent, and a
# real regression trips every fresh measurement.
health_gate_ok=0
for health_gate_attempt in 1 2 3; do
    if cargo run -q --release --offline -p rjam-bench --bin check_baseline -- \
        BENCH_health.json BENCH_health_unmonitored.json \
        --max-ratio 1.02 --stat min; then
        health_gate_ok=1
        break
    fi
    echo "overhead gate attempt ${health_gate_attempt} tripped; re-measuring"
    RJAM_BENCH_SAMPLES=5 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
        RJAM_BENCH_OUT="$(pwd)" \
        cargo bench -q -p rjam-bench --offline --bench health_monitor
done
test "$health_gate_ok" = 1

step "perf baseline gate (fresh smoke medians vs committed baselines/)"
# Bounds median regressions against committed snapshots measured on the
# same runner class with the same smoke settings. The default bound
# (RJAM_BASELINE_RATIO, 1.25) absorbs shared-runner noise while still
# catching algorithmic regressions; after an intentional perf change,
# regenerate the snapshots (see baselines/README.md) in the same PR.
# The campaign gate watches the serial record only: oversubscribed
# threads_2/4 wall-clocks on a small runner are scheduler noise, and
# check_scaling above already bounds them *relative to* threads_1 within
# this same run.
cargo run -q --release --offline -p rjam-bench --bin check_baseline -- \
    BENCH_xcorr_throughput.json baselines/BENCH_xcorr_throughput.json
cargo run -q --release --offline -p rjam-bench --bin check_baseline -- \
    BENCH_campaign_engine.json baselines/BENCH_campaign_engine.json \
    --params threads_1
# The lane-bank gate watches the 16-lane records only: the sub-millisecond
# lanes_1 smoke run is dominated by scheduler noise, and check_lane_scaling
# above already bounds it *relative to* lanes_16 within this same run.
cargo run -q --release --offline -p rjam-bench --bin check_baseline -- \
    BENCH_dsp_lanes.json baselines/BENCH_dsp_lanes.json \
    --params lanes_16
# The health gate watches the detector microbench only: the scenario-slice
# records exist for the paired overhead comparison above, and their
# sub-millisecond wall-clocks are scheduler noise against a snapshot from
# another run.
cargo run -q --release --offline -p rjam-bench --bin check_baseline -- \
    BENCH_health.json baselines/BENCH_health.json \
    --params cusum_ewma_quantile_1m

step "campaign determinism: RJAM_THREADS=1 and RJAM_THREADS=4 outputs are byte-identical"
# The whole-engine contract, checked through the operator console: the same
# campaign at different worker counts must print the same bytes.
for cmd in \
    "detect --preset wifi-short --snr 5 --frames 20" \
    "fa --preset wifi-long --threshold 0.34 --samples 2000000" \
    "iperf --jammer reactive-long --sir 14 --seconds 1"; do
    RJAM_THREADS=1 cargo run -q --release --offline -p rjam-cli -- $cmd > rjam_ci_t1.out
    RJAM_THREADS=4 cargo run -q --release --offline -p rjam-cli -- $cmd > rjam_ci_t4.out
    diff rjam_ci_t1.out rjam_ci_t4.out || {
        echo "determinism violation: '$cmd' differs between 1 and 4 threads"; exit 1;
    }
done
rm -f rjam_ci_t1.out rjam_ci_t4.out

step "no-default-features: obs layer compiles out (build + clippy)"
# The whole observability/tracing layer must degrade to zero-sized no-ops
# when the 'obs' feature is off; any accidental hard dependency on it is a
# build or lint failure here.
cargo build --workspace --no-default-features --offline
cargo clippy --workspace --no-default-features --all-targets --offline -- -D warnings

step "telemetry overhead gate: obs-on engine within 1.02x of obs-off (threads_1 median)"
# The engine's per-unit timing, stream hooks and profile publication must
# cost <= 2 % on the serial hot path. Both runs use identical settings,
# back to back, on this runner; the no-default build compiles the whole
# obs layer to zero-sized no-ops.
mkdir -p target/ci_obs_off target/ci_obs_on
RJAM_BENCH_SAMPLES=5 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
    RJAM_BENCH_OUT="$(pwd)/target/ci_obs_off" \
    cargo bench -q -p rjam-bench --no-default-features --offline --bench campaign_engine
RJAM_BENCH_SAMPLES=5 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
    RJAM_BENCH_OUT="$(pwd)/target/ci_obs_on" \
    cargo bench -q -p rjam-bench --offline --bench campaign_engine
cargo run -q --release --offline -p rjam-bench --bin check_baseline -- \
    target/ci_obs_on/BENCH_campaign_engine.json \
    target/ci_obs_off/BENCH_campaign_engine.json \
    --max-ratio 1.02 --params threads_1

step "observability smoke: stats report + metrics snapshot round-trip"
# `stats` exercises live episodes and must report the trigger-to-TX
# histogram against the paper's response budget; `--metrics-out` must
# write a rjam-metrics-v1 snapshot that `stats FILE` parses back.
cargo run -q --release --offline -p rjam-cli -- stats | grep -q "== counters =="
cargo run -q --release --offline -p rjam-cli -- stats | grep -q "2640 ns xcorr response budget"
cargo run -q --release --offline -p rjam-cli -- \
    timeline --trials 1 --metrics-out rjam_ci_metrics.json > /dev/null
test -s rjam_ci_metrics.json
grep -q '"schema": "rjam-metrics-v1"' rjam_ci_metrics.json
cargo run -q --release --offline -p rjam-cli -- stats rjam_ci_metrics.json \
    | grep -q "fpga.samples_in"
rm -f rjam_ci_metrics.json

step "live progress smoke: rjamctl --progress streams a valid start->done chain"
# A real campaign through the console must emit a complete, schema-valid
# rjam-progress-v1 chain — to a file via --progress=FILE and to stderr via
# bare --progress.
cargo run -q --release --offline -p rjam-cli -- \
    --progress=rjam_ci_progress.ndjson \
    detect --preset wifi-short --snr 3 --frames 16 > /dev/null
test -s rjam_ci_progress.ndjson
grep -q "campaign_started" rjam_ci_progress.ndjson
grep -q "campaign_done" rjam_ci_progress.ndjson
cargo run -q --release --offline -p rjam-bench --bin check_progress_json -- \
    rjam_ci_progress.ndjson
cargo run -q --release --offline -p rjam-cli -- \
    --progress detect --preset wifi-short --snr 3 --frames 16 \
    > /dev/null 2> rjam_ci_progress_err.ndjson
cargo run -q --release --offline -p rjam-bench --bin check_progress_json -- \
    rjam_ci_progress_err.ndjson
rm -f rjam_ci_progress.ndjson rjam_ci_progress_err.ndjson

step "engine profile report: rjamctl report attributes >= 95% of worker wall-clock"
# The post-run profile must account for (busy + idle + merge-wait) at
# least 95 % of total worker wall-clock on a real campaign — anything
# less means the engine is losing time the profile cannot explain.
cargo run -q --release --offline -p rjam-cli -- report --frames 32 --top 3 \
    > rjam_ci_report.out
grep -q "engine profile: wifi_detection" rjam_ci_report.out
awk '/^attributed /{p=$2; sub(/%/,"",p); found=1;
         if (p+0 < 95.0) { print "attribution below 95%: " p; exit 1 } }
     END { if (!found) { print "no attribution line in report"; exit 1 } }' \
    rjam_ci_report.out
rm -f rjam_ci_report.out

step "causal tracing smoke: rjamctl trace emits a valid rjam-trace-v1 doc"
# A default traced run must produce a document the round-trip parser
# accepts, in which at least one jammed frame carries the full causal
# chain (MAC emit -> detector fire -> trigger -> jam TX -> MAC outcome).
cargo run -q --release --offline -p rjam-cli -- \
    trace --episodes 4 --out rjam_ci_trace.json --chrome rjam_ci_trace_chrome.json \
    | grep -q "full causal chains"
test -s rjam_ci_trace.json
grep -q '"schema": "rjam-trace-v1"' rjam_ci_trace.json
grep -q '"traceEvents"' rjam_ci_trace_chrome.json
cargo run -q --release --offline -p rjam-bench --bin check_trace_json -- \
    --require-chain rjam_ci_trace.json
rm -f rjam_ci_trace.json rjam_ci_trace_chrome.json

step "link-health smoke: jammed run alarms within 32 frames, clean run stays silent"
# The monitor watches a stock jamming scenario through the operator
# console: reactive-long at SIR 1 collapses PRR, which must raise
# prr_collapse within 32 frames of onset and exit non-zero; the clean run
# must finish healthy and exit 0. Both NDJSON streams must round-trip the
# rjam-health-v1 validator with the matching alarm expectation.
if cargo run -q --release --offline -p rjam-cli -- \
    monitor --jammer reactive-long --sir 1 --seconds 1 \
    --out rjam_ci_health_jam.ndjson > rjam_ci_health_jam.out; then
    echo "jammed monitor run reported healthy"; exit 1
fi
grep -q "link health: ALARMED" rjam_ci_health_jam.out
grep -q "prr_collapse" rjam_ci_health_jam.out
cargo run -q --release --offline -p rjam-bench --bin check_health_json -- \
    --require-alarm --alarm-within 32 rjam_ci_health_jam.ndjson
cargo run -q --release --offline -p rjam-cli -- \
    monitor --jammer off --seconds 1 --out rjam_ci_health_clean.ndjson \
    > rjam_ci_health_clean.out
grep -q "link health: HEALTHY" rjam_ci_health_clean.out
cargo run -q --release --offline -p rjam-bench --bin check_health_json -- \
    --forbid-alarm rjam_ci_health_clean.ndjson
rm -f rjam_ci_health_jam.ndjson rjam_ci_health_jam.out
rm -f rjam_ci_health_clean.ndjson rjam_ci_health_clean.out

echo
echo "ci.sh: all gates passed"
