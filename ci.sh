#!/bin/sh
# Hermetic CI gate. Everything here runs offline — the workspace has zero
# external dependencies (see "Hermetic verification" in README.md), so a
# network failure can only mean a regression in the manifests.
set -eu

step() {
    echo
    echo "==== $* ===="
}

step "rustfmt (check only)"
cargo fmt --check

step "clippy, deny warnings, all targets"
cargo clippy --workspace --all-targets --offline -- -D warnings

step "rustdoc, deny warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

step "release build"
cargo build --workspace --release --offline

step "tests (unit + integration + property)"
cargo test -q --workspace --offline

step "bench smoke run (reduced samples, JSON to the workspace root)"
# cargo runs bench binaries with cwd = the package dir, so pin the output
# directory explicitly.
RJAM_BENCH_SAMPLES=3 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
    RJAM_BENCH_OUT="$(pwd)" \
    cargo bench -q -p rjam-bench --offline --bench xcorr_throughput

step "bench report is valid JSON"
test -s BENCH_xcorr_throughput.json
cargo run -q --release --offline -p rjam-bench --bin check_bench_json -- BENCH_xcorr_throughput.json

step "lane bank bench smoke (lanes 1/4/16/64, block sizes, multi-template)"
RJAM_BENCH_SAMPLES=3 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
    RJAM_BENCH_OUT="$(pwd)" \
    cargo bench -q -p rjam-bench --offline --bench dsp_lanes
test -s BENCH_dsp_lanes.json
cargo run -q --release --offline -p rjam-bench --bin check_bench_json -- BENCH_dsp_lanes.json

step "lane bank scaling gate (lanes_16 vs lanes_1 aggregate throughput)"
# Fails the build if the bitsliced lane bank stops amortizing its popcount
# pass: 16 lanes sharing one template must deliver at least 4x the
# single-lane aggregate throughput (RJAM_LANE_SCALING_MIN). The speedup is
# instruction-level sharing on one core, so unlike the thread-scaling gate
# below there is no core-count escape hatch.
cargo run -q --release --offline -p rjam-bench --bin check_lane_scaling -- BENCH_dsp_lanes.json

step "campaign engine bench smoke (threads 1/2/4 + inline determinism cross-check)"
# The bench itself panics if any sharded run diverges bitwise from the
# serial reference, so a passing run doubles as a determinism gate.
RJAM_BENCH_SAMPLES=3 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
    RJAM_BENCH_OUT="$(pwd)" \
    cargo bench -q -p rjam-bench --offline --bench campaign_engine
test -s BENCH_campaign_engine.json
cargo run -q --release --offline -p rjam-bench --bin check_bench_json -- BENCH_campaign_engine.json

step "campaign engine scaling gate (threads_4 vs threads_1 medians)"
# Fails the build if the parallel engine regresses: on >= 4 cores the
# 4-thread median must be a real speedup (<= 0.7x serial); on smaller
# runners, where speedup is physically impossible, it must at least stay
# within scheduling-overhead range of serial (<= 1.15x). The old
# one-shard-per-point engine sat at 1.19x and would fail either bound.
cargo run -q --release --offline -p rjam-bench --bin check_scaling -- BENCH_campaign_engine.json

step "health monitor bench smoke (paired monitored/unmonitored slices + detector updates)"
# One process emits both suites: BENCH_health.json (monitored) and
# BENCH_health_unmonitored.json, interleaved per label so the pair shares
# CPU state. The overhead gate below compares them.
RJAM_BENCH_SAMPLES=5 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
    RJAM_BENCH_OUT="$(pwd)" \
    cargo bench -q -p rjam-bench --offline --bench health_monitor
test -s BENCH_health.json
test -s BENCH_health_unmonitored.json
cargo run -q --release --offline -p rjam-bench --bin check_bench_json -- \
    BENCH_health.json BENCH_health_unmonitored.json

step "health monitor overhead gate (monitored <= 1.02x unmonitored, paired mins)"
# The monitor's per-frame cost is one branch plus window arithmetic; the
# paired in-process blocks plus --stat min keep scheduler noise out of the
# 2 % bound (see benches/health_monitor.rs for the sizing rationale). A
# tripped run re-measures before failing: on an oversubscribed runner a
# single paired block can still drift a few tenths of a percent, and a
# real regression trips every fresh measurement.
health_gate_ok=0
for health_gate_attempt in 1 2 3; do
    if cargo run -q --release --offline -p rjam-bench --bin check_baseline -- \
        BENCH_health.json BENCH_health_unmonitored.json \
        --max-ratio 1.02 --stat min; then
        health_gate_ok=1
        break
    fi
    echo "overhead gate attempt ${health_gate_attempt} tripped; re-measuring"
    RJAM_BENCH_SAMPLES=5 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
        RJAM_BENCH_OUT="$(pwd)" \
        cargo bench -q -p rjam-bench --offline --bench health_monitor
done
test "$health_gate_ok" = 1

step "perf baseline gate (fresh smoke medians vs committed baselines/)"
# Bounds median regressions against committed snapshots measured on the
# same runner class with the same smoke settings. The default bound
# (RJAM_BASELINE_RATIO, 1.25) absorbs shared-runner noise while still
# catching algorithmic regressions; after an intentional perf change,
# regenerate the snapshots (see baselines/README.md) in the same PR.
# The campaign gate watches the serial record only: oversubscribed
# threads_2/4 wall-clocks on a small runner are scheduler noise, and
# check_scaling above already bounds them *relative to* threads_1 within
# this same run.
cargo run -q --release --offline -p rjam-bench --bin check_baseline -- \
    BENCH_xcorr_throughput.json baselines/BENCH_xcorr_throughput.json
cargo run -q --release --offline -p rjam-bench --bin check_baseline -- \
    BENCH_campaign_engine.json baselines/BENCH_campaign_engine.json \
    --params threads_1
# The lane-bank gate watches the 16-lane records only: the sub-millisecond
# lanes_1 smoke run is dominated by scheduler noise, and check_lane_scaling
# above already bounds it *relative to* lanes_16 within this same run.
cargo run -q --release --offline -p rjam-bench --bin check_baseline -- \
    BENCH_dsp_lanes.json baselines/BENCH_dsp_lanes.json \
    --params lanes_16
# The health gate watches the detector microbench only: the scenario-slice
# records exist for the paired overhead comparison above, and their
# sub-millisecond wall-clocks are scheduler noise against a snapshot from
# another run.
cargo run -q --release --offline -p rjam-bench --bin check_baseline -- \
    BENCH_health.json baselines/BENCH_health.json \
    --params cusum_ewma_quantile_1m

step "campaign determinism: RJAM_THREADS=1 and RJAM_THREADS=4 outputs are byte-identical"
# The whole-engine contract, checked through the operator console: the same
# campaign at different worker counts must print the same bytes.
for cmd in \
    "detect --preset wifi-short --snr 5 --frames 20" \
    "fa --preset wifi-long --threshold 0.34 --samples 2000000" \
    "iperf --jammer reactive-long --sir 14 --seconds 1"; do
    RJAM_THREADS=1 cargo run -q --release --offline -p rjam-cli -- $cmd > rjam_ci_t1.out
    RJAM_THREADS=4 cargo run -q --release --offline -p rjam-cli -- $cmd > rjam_ci_t4.out
    diff rjam_ci_t1.out rjam_ci_t4.out || {
        echo "determinism violation: '$cmd' differs between 1 and 4 threads"; exit 1;
    }
done
rm -f rjam_ci_t1.out rjam_ci_t4.out

step "no-default-features: obs layer compiles out (build + clippy)"
# The whole observability/tracing layer must degrade to zero-sized no-ops
# when the 'obs' feature is off; any accidental hard dependency on it is a
# build or lint failure here.
cargo build --workspace --no-default-features --offline
cargo clippy --workspace --no-default-features --all-targets --offline -- -D warnings

step "telemetry overhead gate: obs-on engine within 1.02x of obs-off (threads_1 median)"
# The engine's per-unit timing, stream hooks and profile publication must
# cost <= 2 % on the serial hot path. Both runs use identical settings,
# back to back, on this runner; the no-default build compiles the whole
# obs layer to zero-sized no-ops.
mkdir -p target/ci_obs_off target/ci_obs_on
RJAM_BENCH_SAMPLES=5 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
    RJAM_BENCH_OUT="$(pwd)/target/ci_obs_off" \
    cargo bench -q -p rjam-bench --no-default-features --offline --bench campaign_engine
RJAM_BENCH_SAMPLES=5 RJAM_BENCH_WARMUP_MS=5 RJAM_BENCH_BATCH_MS=2 \
    RJAM_BENCH_OUT="$(pwd)/target/ci_obs_on" \
    cargo bench -q -p rjam-bench --offline --bench campaign_engine
cargo run -q --release --offline -p rjam-bench --bin check_baseline -- \
    target/ci_obs_on/BENCH_campaign_engine.json \
    target/ci_obs_off/BENCH_campaign_engine.json \
    --max-ratio 1.02 --params threads_1

step "observability smoke: stats report + metrics snapshot round-trip"
# `stats` exercises live episodes and must report the trigger-to-TX
# histogram against the paper's response budget; `--metrics-out` must
# write a rjam-metrics-v1 snapshot that `stats FILE` parses back.
cargo run -q --release --offline -p rjam-cli -- stats | grep -q "== counters =="
cargo run -q --release --offline -p rjam-cli -- stats | grep -q "2640 ns xcorr response budget"
cargo run -q --release --offline -p rjam-cli -- \
    timeline --trials 1 --metrics-out rjam_ci_metrics.json > /dev/null
test -s rjam_ci_metrics.json
grep -q '"schema": "rjam-metrics-v1"' rjam_ci_metrics.json
cargo run -q --release --offline -p rjam-cli -- stats rjam_ci_metrics.json \
    | grep -q "fpga.samples_in"
rm -f rjam_ci_metrics.json

step "live progress smoke: rjamctl --progress streams a valid start->done chain"
# A real campaign through the console must emit a complete, schema-valid
# rjam-progress-v1 chain — to a file via --progress=FILE and to stderr via
# bare --progress.
cargo run -q --release --offline -p rjam-cli -- \
    --progress=rjam_ci_progress.ndjson \
    detect --preset wifi-short --snr 3 --frames 16 > /dev/null
test -s rjam_ci_progress.ndjson
grep -q "campaign_started" rjam_ci_progress.ndjson
grep -q "campaign_done" rjam_ci_progress.ndjson
cargo run -q --release --offline -p rjam-bench --bin check_progress_json -- \
    rjam_ci_progress.ndjson
cargo run -q --release --offline -p rjam-cli -- \
    --progress detect --preset wifi-short --snr 3 --frames 16 \
    > /dev/null 2> rjam_ci_progress_err.ndjson
cargo run -q --release --offline -p rjam-bench --bin check_progress_json -- \
    rjam_ci_progress_err.ndjson
rm -f rjam_ci_progress.ndjson rjam_ci_progress_err.ndjson

step "engine profile report: rjamctl report attributes >= 95% of worker wall-clock"
# The post-run profile must account for (busy + idle + merge-wait) at
# least 95 % of total worker wall-clock on a real campaign — anything
# less means the engine is losing time the profile cannot explain.
cargo run -q --release --offline -p rjam-cli -- report --frames 32 --top 3 \
    > rjam_ci_report.out
grep -q "engine profile: wifi_detection" rjam_ci_report.out
awk '/^attributed /{p=$2; sub(/%/,"",p); found=1;
         if (p+0 < 95.0) { print "attribution below 95%: " p; exit 1 } }
     END { if (!found) { print "no attribution line in report"; exit 1 } }' \
    rjam_ci_report.out
rm -f rjam_ci_report.out

step "causal tracing smoke: rjamctl trace emits a valid rjam-trace-v1 doc"
# A default traced run must produce a document the round-trip parser
# accepts, in which at least one jammed frame carries the full causal
# chain (MAC emit -> detector fire -> trigger -> jam TX -> MAC outcome).
cargo run -q --release --offline -p rjam-cli -- \
    trace --episodes 4 --out rjam_ci_trace.json --chrome rjam_ci_trace_chrome.json \
    | grep -q "full causal chains"
test -s rjam_ci_trace.json
grep -q '"schema": "rjam-trace-v1"' rjam_ci_trace.json
grep -q '"traceEvents"' rjam_ci_trace_chrome.json
cargo run -q --release --offline -p rjam-bench --bin check_trace_json -- \
    --require-chain rjam_ci_trace.json
rm -f rjam_ci_trace.json rjam_ci_trace_chrome.json

step "link-health smoke: jammed run alarms within 32 frames, clean run stays silent"
# The monitor watches a stock jamming scenario through the operator
# console: reactive-long at SIR 1 collapses PRR, which must raise
# prr_collapse within 32 frames of onset and exit non-zero; the clean run
# must finish healthy and exit 0. Both NDJSON streams must round-trip the
# rjam-health-v1 validator with the matching alarm expectation.
if cargo run -q --release --offline -p rjam-cli -- \
    monitor --jammer reactive-long --sir 1 --seconds 1 \
    --out rjam_ci_health_jam.ndjson > rjam_ci_health_jam.out; then
    echo "jammed monitor run reported healthy"; exit 1
fi
grep -q "link health: ALARMED" rjam_ci_health_jam.out
grep -q "prr_collapse" rjam_ci_health_jam.out
cargo run -q --release --offline -p rjam-bench --bin check_health_json -- \
    --require-alarm --alarm-within 32 rjam_ci_health_jam.ndjson
cargo run -q --release --offline -p rjam-cli -- \
    monitor --jammer off --seconds 1 --out rjam_ci_health_clean.ndjson \
    > rjam_ci_health_clean.out
grep -q "link health: HEALTHY" rjam_ci_health_clean.out
cargo run -q --release --offline -p rjam-bench --bin check_health_json -- \
    --forbid-alarm rjam_ci_health_clean.ndjson
rm -f rjam_ci_health_jam.ndjson rjam_ci_health_jam.out
rm -f rjam_ci_health_clean.ndjson rjam_ci_health_clean.out

step "campaign service soak: concurrent rjamd jobs, cancel+resume, byte-identical exports"
# The rjam-job-v1 contract end to end: a live socket-mode rjamd takes
# three concurrent jobs, one is cancelled and resumed from its
# checkpoint, and every completed export must byte-match a direct
# in-process run of the same spec at a *different* thread count. A
# stdio-mode transcript is validated against the protocol schema.
SPEC1='{"campaign":"false_alarm","preset":{"kind":"wifi_long","threshold":0.34},"samples":2097152,"seed":41}'
SPEC2='{"campaign":"wifi_detection","preset":{"kind":"wifi_short","threshold":0.35},"emission":{"kind":"full_frames","psdu_len":60},"channel":{"kind":"awgn"},"snrs_db":[3,9],"trials":8,"seed":42}'
SPEC3='{"campaign":"false_alarm","preset":{"kind":"wifi_short","threshold":0.30},"samples":1048576,"seed":43}'
RJAMD=target/release/rjamd
RJAMCTL=target/release/rjamctl

# Direct single-process references (the determinism baseline), 3 threads.
"$RJAMCTL" submit --local --spec "$SPEC1" --export rjam_ci_ref1 --threads 3 > /dev/null
"$RJAMCTL" submit --local --spec "$SPEC2" --export rjam_ci_ref2 --threads 3 > /dev/null
"$RJAMCTL" submit --local --spec "$SPEC3" --export rjam_ci_ref3 --threads 3 > /dev/null

# Protocol transcript over stdio: submit + watch job-1 in one session.
printf '%s\n%s\n' \
    "{\"req\":\"submit\",\"spec\":$SPEC3,\"v\":\"rjam-job-v1\"}" \
    '{"req":"watch","job":"job-1","v":"rjam-job-v1"}' \
    | "$RJAMD" --stdio --threads 2 > rjam_ci_job_transcript.ndjson
cargo run -q --release --offline -p rjam-bench --bin check_job_json -- \
    --job job-1 --require-done rjam_ci_job_transcript.ndjson

# Live socket soak at 4 threads.
RJAM_SOCK="$(pwd)/target/rjam_ci_rjamd.sock"
rm -f "$RJAM_SOCK"
"$RJAMD" --socket "$RJAM_SOCK" --threads 4 2> /dev/null &
RJAMD_PID=$!
trap 'kill "$RJAMD_PID" 2> /dev/null || true' EXIT
for _ in $(seq 1 100); do test -S "$RJAM_SOCK" && break; sleep 0.1; done
test -S "$RJAM_SOCK"

"$RJAMCTL" submit --socket "$RJAM_SOCK" --spec "$SPEC1" | grep -q "job-1 accepted"
"$RJAMCTL" submit --socket "$RJAM_SOCK" --spec "$SPEC2" | grep -q "job-2 accepted"
"$RJAMCTL" submit --socket "$RJAM_SOCK" --spec "$SPEC3" | grep -q "job-3 accepted"
# job-1 (8 engine units of noise) is still running, so job-3 is queued:
# cancel it (checkpoint retained), then resume it from that checkpoint.
"$RJAMCTL" cancel --socket "$RJAM_SOCK" job-3 | grep -q "job-3 cancelled"
"$RJAMCTL" resume --socket "$RJAM_SOCK" job-3 | grep -q "job-3 resumed"

"$RJAMCTL" watch --socket "$RJAM_SOCK" job-1 --export rjam_ci_out1 > /dev/null
"$RJAMCTL" watch --socket "$RJAM_SOCK" job-2 --export rjam_ci_out2 > /dev/null
"$RJAMCTL" watch --socket "$RJAM_SOCK" job-3 --export rjam_ci_out3 > /dev/null
"$RJAMCTL" status --socket "$RJAM_SOCK" | grep -q "job-3 .*done"

for k in 1 2 3; do
    cmp "rjam_ci_ref$k" "rjam_ci_out$k" || {
        echo "determinism violation: job-$k export differs from direct run"; exit 1;
    }
done

kill "$RJAMD_PID" 2> /dev/null || true
trap - EXIT
rm -f "$RJAM_SOCK" rjam_ci_job_transcript.ndjson
rm -f rjam_ci_ref1 rjam_ci_ref2 rjam_ci_ref3 rjam_ci_out1 rjam_ci_out2 rjam_ci_out3

step "deprecated-API purge holds: no allow(deprecated) anywhere in crates/"
if grep -rn "allow(deprecated)" crates/; then
    echo "allow(deprecated) crept back into the workspace"; exit 1
fi

echo
echo "ci.sh: all gates passed"
