#!/bin/sh
# Regenerates every table/figure at meaningful sample sizes.
#
# Fails fast: the first figure binary that exits non-zero aborts the run
# with a message naming the offending figure, and the partial transcript in
# $OUT ends at that point so the failure is easy to localize.
set -eu
OUT=${1:-figures_output.txt}
: > "$OUT"
run() {
    name=$1
    shift
    printf '\n\n############ %s ############\n' "$name" >> "$OUT"
    if ! "$@" >> "$OUT" 2>&1; then
        status=$?
        echo "run_figures.sh: FAILED at '$name' (exit $status): $*" >&2
        echo "run_figures.sh: see the tail of $OUT for the panic/output" >&2
        exit "$status"
    fi
}
run fig5  cargo run -q --release -p rjam-bench --bin fig5_timelines -- --trials 40
run table1 cargo run -q --release -p rjam-bench --bin table1_insertion_loss
run fig6  cargo run -q --release -p rjam-bench --bin fig6_long_preamble -- --frames 250 --fa-samples 25000000
run fig7  cargo run -q --release -p rjam-bench --bin fig7_short_preamble -- --frames 250 --fa-samples 12000000
run fig8  cargo run -q --release -p rjam-bench --bin fig8_energy -- --frames 250
run fig10 cargo run -q --release -p rjam-bench --bin fig10_bandwidth -- --seconds 10
run fig11 cargo run -q --release -p rjam-bench --bin fig11_prr -- --seconds 10
run fig12 cargo run -q --release -p rjam-bench --bin fig12_wimax -- --frames 24
run reconfig cargo run -q --release -p rjam-bench --bin reconfig_latency
run energy cargo run -q --release -p rjam-bench --bin energy_efficiency -- --seconds 6
run corrlen cargo run -q --release -p rjam-bench --bin ablation_corr_len -- --frames 200
run rtscts cargo run -q --release -p rjam-bench --bin ablation_rts_cts -- --seconds 6
run fading cargo run -q --release -p rjam-bench --bin ablation_fading -- --frames 150
run health cargo run -q --release -p rjam-bench --bin health_time_to_detect -- --seconds 3 --cadence 8
echo DONE >> "$OUT"
echo "run_figures.sh: all figures regenerated into $OUT"
